"""The static filesystem-effect pass over the real queue source."""

from __future__ import annotations

import inspect

from repro.check.protocol import check_effects, extract_effects
from repro.dist.effects import PROTOCOL_SPEC, DeclaredEffect


def _codes(findings):
    return sorted({f.code for f in findings})


class TestRealSource:
    def test_protocol_modules_match_declared_spec(self):
        findings = check_effects()
        assert findings == [], [str(f) for f in findings]

    def test_extraction_derives_claim_sequence(self):
        import repro.dist.queue as queue_module

        sequences = extract_effects(inspect.getsource(queue_module))
        claim = [(e.kind, sorted(e.roles)) for e in sequences["ShardQueue.claim"]]
        assert claim == [
            ("unlink", ["pending"]),
            ("rename", ["pending->leased"]),
            ("write", ["lease"]),
        ]

    def test_extraction_sees_commit_point_ordering(self):
        import repro.dist.queue as queue_module

        sequences = extract_effects(inspect.getsource(queue_module))
        commit = [e.kind for e in sequences["ShardQueue.commit_split"]]
        # campaign rewrite (the commit point) strictly precedes both the
        # child enqueues and the .splitting unlink.
        assert commit[0] == "write"
        assert commit[-1] == "unlink"

    def test_fail_requeues_via_atomic_rename(self):
        import repro.dist.queue as queue_module

        sequences = extract_effects(inspect.getsource(queue_module))
        fail = [(e.kind, sorted(e.roles)) for e in sequences["ShardQueue.fail"]]
        assert fail[0] == ("write", ["leased"])
        assert fail[1][0] == "rename"
        assert set(fail[1][1]) <= {"leased->pending", "leased->poison"}

    def test_rebalancer_performs_no_direct_effects(self):
        import repro.dist.rebalance as rebalance_module

        assert extract_effects(inspect.getsource(rebalance_module)) == {}


# A sandboxed miniature of the protocol source, small enough to mutate
# precisely.  The spec below declares the correct sequence; each test
# corrupts one aspect and asserts the distinct Q-code.

_GOOD_SOURCE = '''
import os
from repro.store import atomic_write_bytes, save_verified_npz

class MiniQueue:
    def complete(self, spec, arrays):
        path = self.result_path(spec.shard_id)
        save_verified_npz(path, arrays)
        for stale in (
            self.leased_dir / f"{spec.shard_id}.json",
            self.pending_dir / f"{spec.shard_id}.json",
        ):
            try:
                stale.unlink()
            except OSError:
                pass

    def commit_split(self, spec, children):
        atomic_write_bytes(self.campaign_path, b"{}")
        for child in children:
            atomic_write_bytes(
                self.pending_dir / f"{child.shard_id}.json", b"{}"
            )
        self.splitting_path(spec.shard_id).unlink()
'''

_MINI_SPEC = {
    "mini.queue": {
        "MiniQueue.complete": (
            DeclaredEffect("write", frozenset({"done"})),
            DeclaredEffect(
                "unlink", frozenset({"leased", "pending"}), repeat=True
            ),
        ),
        "MiniQueue.commit_split": (
            DeclaredEffect("write", frozenset({"campaign"})),
            DeclaredEffect(
                "write", frozenset({"pending"}), repeat=True, optional=True
            ),
            DeclaredEffect("unlink", frozenset({"splitting"})),
        ),
    }
}


def _check(source: str):
    return check_effects(
        _MINI_SPEC, sources={"mini.queue": (source, "mini/queue.py")}
    )


class TestSourceMutations:
    def test_clean_miniature_passes(self):
        assert _check(_GOOD_SOURCE) == []

    def test_q301_missing_method(self):
        mutated = _GOOD_SOURCE.replace("def complete", "def completed")
        assert "Q301" in _codes(_check(mutated))

    def test_q302_undeclared_effect(self):
        mutated = _GOOD_SOURCE.replace(
            "self.splitting_path(spec.shard_id).unlink()",
            "self.splitting_path(spec.shard_id).unlink()\n"
            "        (self.done_dir / 'x.npz').unlink()",
        )
        assert "Q302" in _codes(_check(mutated))

    def test_q303_dropped_cleanup_unlink(self):
        mutated = _GOOD_SOURCE.replace(
            "        self.splitting_path(spec.shard_id).unlink()\n", ""
        )
        assert "Q303" in _codes(_check(mutated))

    def test_q304_result_write_reordered_past_retirement(self):
        # Move the result write below the spec unlinks — exactly the
        # corruption the model checker's complete-unlink-before-result
        # mutant exercises dynamically.
        mutated = _GOOD_SOURCE.replace(
            """        path = self.result_path(spec.shard_id)
        save_verified_npz(path, arrays)
        for stale in (""",
            """        path = self.result_path(spec.shard_id)
        for stale in (""",
        ).replace(
            """            except OSError:
                pass
""",
            """            except OSError:
                pass
        save_verified_npz(path, arrays)
""",
        )
        assert "Q304" in _codes(_check(mutated))

    def test_q304_rename_past_commit_point(self):
        mutated = _GOOD_SOURCE.replace(
            """        atomic_write_bytes(self.campaign_path, b"{}")
        for child in children:
            atomic_write_bytes(
                self.pending_dir / f"{child.shard_id}.json", b"{}"
            )
        self.splitting_path(spec.shard_id).unlink()""",
            """        for child in children:
            atomic_write_bytes(
                self.pending_dir / f"{child.shard_id}.json", b"{}"
            )
        self.splitting_path(spec.shard_id).unlink()
        atomic_write_bytes(self.campaign_path, b"{}")""",
        )
        assert "Q304" in _codes(_check(mutated))

    def test_q305_non_atomic_write(self):
        mutated = _GOOD_SOURCE.replace(
            'atomic_write_bytes(self.campaign_path, b"{}")',
            'self.campaign_path.write_text("{}")',
        )
        codes = _codes(_check(mutated))
        assert "Q305" in codes

    def test_q306_unresolvable_path(self):
        mutated = _GOOD_SOURCE.replace(
            "save_verified_npz(path, arrays)",
            "save_verified_npz(some_global_path, arrays)",
        )
        assert "Q306" in _codes(_check(mutated))

    def test_effects_in_undeclared_module_functions_are_flagged(self):
        rogue = (
            _GOOD_SOURCE
            + """
    def sneaky(self):
        os.rename(
            self.pending_dir / "a.json", self.leased_dir / "a.json"
        )
"""
        )
        findings = _check(rogue)
        assert "Q302" in _codes(findings)
        assert any("sneaky" in f.qualname for f in findings)


class TestSpecHygiene:
    def test_spec_covers_every_mutating_queue_method(self):
        declared = set(PROTOCOL_SPEC["repro.dist.queue"])
        for name in (
            "ShardQueue.submit",
            "ShardQueue.claim",
            "ShardQueue.complete",
            "ShardQueue.fail",
            "ShardQueue.release_expired",
            "ShardQueue.begin_split",
            "ShardQueue.commit_split",
            "ShardQueue.abort_split",
            "ShardQueue.recover_splits",
        ):
            assert name in declared

    def test_rebalance_module_declares_zero_direct_effects(self):
        assert PROTOCOL_SPEC["repro.dist.rebalance"] == {}
