"""Tests for repro.stats.confidence."""

import pytest

from repro.stats import PAPER_T_VALUES, confidence_to_t


class TestConfidenceToT:
    def test_paper_constant_for_99(self):
        assert confidence_to_t(0.99) == 2.58

    def test_paper_constant_for_95(self):
        assert confidence_to_t(0.95) == 1.96

    def test_exact_mode_99(self):
        exact = confidence_to_t(0.99, mode="exact")
        assert exact == pytest.approx(2.5758293, abs=1e-6)
        assert exact != 2.58

    def test_exact_mode_95(self):
        assert confidence_to_t(0.95, mode="exact") == pytest.approx(
            1.959964, abs=1e-5
        )

    def test_paper_mode_falls_back_for_unusual_levels(self):
        # 0.97 is not a textbook level; both modes agree.
        assert confidence_to_t(0.97, mode="paper") == pytest.approx(
            confidence_to_t(0.97, mode="exact")
        )

    def test_monotone_in_confidence(self):
        levels = [0.80, 0.90, 0.95, 0.99, 0.999]
        ts = [confidence_to_t(c, mode="exact") for c in levels]
        assert ts == sorted(ts)

    def test_table_is_consistent_with_exact(self):
        for level, t in PAPER_T_VALUES.items():
            exact = confidence_to_t(level, mode="exact")
            assert t == pytest.approx(exact, abs=6e-3)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_out_of_range(self, bad):
        with pytest.raises(ValueError):
            confidence_to_t(bad)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError, match="mode"):
            confidence_to_t(0.99, mode="bayesian")
