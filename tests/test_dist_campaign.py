"""Sharded campaigns merge bit-identically to serial runs.

The deterministic-merge guarantee is the whole point of ``repro.dist``:
however a campaign is sharded, however many workers drain it, whatever
order shards complete in, the merged result must equal the serial run
bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.dist import (
    DistError,
    ExhaustiveContext,
    MergeError,
    SampledContext,
    ShardQueue,
    ShardWorker,
    make_exhaustive_shards,
    make_sampled_shards,
    merge_exhaustive,
    merge_sampled,
    run_sharded_campaign,
    run_sharded_exhaustive,
    verify_context_config,
)
from repro.faults import (
    FaultSpace,
    InferenceEngine,
    OutcomeTable,
    TableOracle,
)
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.sfi import CampaignRunner, DataUnawareSFI
from repro.telemetry import Telemetry, resolve_telemetry


@pytest.fixture(scope="module")
def campaign_setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


@pytest.fixture(scope="module")
def serial_table(campaign_setup):
    engine, space = campaign_setup
    return OutcomeTable.from_exhaustive(engine, space, workers=1)


def assert_tables_identical(a: OutcomeTable, b: OutcomeTable) -> None:
    assert a.num_layers == b.num_layers
    for left, right in zip(a.outcomes, b.outcomes):
        assert left.dtype == right.dtype == np.uint8
        assert np.array_equal(left, right)


class TestShardedExhaustive:
    def test_sharded_matches_serial_bit_for_bit(
        self, campaign_setup, serial_table, tmp_path
    ):
        engine, space = campaign_setup
        merged = run_sharded_exhaustive(
            engine, space, tmp_path / "q", shards=4, workers=2
        )
        assert_tables_identical(serial_table, merged)
        assert merged.metadata["inference_count"] == (
            serial_table.metadata["inference_count"]
        )
        assert merged.metadata["shards"] == 4
        assert merged.metadata["merged"] is True

    def test_shard_count_does_not_change_the_table(
        self, campaign_setup, serial_table, tmp_path
    ):
        engine, space = campaign_setup
        for shards in (1, 7):
            merged = run_sharded_exhaustive(
                engine, space, tmp_path / f"q{shards}",
                shards=shards, workers=1,
            )
            assert_tables_identical(serial_table, merged)

    def test_completion_order_does_not_change_the_table(
        self, campaign_setup, serial_table, tmp_path
    ):
        """Drain shards explicitly in reverse claim order."""
        engine, space = campaign_setup
        queue = ShardQueue(tmp_path / "q")
        config, specs = make_exhaustive_shards(engine, space, shards=4)
        queue.submit(specs, config=config)
        context = ExhaustiveContext(engine, space)
        claimed = []
        while (got := queue.claim(worker="w", lease_seconds=60.0)):
            claimed.append(got)
        for spec, lease in reversed(claimed):
            arrays = context.run_shard(
                spec, resolve_telemetry(None), lambda: None
            )
            queue.complete(spec, arrays, lease=lease)
        assert_tables_identical(serial_table, merge_exhaustive(queue))


class TestShardedSampled:
    @pytest.fixture(scope="class")
    def sampled_setup(self, campaign_setup, serial_table):
        engine, space = campaign_setup
        oracle = TableOracle(serial_table, space)
        plan = DataUnawareSFI(0.2, 0.95).plan(space)
        serial = CampaignRunner(oracle, space).run(plan, seed=7)
        return engine, space, oracle, plan, serial

    def test_sharded_matches_serial_exactly(self, sampled_setup, tmp_path):
        engine, space, oracle, plan, serial = sampled_setup
        merged = run_sharded_campaign(
            oracle,
            space,
            plan,
            tmp_path / "q",
            seed=7,
            shards=4,
            workers=2,
            golden_sha256=engine.fingerprint(),
        )
        assert merged.cell_tallies == serial.cell_tallies
        assert merged.assumed_p == serial.assumed_p
        assert merged.network_estimate() == serial.network_estimate()

    def test_shard_count_does_not_change_the_result(
        self, sampled_setup, tmp_path
    ):
        engine, space, oracle, plan, serial = sampled_setup
        for shards in (1, 5):
            merged = run_sharded_campaign(
                oracle, space, plan, tmp_path / f"q{shards}",
                seed=7, shards=shards, workers=1,
            )
            assert merged.cell_tallies == serial.cell_tallies
            assert merged.assumed_p == serial.assumed_p


class TestMergeRefusals:
    def test_incomplete_queue_is_refused(self, campaign_setup, tmp_path):
        engine, space = campaign_setup
        queue = ShardQueue(tmp_path / "q")
        config, specs = make_exhaustive_shards(engine, space, shards=4)
        queue.submit(specs, config=config)
        with pytest.raises(MergeError, match="incomplete"):
            merge_exhaustive(queue)

    def test_mismatched_config_fingerprint_is_refused(
        self, campaign_setup, tmp_path
    ):
        """Results produced under one campaign config must not merge
        into another, even if shard ids were forged to line up."""
        import json

        engine, space = campaign_setup
        queue = ShardQueue(tmp_path / "q")
        config, specs = make_exhaustive_shards(engine, space, shards=2)
        queue.submit(specs, config=config)
        context = ExhaustiveContext(engine, space)
        while (got := queue.claim(worker="w", lease_seconds=60.0)):
            spec, lease = got
            arrays = context.run_shard(
                spec, resolve_telemetry(None), lambda: None
            )
            queue.complete(spec, arrays, lease=lease)
        # Tamper with the published campaign fingerprint: the done
        # results now carry a different config hash than the campaign.
        campaign = queue.campaign()
        campaign["config_hash"] = "f" * 64
        queue.campaign_path.write_text(json.dumps(campaign))
        with pytest.raises(MergeError, match="was produced under config"):
            merge_exhaustive(queue)

    def test_wrong_kind_is_refused(self, campaign_setup, tmp_path):
        engine, space = campaign_setup
        queue = ShardQueue(tmp_path / "q")
        config, specs = make_exhaustive_shards(engine, space, shards=2)
        queue.submit(specs, config=config)
        with pytest.raises(MergeError, match="expected 'sampled'"):
            merge_sampled(queue, space)


class TestWorkerVerification:
    def test_mismatched_engine_fingerprint_is_refused(self, campaign_setup):
        engine, space = campaign_setup
        config = {"kind": "exhaustive", "golden_sha256": "0" * 64}
        with pytest.raises(DistError, match="fingerprint mismatch"):
            verify_context_config(ExhaustiveContext(engine, space), config)

    def test_matching_engine_passes(self, campaign_setup):
        engine, space = campaign_setup
        config = {
            "kind": "exhaustive",
            "golden_sha256": engine.fingerprint(),
            "layer_sizes": [layer.size for layer in space.layers],
        }
        verify_context_config(ExhaustiveContext(engine, space), config)

    def test_kind_mismatch_is_refused(self, campaign_setup, serial_table):
        engine, space = campaign_setup
        oracle = TableOracle(serial_table, space)
        plan = DataUnawareSFI(0.2, 0.95).plan(space)
        context = SampledContext(oracle, space, plan)
        with pytest.raises(DistError, match="does not match"):
            verify_context_config(context, {"kind": "exhaustive"})


class TestWorkerTelemetry:
    def test_shard_lifecycle_is_journaled(
        self, campaign_setup, tmp_path
    ):
        engine, space = campaign_setup
        queue = ShardQueue(tmp_path / "q")
        config, specs = make_exhaustive_shards(engine, space, shards=2)
        queue.submit(specs, config=config)
        events = []
        telemetry = Telemetry(on_event=events.append)
        worker = ShardWorker(
            queue,
            ExhaustiveContext(engine, space),
            worker_id="test-worker",
            telemetry=telemetry,
        )
        assert worker.run() == 2
        types = [e.type for e in events]
        assert types.count("shard_claim") == 2
        assert types.count("shard_done") == 2
        heartbeats = [e for e in events if e.type == "worker_heartbeat"]
        assert len(heartbeats) == len(space.layers) * space.bits
        assert all(
            e.fields["worker"] == "test-worker"
            for e in events
            if e.type in {"shard_claim", "shard_done"}
        )

    def test_drained_worker_emits_idle_event(self, campaign_setup, tmp_path):
        engine, space = campaign_setup
        queue = ShardQueue(tmp_path / "q")
        config, specs = make_exhaustive_shards(engine, space, shards=2)
        queue.submit(specs, config=config)
        events = []
        worker = ShardWorker(
            queue,
            ExhaustiveContext(engine, space),
            worker_id="idler",
            telemetry=Telemetry(on_event=events.append),
        )
        worker.run()
        idle = [e for e in events if e.type == "worker_idle"]
        assert len(idle) == 1
        assert idle[0].fields["worker"] == "idler"
        assert idle[0].fields["reason"] == "drained"
        assert idle[0].fields["units_done"] == len(space.layers) * space.bits
        # The idle event is the worker's last word.
        assert events[-1].type == "worker_idle"

    def test_heartbeat_interval_throttles_events_not_leases(
        self, campaign_setup, tmp_path
    ):
        engine, space = campaign_setup
        queue = ShardQueue(tmp_path / "q")
        config, specs = make_exhaustive_shards(engine, space, shards=1)
        queue.submit(specs, config=config)
        events = []
        worker = ShardWorker(
            queue,
            ExhaustiveContext(engine, space),
            worker_id="quiet",
            telemetry=Telemetry(on_event=events.append),
            heartbeat_interval=3600.0,  # nothing is due after the first
        )
        assert worker.run() == 1
        heartbeats = [e for e in events if e.type == "worker_heartbeat"]
        assert len(heartbeats) == 1  # first unit always heartbeats
        # Lease renewal kept running underneath the throttled events.
        spec, _arrays = queue.load_result(specs[0].shard_id)
        assert spec["shard_id"] == specs[0].shard_id


class TestHeartbeatIntervalResolution:
    def test_explicit_argument_wins(self, monkeypatch):
        from repro.dist import resolve_heartbeat_interval

        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "9.5")
        assert resolve_heartbeat_interval(2.0) == 2.0
        assert resolve_heartbeat_interval() == 9.5

    def test_default_is_per_unit(self, monkeypatch):
        from repro.dist import resolve_heartbeat_interval

        monkeypatch.delenv("REPRO_HEARTBEAT_INTERVAL", raising=False)
        assert resolve_heartbeat_interval() == 0.0

    def test_negative_clamps_to_zero(self):
        from repro.dist import resolve_heartbeat_interval

        assert resolve_heartbeat_interval(-5.0) == 0.0

    def test_bad_env_value_fails_loudly(self, monkeypatch):
        from repro.dist import resolve_heartbeat_interval

        monkeypatch.setenv("REPRO_HEARTBEAT_INTERVAL", "soon")
        with pytest.raises(ValueError, match="not a number"):
            resolve_heartbeat_interval()
