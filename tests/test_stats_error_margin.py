"""Tests for repro.stats.error_margin."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import confidence_to_t, error_margin, margin_contains, sample_size

T99 = confidence_to_t(0.99)


class TestErrorMargin:
    def test_exhaustive_sample_has_zero_margin(self):
        assert error_margin(1000, 1000, 0.3, T99) == 0.0

    def test_classic_formula_without_fpc_effect(self):
        # Huge population: FPC ~ 1, margin ~ t*sqrt(p(1-p)/n).
        margin = error_margin(10_000, 10**9, 0.5, T99)
        assert margin == pytest.approx(T99 * math.sqrt(0.25 / 10_000), rel=1e-3)

    def test_margin_shrinks_with_sample_size(self):
        small = error_margin(100, 100_000, 0.5, T99)
        large = error_margin(10_000, 100_000, 0.5, T99)
        assert large < small

    def test_margin_shrinks_away_from_half(self):
        at_half = error_margin(1000, 100_000, 0.5, T99)
        skewed = error_margin(1000, 100_000, 0.02, T99)
        assert skewed < at_half

    def test_degenerate_population_of_one(self):
        assert error_margin(1, 1, 1.0, T99) == 0.0

    def test_zero_p_hat_gives_zero_margin(self):
        # A limitation of the Wald margin the paper inherits.
        assert error_margin(100, 10_000, 0.0, T99) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            error_margin(0, 100, 0.5, T99)
        with pytest.raises(ValueError):
            error_margin(200, 100, 0.5, T99)
        with pytest.raises(ValueError):
            error_margin(10, 100, 1.5, T99)
        with pytest.raises(ValueError):
            error_margin(10, 100, 0.5, -1.0)

    def test_round_trip_with_sample_size(self):
        """Sampling at the Eq. 1 size achieves the target margin at p=0.5."""
        population = 500_000
        n = sample_size(population, 0.01, T99)
        achieved = error_margin(n, population, 0.5, T99)
        assert achieved == pytest.approx(0.01, rel=1e-3)

    @given(
        population=st.integers(2, 10**7),
        frac=st.floats(0.001, 1.0),
        p_hat=st.floats(0.0, 1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_margin_bounds(self, population, frac, p_hat):
        n = max(1, min(population, int(population * frac)))
        margin = error_margin(n, population, p_hat, T99)
        assert 0.0 <= margin <= T99 * 0.5


class TestMarginContains:
    def test_contains_inside(self):
        assert margin_contains(0.5, 0.01, 0.505)

    def test_excludes_outside(self):
        assert not margin_contains(0.5, 0.01, 0.52)

    def test_boundary_inclusive(self):
        assert margin_contains(0.5, 0.01, 0.51)

    def test_slack(self):
        assert margin_contains(0.5, 0.01, 0.515, slack=0.005)

    def test_negative_margin_rejected(self):
        with pytest.raises(ValueError):
            margin_contains(0.5, -0.01, 0.5)
