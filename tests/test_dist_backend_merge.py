"""Cross-backend shard mixing at the distributed merge boundary.

A non-reference kernel backend folds its attestation into the plan
fingerprint, so its shards carry a different fingerprint than the
reference campaign's.  The merge must refuse them — different backends
are different numerics — unless a verification pass explicitly declared
the two fingerprints outcome-compatible.  Campaigns submitted before
attestation existed keep merging untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import NumpyBackend
from repro.check import declare_fingerprints_compatible
from repro.data import SynthCIFAR
from repro.dist import (
    ExhaustiveContext,
    MergeError,
    ShardQueue,
    make_exhaustive_shards,
    merge_exhaustive,
    plan_attestation_runtime,
)
from repro.faults import FaultSpace
from repro.faults.table import cell_key
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.runtime import PlanEngine


class _ShiftedBackend(NumpyBackend):
    """Reference numerics under a non-reference identity.

    Numerically identical to numpy (so real classification works), but
    ``is_reference=False`` means its attestation joins the plan
    fingerprint — the merge sees a genuinely foreign identity.
    """

    name = "shifted"
    is_reference = False


@pytest.fixture(scope="module")
def backend_setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    reference = PlanEngine(model, data.images, data.labels, fmt=FLOAT16)
    shifted = PlanEngine(
        model,
        data.images,
        data.labels,
        fmt=FLOAT16,
        backend=_ShiftedBackend(),
    )
    space = FaultSpace(reference.layers, fmt=FLOAT16)
    return reference, shifted, space


def zero_arrays(spec, config):
    sizes = config["layer_sizes"]
    n_models = len(config["fault_models"])
    return {
        f"cell_{cell_key(int(u[0]), int(u[1]))}": np.zeros(
            (sizes[int(u[0])], n_models), dtype=np.uint8
        )
        for u in spec.units
    }


def submitted_queue(tmp_path, engine, space, *, runtime, shards=2):
    config, specs = make_exhaustive_shards(engine, space, shards=shards)
    queue = ShardQueue(tmp_path / "queue")
    queue.submit(specs, config=config, runtime=runtime)
    return queue, config, specs


class TestBackendIdentity:
    def test_backend_changes_the_plan_fingerprint(self, backend_setup):
        reference, shifted, _space = backend_setup
        assert shifted.plan_fingerprint != reference.plan_fingerprint

    def test_shifted_stamp_carries_backend(self, backend_setup):
        reference, shifted, space = backend_setup
        stamp = ExhaustiveContext(shifted, space).attestation()
        assert stamp["backend"] == {
            "name": "shifted",
            "version": np.__version__,
        }
        assert stamp["plan_verified"] is True

    def test_reference_stamp_has_no_backend_key(self, backend_setup):
        reference, _shifted, space = backend_setup
        stamp = ExhaustiveContext(reference, space).attestation()
        assert "backend" not in stamp


class TestCrossBackendMerge:
    def test_undeclared_cross_backend_shard_refused(
        self, backend_setup, tmp_path
    ):
        reference, shifted, space = backend_setup
        queue, config, specs = submitted_queue(
            tmp_path, reference, space,
            runtime=plan_attestation_runtime(reference),
        )
        ref_stamp = ExhaustiveContext(reference, space).attestation()
        foreign = dict(ExhaustiveContext(shifted, space).attestation())
        # Strip any compatibility other tests may have declared in this
        # process: the refusal must hold on the fingerprints alone.
        foreign.pop("plan_compatible_with", None)
        queue.complete(specs[0], zero_arrays(specs[0], config), meta=ref_stamp)
        queue.complete(specs[1], zero_arrays(specs[1], config), meta=foreign)
        from repro.check import plan as check_plan_mod

        saved = check_plan_mod._COMPATIBLE_FINGERPRINTS
        check_plan_mod._COMPATIBLE_FINGERPRINTS = {}
        try:
            with pytest.raises(MergeError, match="does not attest"):
                merge_exhaustive(queue)
        finally:
            check_plan_mod._COMPATIBLE_FINGERPRINTS = saved

    def test_declared_compatible_shard_accepted(
        self, backend_setup, tmp_path
    ):
        reference, shifted, space = backend_setup
        queue, config, specs = submitted_queue(
            tmp_path, reference, space,
            runtime=plan_attestation_runtime(reference),
        )
        declare_fingerprints_compatible(
            shifted.plan_fingerprint, reference.plan_fingerprint
        )
        ref_stamp = ExhaustiveContext(reference, space).attestation()
        foreign = ExhaustiveContext(shifted, space).attestation()
        assert reference.plan_fingerprint in foreign["plan_compatible_with"]
        queue.complete(specs[0], zero_arrays(specs[0], config), meta=ref_stamp)
        queue.complete(specs[1], zero_arrays(specs[1], config), meta=foreign)
        table = merge_exhaustive(queue)
        assert table.num_layers == len(config["layer_sizes"])

    def test_legacy_campaign_merges_without_backend_attestation(
        self, backend_setup, tmp_path
    ):
        # Queues submitted before plan/backend attestation carry no
        # plan_sha256; cross-backend stamps must not break their merge.
        reference, shifted, space = backend_setup
        queue, config, specs = submitted_queue(
            tmp_path, reference, space, runtime={},
        )
        foreign = ExhaustiveContext(shifted, space).attestation()
        for spec in specs:
            queue.complete(spec, zero_arrays(spec, config), meta=foreign)
        table = merge_exhaustive(queue)
        assert table.num_layers == len(config["layer_sizes"])
