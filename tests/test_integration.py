"""End-to-end integration tests on cached exhaustive ground truth.

These reproduce the paper's evaluation protocol in miniature: exhaustive
ground truth for a pretrained mini model, the four statistical campaigns
replayed against it, and the paper's qualitative claims checked.
"""

import numpy as np
import pytest

from repro.faults import InferenceOracle, TableOracle
from repro.models import pretrained_path
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
    validate_campaign,
)
from repro.sfi.artifacts import exhaustive_table_path, load_or_run_exhaustive
from repro.stats import chi_square_homogeneity


def artifacts_ready(model: str) -> bool:
    return (
        pretrained_path(model).is_file()
        and exhaustive_table_path(model).is_file()
    )


requires_resnet = pytest.mark.skipif(
    not artifacts_ready("resnet8_mini"), reason="resnet8_mini artifacts missing"
)
requires_mobilenet = pytest.mark.skipif(
    not artifacts_ready("mobilenetv2_mini"),
    reason="mobilenetv2_mini artifacts missing",
)


@pytest.fixture(scope="module")
def resnet_truth():
    return load_or_run_exhaustive("resnet8_mini")


@pytest.fixture(scope="module")
def mobilenet_truth():
    return load_or_run_exhaustive("mobilenetv2_mini")


@requires_resnet
class TestExhaustiveGroundTruth:
    def test_plausible_critical_rate(self, resnet_truth):
        table, _, _ = resnet_truth
        rate = table.total_rate()
        # The paper's CNNs land in the same few-percent band.
        assert 0.001 < rate < 0.10

    def test_half_of_stuck_at_faults_masked(self, resnet_truth):
        table, _, _ = resnet_truth
        assert table.masked_fraction() == pytest.approx(0.5, abs=0.01)

    def test_exponent_msb_is_most_critical_bit(self, resnet_truth):
        from repro.analysis import most_critical_bit

        table, _, _ = resnet_truth
        assert most_critical_bit(table).bit == 30

    def test_mantissa_lsbs_never_critical(self, resnet_truth):
        table, _, _ = resnet_truth
        for layer in range(table.num_layers):
            for bit in range(8):
                assert table.cell_rate(layer, bit) == 0.0

    def test_layers_have_heterogeneous_criticality(self, resnet_truth):
        """The paper's motivation: p differs across layers, violating the
        4th Bernoulli assumption for network-wise sampling."""
        table, _, _ = resnet_truth
        trials, successes = [], []
        for layer in range(table.num_layers):
            criticals, population = table.layer_counts(layer)
            trials.append(population)
            successes.append(criticals)
        result = chi_square_homogeneity(trials, successes)
        assert result.rejects_homogeneity(alpha=0.001)


@requires_resnet
class TestStatisticalVsExhaustive:
    @pytest.fixture(scope="class")
    def reports(self, resnet_truth):
        table, space, _ = resnet_truth
        runner = CampaignRunner(TableOracle(table, space), space)
        out = {}
        for planner in (
            NetworkWiseSFI(),
            LayerWiseSFI(),
            DataUnawareSFI(),
            DataAwareSFI(),
        ):
            plan = planner.plan(space)
            result = runner.run(plan, seed=0)
            out[plan.method] = validate_campaign(result, table)
        return out

    def test_all_methods_estimate_network_rate(self, reports, resnet_truth):
        table, _, _ = resnet_truth
        for method, report in reports.items():
            est = report.network.estimate
            assert est.p_hat == pytest.approx(table.total_rate(), abs=0.01), method

    def test_margin_ordering_matches_paper(self, reports):
        """Table III ordering: network-wise has the worst average layer
        margin; data-unaware the best; data-aware close to data-unaware."""
        margins = {m: r.average_margin for m, r in reports.items()}
        assert margins["network-wise"] > margins["layer-wise"]
        assert margins["layer-wise"] > margins["data-unaware"]
        assert margins["data-aware"] < margins["layer-wise"]

    def test_data_aware_is_cheaper_than_layer_wise(self, reports):
        assert (
            reports["data-aware"].total_injections
            < reports["layer-wise"].total_injections
        )

    def test_fine_methods_contain_exhaustive_everywhere(self, reports):
        assert reports["data-unaware"].contained_fraction == 1.0
        assert reports["data-aware"].contained_fraction >= 0.8

    def test_live_injection_agrees_with_replay(self, resnet_truth):
        """Really injecting sampled faults gives identical outcomes to the
        recorded exhaustive table (determinism of the whole stack)."""
        table, space, engine = resnet_truth
        plan = DataAwareSFI(error_margin=0.2).plan(space)
        replay = CampaignRunner(TableOracle(table, space), space).run(plan, seed=4)
        live = CampaignRunner(InferenceOracle(engine), space).run(plan, seed=4)
        assert replay.cell_tallies == live.cell_tallies


@requires_mobilenet
class TestMobileNet:
    def test_ground_truth_rate(self, mobilenet_truth):
        table, _, _ = mobilenet_truth
        assert 0.001 < table.total_rate() < 0.10

    def test_data_aware_valid_on_mobilenet(self, mobilenet_truth):
        table, space, _ = mobilenet_truth
        runner = CampaignRunner(TableOracle(table, space), space)
        result = runner.run(DataAwareSFI().plan(space), seed=0)
        report = validate_campaign(result, table)
        assert report.contained_fraction >= 0.8
        assert report.average_margin < 0.01

    def test_depthwise_layers_covered(self, mobilenet_truth):
        """Faults in depthwise conv layers are exercised and classified."""
        table, space, _ = mobilenet_truth
        from repro.nn import Conv2d

        depthwise_layers = [
            l.index
            for l in space.layers
            if isinstance(l.module, Conv2d) and l.module.groups > 1
        ]
        assert depthwise_layers
        for layer in depthwise_layers:
            criticals, population = table.layer_counts(layer)
            assert population == space.layer_population(layer)
