"""Tests for repro.ieee754.distance (paper Fig. 2 arithmetic)."""

import numpy as np
import pytest

from repro.ieee754 import FLOAT32, bit_flip_distances


class TestBitFlipDistances:
    def test_sign_flip_distance_is_twice_magnitude(self):
        values = np.array([1.5, -2.0])
        dists = bit_flip_distances(FLOAT32, values)
        # Sign flip moves w to -w: distance 2|w|.  1.5 has sign 0 (0->1),
        # -2.0 has sign 1 (1->0).
        assert dists.d01[31] == pytest.approx(3.0)
        assert dists.d10[31] == pytest.approx(4.0)

    def test_mantissa_lsb_distance_is_tiny(self):
        values = np.array([1.0])
        dists = bit_flip_distances(FLOAT32, values)
        assert 0 < dists.d01[0] < 1e-6

    def test_paper_fig2_bit28_example(self):
        # The paper's Fig. 2 illustrates the distance a bit-flip on bit 28
        # introduces.  For w=1.0 the exponent is 127 (0b01111111), so bit 28
        # is 1: the 1->0 flip divides the exponent by 2^32, collapsing the
        # weight to 2^-32 — a distance of essentially |w|.
        values = np.array([1.0])
        dists = bit_flip_distances(FLOAT32, values)
        assert dists.d01[28] == 0.0  # no weight has bit 28 at 0 here
        assert dists.d10[28] == pytest.approx(1.0 - 2.0**-32)

    def test_exponent_msb_is_huge(self):
        values = np.array([0.5, 1.0, 0.25])
        dists = bit_flip_distances(FLOAT32, values)
        assert dists.d01[30] > 1e30

    def test_direction_with_no_members_is_zero(self):
        # For 1.0 the sign bit is 0 everywhere: no 1->0 flips exist.
        values = np.array([1.0, 2.0])
        dists = bit_flip_distances(FLOAT32, values)
        assert dists.d10[31] == 0.0

    def test_nonfinite_policy_max(self):
        # Flipping the exponent MSB of 2.0 (exponent 128, bit30=1 -> 0 is
        # fine) — construct an overflow instead: exponent 254 value, flip
        # bit 23 to reach 255 (inf).
        value = np.float32(2.0**127 * 1.5)  # exponent 254
        dists = bit_flip_distances(FLOAT32, np.array([value]), nonfinite="max")
        assert np.isfinite(dists.d01[23])
        assert dists.d01[23] == pytest.approx(FLOAT32.max_finite)

    def test_nonfinite_policy_inf(self):
        value = np.float32(2.0**127 * 1.5)
        dists = bit_flip_distances(FLOAT32, np.array([value]), nonfinite="inf")
        assert np.isinf(dists.d01[23])

    def test_nonfinite_policy_drop(self):
        value = np.float32(2.0**127 * 1.5)
        dists = bit_flip_distances(FLOAT32, np.array([value]), nonfinite="drop")
        assert dists.d01[23] == 0.0  # the only member was dropped

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError, match="nonfinite"):
            bit_flip_distances(FLOAT32, np.array([1.0]), nonfinite="bogus")

    def test_distances_nonnegative(self):
        rng = np.random.default_rng(3)
        dists = bit_flip_distances(FLOAT32, rng.normal(size=200))
        assert (dists.d01 >= 0).all()
        assert (dists.d10 >= 0).all()

    def test_exponent_dominates_mantissa(self):
        """Average exponent-bit distance exceeds mantissa-bit distance."""
        rng = np.random.default_rng(4)
        weights = rng.normal(0, 0.1, size=500)
        dists = bit_flip_distances(FLOAT32, weights)
        mantissa_peak = max(dists.d01[i] for i in range(0, 23))
        exponent_peak = max(dists.d01[i] for i in range(23, 31))
        assert exponent_peak > mantissa_peak * 1e3
