"""Tests for the CLI entry points."""

import pytest

from repro.cli.analyze import main as analyze_main
from repro.cli.plan import main as plan_main
from repro.cli.run import main as run_main
from repro.models import pretrained_path
from repro.sfi.artifacts import exhaustive_table_path


def has_artifacts(model: str) -> bool:
    return (
        pretrained_path(model).is_file()
        and exhaustive_table_path(model).is_file()
    )


class TestPlanCLI:
    def test_plan_mini_model(self, capsys):
        assert plan_main(["--model", "resnet8_mini"]) == 0
        out = capsys.readouterr().out
        assert "population N" in out
        assert "data-aware" in out
        assert "Total" in out

    def test_plan_resnet20_reproduces_table1_numbers(self, capsys):
        assert plan_main(["--model", "resnet20"]) == 0
        out = capsys.readouterr().out
        assert "10,389" in out  # layer-wise layer 0
        assert "26,272" in out  # data-unaware layer 0

    def test_plan_custom_margin(self, capsys):
        assert plan_main(["--model", "resnet8_mini", "--error-margin", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Total" in out

    def test_plan_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            plan_main(["--model", "alexnet"])


class TestAnalyzeCLI:
    def test_profile_only_full_size(self, capsys):
        assert analyze_main(["--model", "resnet20", "--profile-only"]) == 0
        out = capsys.readouterr().out
        assert "data-aware profile" in out
        assert "exponent" in out

    def test_full_analysis_with_artifacts(self, capsys):
        if not has_artifacts("resnet8_mini"):
            pytest.skip("artifacts not generated")
        assert analyze_main(["--model", "resnet8_mini"]) == 0
        out = capsys.readouterr().out
        assert "most critical layers" in out
        assert "most critical bits" in out


class TestRunCLI:
    def test_run_replay_campaign(self, capsys):
        if not has_artifacts("resnet8_mini"):
            pytest.skip("artifacts not generated")
        assert (
            run_main(
                ["--model", "resnet8_mini", "--method", "data-aware", "--seed", "1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "data-aware" in out
        assert "exhaustive network rate" in out
        assert "layer  0" in out


class TestTrainCLI:
    def test_skips_cached_weights(self, capsys):
        from repro.cli.train import main as train_main
        from repro.models import pretrained_path

        if not pretrained_path("resnet8_mini").is_file():
            pytest.skip("no cached weights to demonstrate the skip path")
        assert train_main(["--model", "resnet8_mini"]) == 0
        out = capsys.readouterr().out
        assert "cached weights found" in out

    def test_trains_tiny_model_from_scratch(self, tmp_path, monkeypatch, capsys):
        from repro.cli.train import main as train_main

        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        assert (
            train_main(
                [
                    "--model",
                    "resnet8_mini",
                    "--epochs",
                    "1",
                    "--train-size",
                    "100",
                    "--quiet",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "test accuracy" in out
        assert (tmp_path / "weights" / "resnet8_mini.npz").is_file()
