"""Tests for repro.analysis: tables, figures, criticality rankings."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_bars,
    bit_ranking,
    layer_ranking,
    most_critical_bit,
    most_critical_layer,
    render_bit_frequency_figure,
    render_bit_prior_figure,
    render_method_comparison,
    render_per_layer_figure,
    render_plan_table,
    render_sample_figure,
    render_table,
    render_variance_curve,
)
from repro.analysis.criticality import estimated_bit_ranking
from repro.faults import FaultOutcome, FaultSpace, OutcomeTable, TableOracle
from repro.ieee754 import FLOAT32, bit_frequencies
from repro.models import ResNetCIFAR
from repro.sfi import (
    CampaignRunner,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
    validate_campaign,
)
from repro.sfi.validation import MethodComparison


@pytest.fixture(scope="module")
def truth_setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    space = FaultSpace(model)
    outcomes = []
    for idx, layer in enumerate(space.layers):
        arr = np.full(
            (layer.size, space.bits, 2), FaultOutcome.NON_CRITICAL, dtype=np.uint8
        )
        arr[:, 30, 1] = FaultOutcome.CRITICAL
        if idx == 2:  # layer 2 also critical on bit 29 -> most critical
            arr[:, 29, 1] = FaultOutcome.CRITICAL
        outcomes.append(arr)
    return space, OutcomeTable(outcomes)


class TestRenderTable:
    def test_basic_layout(self):
        text = render_table(["a", "b"], [[1, 2.5], [30000, "x"]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "30,000" in lines[3]

    def test_row_width_validation(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_bool_formatting(self):
        text = render_table(["ok"], [[True], [False]])
        assert "yes" in text and "no" in text


class TestRenderPlanTable:
    def test_paper_layout(self, truth_setup):
        space, _ = truth_setup
        plans = [
            NetworkWiseSFI().plan(space),
            LayerWiseSFI().plan(space),
            DataUnawareSFI().plan(space),
        ]
        allocation = [1] * len(space.layers)
        text = render_plan_table(
            plans,
            [l.size for l in space.layers],
            network_wise_allocation=allocation,
        )
        assert "layer-wise" in text
        assert "Total" in text
        # Per-layer rows plus header/rule/total.
        assert len(text.splitlines()) == len(space.layers) + 3


class TestRenderFigures:
    def test_variance_curve_peaks_at_half(self):
        text = render_variance_curve()
        lines = [l for l in text.splitlines() if "p=0.50" in l]
        assert lines and lines[0].count("#") == 40  # the peak bar

    def test_bit_frequency_figure(self):
        freqs = bit_frequencies(FLOAT32, np.ones(5))
        text = render_bit_frequency_figure(freqs)
        assert text.splitlines()[1].strip().startswith("31")

    def test_bit_prior_figure(self):
        p = np.linspace(0, 0.5, 32)
        text = render_bit_prior_figure({"resnet20": p, "mobilenetv2": p})
        assert "resnet20" in text
        assert len(text.splitlines()) == 33

    def test_per_layer_figure(self, truth_setup):
        space, table = truth_setup
        result = CampaignRunner(TableOracle(table, space), space).run(
            LayerWiseSFI().plan(space), seed=0
        )
        rates = [table.layer_rate(l) for l in range(table.num_layers)]
        text = render_per_layer_figure(
            rates, {"layer-wise": result.layer_estimates()}
        )
        assert "layer-wise" in text
        assert len(text.splitlines()) == len(rates) + 1

    def test_sample_figure(self, truth_setup):
        space, table = truth_setup
        runner = CampaignRunner(TableOracle(table, space), space)
        plan = LayerWiseSFI().plan(space)
        estimates = [
            runner.run(plan, seed=s).layer_estimate(0) for s in range(3)
        ]
        text = render_sample_figure(table.layer_rate(0), {"layer-wise": estimates})
        assert "S0" in text and "S2" in text

    def test_ascii_bars_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        assert ascii_bars([], []) == "(empty)"


class TestMethodComparisonRendering:
    def test_table3_layout(self, truth_setup):
        space, table = truth_setup
        runner = CampaignRunner(TableOracle(table, space), space)
        comparisons = []
        for planner in (NetworkWiseSFI(), LayerWiseSFI()):
            result = runner.run(planner.plan(space), seed=0)
            comparisons.append(
                MethodComparison.from_report(validate_campaign(result, table))
            )
        text = render_method_comparison(
            comparisons, exhaustive_n=space.total_population
        )
        assert "exhaustive" in text
        assert "network-wise" in text


class TestCriticality:
    def test_layer_ranking(self, truth_setup):
        _, table = truth_setup
        ranking = layer_ranking(table)
        assert ranking[0].layer == 2  # the doubly-critical layer
        assert ranking[0].rate > ranking[1].rate

    def test_most_critical_layer(self, truth_setup):
        _, table = truth_setup
        assert most_critical_layer(table).layer == 2

    def test_bit_ranking(self, truth_setup):
        _, table = truth_setup
        ranking = bit_ranking(table)
        assert ranking[0].bit == 30
        assert ranking[1].bit == 29
        assert ranking[2].rate == 0.0

    def test_most_critical_bit(self, truth_setup):
        _, table = truth_setup
        assert most_critical_bit(table).bit == 30

    def test_estimated_bit_ranking_matches_truth(self, truth_setup):
        space, table = truth_setup
        result = CampaignRunner(TableOracle(table, space), space).run(
            DataUnawareSFI().plan(space), seed=0
        )
        ranking = estimated_bit_ranking(result)
        assert ranking[0].bit == 30

    def test_estimated_bit_ranking_rejects_coarse_campaigns(self, truth_setup):
        """The paper's core argument: you cannot rank bits from a
        network-wise sample."""
        space, table = truth_setup
        result = CampaignRunner(TableOracle(table, space), space).run(
            NetworkWiseSFI().plan(space), seed=0
        )
        with pytest.raises(ValueError, match="Bernoulli"):
            estimated_bit_ranking(result)
