"""Tests for repro.models: topology, parameter counts, stages, registry."""

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import enumerate_weight_layers
from repro.models import (
    MODELS,
    create_model,
    mobilenetv2,
    mobilenetv2_mini,
    resnet8_mini,
    resnet20,
    resnet20_mini,
)
from repro.paperdata import (
    MOBILENETV2_TOTALS,
    RESNET20_STANDARD_LAYER_PARAMS,
)
from repro.tensor import Tensor

rng = np.random.default_rng(11)


class TestResNet20:
    def test_weight_layer_count_matches_paper(self):
        layers = enumerate_weight_layers(resnet20())
        assert len(layers) == 20

    def test_per_layer_params_match_standard_topology(self):
        layers = enumerate_weight_layers(resnet20())
        sizes = tuple(layer.size for layer in layers)
        assert sizes == RESNET20_STANDARD_LAYER_PARAMS

    def test_total_weights(self):
        layers = enumerate_weight_layers(resnet20())
        assert sum(layer.size for layer in layers) == 268_336

    def test_forward_shape(self):
        model = resnet20().eval()
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        assert model.forward_fast(x).shape == (2, 10)

    def test_option_a_shortcut_rejects_odd_increase(self):
        from repro.models import ResNetCIFAR

        with pytest.raises(ValueError, match="even channel increase"):
            ResNetCIFAR(blocks_per_stage=1, widths=(4, 7, 8))


class TestMobileNetV2:
    def test_weight_layer_count_matches_paper(self):
        layers = enumerate_weight_layers(mobilenetv2())
        assert len(layers) == MOBILENETV2_TOTALS["layers"] == 54

    def test_total_weights_match_paper_exactly(self):
        layers = enumerate_weight_layers(mobilenetv2())
        total = sum(layer.size for layer in layers)
        assert total == MOBILENETV2_TOTALS["parameters"] == 2_203_584

    def test_exhaustive_population_matches_paper(self):
        layers = enumerate_weight_layers(mobilenetv2())
        assert (
            sum(layer.size for layer in layers) * 64
            == MOBILENETV2_TOTALS["exhaustive"]
        )

    def test_forward_shape(self):
        model = mobilenetv2_mini().eval()
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        assert model.forward_fast(x).shape == (2, 10)

    def test_depthwise_blocks_present(self):
        from repro.nn import Conv2d

        model = mobilenetv2_mini()
        depthwise = [
            m
            for m in model.modules()
            if isinstance(m, Conv2d) and m.groups > 1
        ]
        assert len(depthwise) == 3  # one per inverted residual block

    def test_residual_only_when_shape_kept(self):
        from repro.models import InvertedResidual

        model = mobilenetv2()
        blocks = [m for m in model.modules() if isinstance(m, InvertedResidual)]
        assert len(blocks) == 17
        for block in blocks:
            expected = block.stride == 1 and block.in_channels == block.out_channels
            assert block.use_residual == expected
        assert any(block.use_residual for block in blocks)


class TestStages:
    @pytest.mark.parametrize("factory", [resnet8_mini, mobilenetv2_mini])
    def test_stage_composition_equals_forward(self, factory):
        model = factory().eval()
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        full = model.forward_fast(x)
        staged = x
        for stage in model.stage_modules():
            staged = stage.forward_fast(staged)
        np.testing.assert_allclose(staged, full, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("factory", [resnet8_mini, mobilenetv2_mini])
    def test_stages_cover_all_weight_layers(self, factory):
        model = factory()
        stage_module_ids = set()
        for stage in model.stage_modules():
            stage_module_ids.update(id(m) for m in stage.modules())
        for layer in enumerate_weight_layers(model):
            assert id(layer.module) in stage_module_ids

    @pytest.mark.parametrize("factory", [resnet8_mini, mobilenetv2_mini])
    def test_autograd_forward_matches_fast(self, factory):
        model = factory().eval()
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        slow = model(Tensor(x)).data
        fast = model.forward_fast(x)
        np.testing.assert_allclose(fast, slow, rtol=1e-4, atol=1e-5)


class TestRegistry:
    def test_all_models_constructible(self):
        for name in MODELS:
            model = create_model(name)
            assert len(enumerate_weight_layers(model)) > 0

    def test_unknown_model(self):
        with pytest.raises(KeyError, match="unknown model"):
            create_model("vgg16")

    def test_pretrained_missing_weights_message(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_ARTIFACTS", str(tmp_path))
        with pytest.raises(FileNotFoundError, match="train_models"):
            create_model("resnet8_mini", pretrained=True)

    def test_deterministic_init(self):
        a = resnet8_mini(seed=5)
        b = resnet8_mini(seed=5)
        for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
            np.testing.assert_array_equal(pa.data, pb.data)

    def test_seeds_differ(self):
        a = resnet8_mini(seed=1)
        b = resnet8_mini(seed=2)
        wa = next(iter(a.parameters())).data
        wb = next(iter(b.parameters())).data
        assert not np.array_equal(wa, wb)


class TestTrainedAccuracy:
    def test_pretrained_minis_accurate(self):
        """Pretrained minis must classify well for FI results to mean
        anything (the paper's nets were at 91.7% / 92.01%)."""
        from repro.models import pretrained_path

        data = SynthCIFAR("test", size=256, seed=1234)
        for name in ("resnet8_mini", "mobilenetv2_mini"):
            if not pretrained_path(name).is_file():
                pytest.skip(f"no trained weights for {name}")
            model = create_model(name, pretrained=True)
            predictions = model.forward_fast(data.images).argmax(axis=1)
            accuracy = (predictions == data.labels).mean()
            assert accuracy > 0.9
