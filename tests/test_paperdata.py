"""Consistency tests for the published reference numbers in paperdata."""

from repro.paperdata import (
    CAMPAIGN_CONFIG,
    HEADLINE,
    MOBILENETV2_TOTALS,
    RESNET20_DATA_AWARE,
    RESNET20_DATA_UNAWARE,
    RESNET20_EXHAUSTIVE,
    RESNET20_LAYER_WISE,
    RESNET20_NETWORK_WISE,
    RESNET20_PAPER_LAYER_PARAMS,
    RESNET20_STANDARD_LAYER_PARAMS,
    RESNET20_TOTALS,
    TABLE3_MOBILENETV2,
    TABLE3_RESNET20,
)


class TestInternalConsistency:
    def test_paper_params_sum(self):
        assert sum(RESNET20_PAPER_LAYER_PARAMS) == RESNET20_TOTALS["parameters"]

    def test_standard_params_differ_by_anomaly(self):
        assert (
            sum(RESNET20_PAPER_LAYER_PARAMS)
            - sum(RESNET20_STANDARD_LAYER_PARAMS)
            == 10
        )

    def test_exhaustive_is_64x_params(self):
        assert (
            sum(RESNET20_EXHAUSTIVE)
            == RESNET20_TOTALS["exhaustive"]
            == RESNET20_TOTALS["parameters"] * 64
        )

    def test_column_lengths(self):
        for column in (
            RESNET20_NETWORK_WISE,
            RESNET20_LAYER_WISE,
            RESNET20_DATA_UNAWARE,
            RESNET20_DATA_AWARE,
        ):
            assert len(column) == 20

    def test_column_totals(self):
        assert sum(RESNET20_LAYER_WISE) == RESNET20_TOTALS["layer-wise"]
        assert sum(RESNET20_DATA_UNAWARE) == RESNET20_TOTALS["data-unaware"]
        assert sum(RESNET20_DATA_AWARE) == RESNET20_TOTALS["data-aware"]
        # The per-layer network-wise column is independently rounded and
        # overshoots the Eq. 1 total slightly (16,628 vs 16,625).
        assert sum(RESNET20_NETWORK_WISE) == RESNET20_TOTALS["network-wise"] + 3

    def test_mobilenet_population(self):
        assert (
            MOBILENETV2_TOTALS["exhaustive"]
            == MOBILENETV2_TOTALS["parameters"] * 64
        )

    def test_table3_injected_percentages(self):
        n, pct, _ = TABLE3_RESNET20["data-aware"]
        assert pct == HEADLINE["resnet20_injected_percent"]
        assert round(n / RESNET20_TOTALS["exhaustive"] * 100, 2) == pct
        n, pct, _ = TABLE3_MOBILENETV2["data-aware"]
        assert pct == HEADLINE["mobilenetv2_injected_percent"]
        assert round(n / MOBILENETV2_TOTALS["exhaustive"] * 100, 2) == pct

    def test_table3_margin_ordering(self):
        """In both published tables: network-wise breaks the 1% target,
        every finer method respects it."""
        for table in (TABLE3_RESNET20, TABLE3_MOBILENETV2):
            assert table["network-wise"][2] > 1.0
            for method in ("layer-wise", "data-unaware", "data-aware"):
                assert table[method][2] < 1.0

    def test_campaign_config(self):
        assert CAMPAIGN_CONFIG["t"] == 2.58
        assert CAMPAIGN_CONFIG["error_margin"] == 0.01

    def test_headline_claim_band(self):
        """'about 1.50% of the possible faults' averages the two nets."""
        average = (
            HEADLINE["resnet20_injected_percent"]
            + HEADLINE["mobilenetv2_injected_percent"]
        ) / 2
        assert abs(average - 0.88) < 0.01  # the 1.50% in the abstract refers
        # to the larger (layer-wise-inclusive) figure; data-aware is lower.
