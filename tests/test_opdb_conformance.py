"""op_db registry completeness and the per-op conformance checks.

Two guarantees:

- **Completeness** — every op kind the plan engine can emit has a
  :data:`~repro.check.kernels.KERNEL_TABLE` row, a reference-backend
  dispatch entry, and at least one op_db sample generator.  Adding a new
  op kind without all three fails here, in tier 1, before any campaign
  can silently run an unchecked kernel.
- **Falsifiability** — the conformance runner actually catches lies: a
  backend that mis-declares batch invariance or a bit-exact tolerance
  class is flagged by the empirical checks (mutation tests).
"""

from __future__ import annotations

import numpy as np

from repro.backends import (
    BACKEND_OP_KINDS,
    BACKEND_PRIMITIVES,
    NumpyBackend,
    get_backend,
)
from repro.check import KERNEL_TABLE, run_op_conformance
from repro.check.opdb import OP_SAMPLES, opdb_kinds, samples_for
from repro.runtime.plan import FUSED_OP_KINDS, OP_KINDS


class TestRegistryCompleteness:
    def test_every_plan_kind_has_a_kernel_table_row(self):
        assert OP_KINDS | FUSED_OP_KINDS <= set(KERNEL_TABLE)

    def test_every_plan_kind_has_a_backend_dispatch_entry(self):
        backend = get_backend("numpy")
        assert OP_KINDS | FUSED_OP_KINDS <= backend.op_kinds()

    def test_every_plan_kind_has_an_opdb_sample(self):
        assert OP_KINDS | FUSED_OP_KINDS <= opdb_kinds()

    def test_primitives_have_opdb_samples(self):
        assert set(BACKEND_PRIMITIVES) <= opdb_kinds()

    def test_opdb_covers_exactly_the_backend_surface(self):
        surface = set(BACKEND_OP_KINDS) | set(BACKEND_PRIMITIVES)
        assert opdb_kinds() == surface

    def test_backend_surface_matches_plan_kinds(self):
        # BACKEND_OP_KINDS is the dispatch contract every backend must
        # implement; it must track the plan vocabulary exactly.
        assert set(BACKEND_OP_KINDS) == OP_KINDS | FUSED_OP_KINDS

    def test_sample_names_are_unique_per_kind(self):
        for kind, samples in OP_SAMPLES.items():
            names = [sample.name for sample in samples]
            assert len(names) == len(set(names)), kind

    def test_samples_for_unknown_kind_is_empty(self):
        assert samples_for("no_such_kind") == ()


class TestConformancePasses:
    def test_reference_backend_is_clean(self):
        results = run_op_conformance(backends=["numpy"])
        bad = [r for r in results if not r.ok]
        assert not bad, [r.to_dict() for r in bad]

    def test_every_kind_is_exercised(self):
        results = run_op_conformance(backends=["numpy"])
        exercised = {r.kind for r in results}
        assert OP_KINDS | FUSED_OP_KINDS <= exercised
        assert set(BACKEND_PRIMITIVES) <= exercised

    def test_results_are_deterministic(self):
        first = [r.to_dict() for r in run_op_conformance(backends=["numpy"])]
        second = [r.to_dict() for r in run_op_conformance(backends=["numpy"])]
        assert first == second


class _BatchCheatBackend(NumpyBackend):
    """Keeps the honest relu="always" claim but leaks batch size into it."""

    name = "batch_cheat"
    is_reference = False

    def relu(self, x):
        # A batch-size-dependent result: the output shifts by an amount
        # proportional to the batch, so a stacked run can never bit-equal
        # the concatenation of its split halves.
        return np.maximum(x, 0.0) + np.float32(1e-3) * x.shape[0]


class _ToleranceCheatBackend(NumpyBackend):
    """Claims bit-exactness while perturbing linear outputs."""

    name = "tolerance_cheat"
    is_reference = False

    def linear(self, x, weight, bias=None):
        return super().linear(x, weight, bias) * np.float32(1.0 + 1e-6)


class TestMutationCatches:
    """The op_db checks must falsify mis-declared backend claims."""

    def test_false_batch_invariance_claim_is_caught(self):
        results = run_op_conformance(backends=[_BatchCheatBackend()])
        failed = [
            r
            for r in results
            if not r.ok
            and r.check == "batch_invariance"
            and r.kind == "relu"
        ]
        assert failed, "stacking check did not falsify the invariance lie"

    def test_false_bitexact_claim_is_caught(self):
        results = run_op_conformance(backends=[_ToleranceCheatBackend()])
        failed = [
            r
            for r in results
            if not r.ok and r.check == "agreement" and r.kind == "linear"
        ]
        assert failed, "agreement check did not falsify the tolerance lie"

    def test_honest_subclass_passes(self):
        # Control: the same harness does not flag an honest backend.
        class Honest(NumpyBackend):
            name = "honest"
            is_reference = False

        results = run_op_conformance(backends=[Honest()])
        assert all(r.ok for r in results)
