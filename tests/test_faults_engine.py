"""Tests for repro.faults.engine: prefix caching and classification."""

import numpy as np
import pytest

from repro.faults import (
    Fault,
    FaultModel,
    FaultOutcome,
    InferenceEngine,
    classify_predictions,
)
from repro.models import ResNetCIFAR, mobilenetv2_mini


@pytest.fixture(scope="module")
def engine(tiny_model, tiny_eval_set):
    images, labels = tiny_eval_set
    return InferenceEngine(tiny_model, images, labels)


class TestClassifyPredictions:
    def test_accuracy_drop_policy(self):
        golden = np.array([0, 1, 2, 3])
        labels = np.array([0, 1, 2, 9])  # last golden prediction is wrong
        # Faulty flips an already-wrong prediction: no accuracy drop.
        faulty = np.array([0, 1, 2, 5])
        assert (
            classify_predictions(faulty, golden, labels)
            is FaultOutcome.NON_CRITICAL
        )
        # Faulty breaks a correct prediction: critical.
        faulty = np.array([9, 1, 2, 3])
        assert (
            classify_predictions(faulty, golden, labels) is FaultOutcome.CRITICAL
        )

    def test_any_mismatch_policy(self):
        golden = np.array([0, 1])
        labels = np.array([5, 5])  # golden is wrong everywhere
        faulty = np.array([0, 2])
        assert (
            classify_predictions(faulty, golden, labels, policy="any_mismatch")
            is FaultOutcome.CRITICAL
        )
        assert (
            classify_predictions(golden, golden, labels, policy="any_mismatch")
            is FaultOutcome.NON_CRITICAL
        )

    def test_threshold_policy(self):
        golden = np.arange(10)
        labels = np.arange(10)
        faulty = golden.copy()
        faulty[0] = 9  # 10% accuracy drop
        assert (
            classify_predictions(
                faulty, golden, labels, policy="accuracy_threshold", threshold=0.2
            )
            is FaultOutcome.NON_CRITICAL
        )
        assert (
            classify_predictions(
                faulty, golden, labels, policy="accuracy_threshold", threshold=0.05
            )
            is FaultOutcome.CRITICAL
        )

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="policy"):
            classify_predictions(
                np.array([0]), np.array([0]), np.array([0]), policy="bogus"
            )


class TestEngine:
    def test_golden_predictions_match_direct_forward(self, engine, tiny_model, tiny_eval_set):
        images, _ = tiny_eval_set
        direct = tiny_model.forward_fast(images).argmax(axis=1)
        np.testing.assert_array_equal(engine.golden_predictions, direct)

    def test_masked_fault_short_circuits(self, engine):
        flat = engine.layers[0].flat_weights()
        flat[0] = 1.0  # bit 30 of 1.0 is 0
        fault = Fault(layer=0, index=0, bit=30, model=FaultModel.STUCK_AT_0)
        before = engine.inference_count
        assert engine.classify(fault) is FaultOutcome.MASKED
        assert engine.inference_count == before

    @pytest.mark.parametrize("layer_frac", [0.0, 0.5, 1.0])
    def test_prefix_cache_matches_full_forward(
        self, tiny_model, tiny_eval_set, layer_frac
    ):
        """Injecting via the engine (partial recompute) must produce the
        same predictions as corrupting the weight and running the whole
        network."""
        images, labels = tiny_eval_set
        engine = InferenceEngine(tiny_model, images, labels)
        layer_idx = int(layer_frac * (len(engine.layers) - 1))
        fault = Fault(
            layer=layer_idx, index=0, bit=30, model=FaultModel.STUCK_AT_1
        )
        cached = engine.predictions_with_fault(fault)
        with engine.injector.inject(fault), np.errstate(all="ignore"):
            full = tiny_model.forward_fast(images).argmax(axis=1)
        np.testing.assert_array_equal(cached, full)

    def test_prefix_cache_on_mobilenet(self, tiny_eval_set):
        images, labels = tiny_eval_set
        model = mobilenetv2_mini(seed=3).eval()
        engine = InferenceEngine(model, images, labels)
        fault = Fault(layer=5, index=3, bit=30, model=FaultModel.STUCK_AT_1)
        cached = engine.predictions_with_fault(fault)
        with engine.injector.inject(fault), np.errstate(all="ignore"):
            full = model.forward_fast(images).argmax(axis=1)
        np.testing.assert_array_equal(cached, full)

    def test_weights_restored_after_classify(self, engine):
        before = engine.layers[2].flat_weights().copy()
        fault = Fault(layer=2, index=1, bit=30, model=FaultModel.STUCK_AT_1)
        engine.classify(fault)
        np.testing.assert_array_equal(engine.layers[2].flat_weights(), before)

    def test_huge_corruption_is_critical_for_trained_model(self, tiny_eval_set):
        """On a model with real predictive structure, exploding a stem
        weight should break at least one prediction."""
        from repro.models import pretrained_path, create_model

        if not pretrained_path("resnet8_mini").is_file():
            pytest.skip("no trained weights")
        images, labels = tiny_eval_set
        model = create_model("resnet8_mini", pretrained=True)
        engine = InferenceEngine(model, images, labels)
        fault = Fault(layer=0, index=0, bit=30, model=FaultModel.STUCK_AT_1)
        assert engine.classify(fault) is FaultOutcome.CRITICAL

    def test_classify_many(self, engine):
        faults = [
            Fault(layer=0, index=i, bit=30, model=FaultModel.STUCK_AT_1)
            for i in range(4)
        ]
        outcomes = engine.classify_many(faults)
        assert len(outcomes) == 4
        assert all(isinstance(o, FaultOutcome) for o in outcomes)

    def test_requires_stage_modules(self, tiny_eval_set):
        from repro.nn import Linear, Sequential

        images, labels = tiny_eval_set
        plain = Sequential(Linear(3 * 32 * 32, 10))
        with pytest.raises(TypeError, match="stage_modules"):
            InferenceEngine(plain, images, labels)

    def test_mismatched_lengths_rejected(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError):
            InferenceEngine(tiny_model, images, labels[:-1])
