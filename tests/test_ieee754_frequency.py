"""Tests for repro.ieee754.frequency."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ieee754 import FLOAT16, FLOAT32, bit_frequencies


class TestBitFrequencies:
    def test_all_zeros(self):
        freqs = bit_frequencies(FLOAT32, np.zeros(10))
        assert freqs.total == 10
        np.testing.assert_array_equal(freqs.f1, 0)
        np.testing.assert_array_equal(freqs.f0, 10)

    def test_known_pattern_for_one(self):
        freqs = bit_frequencies(FLOAT32, np.ones(4))
        # 1.0 = 0x3F800000: bits 23..29 set.
        for bit in range(23, 30):
            assert freqs.f1[bit] == 4
        assert freqs.f1[30] == 0
        assert freqs.f1[31] == 0
        assert freqs.f1[0] == 0

    def test_counts_sum_to_total(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        freqs = bit_frequencies(FLOAT32, values)
        np.testing.assert_array_equal(freqs.f0 + freqs.f1, 100)

    def test_sign_bit_counts_negatives(self):
        values = np.array([1.0, -1.0, -2.0, 3.0, -4.0])
        freqs = bit_frequencies(FLOAT32, values)
        assert freqs.f1[31] == 3

    def test_flattens_input(self):
        freqs = bit_frequencies(FLOAT32, np.ones((2, 3)))
        assert freqs.total == 6

    def test_fraction_ones(self):
        values = np.array([1.0, -1.0])
        freqs = bit_frequencies(FLOAT32, values)
        fractions = freqs.fraction_ones()
        assert fractions[31] == 0.5
        assert fractions[23] == 1.0

    def test_as_rows_msb_first(self):
        freqs = bit_frequencies(FLOAT32, np.ones(1))
        rows = freqs.as_rows()
        assert rows[0][0] == 31
        assert rows[-1][0] == 0
        assert len(rows) == 32

    def test_float16_width(self):
        freqs = bit_frequencies(FLOAT16, np.ones(3))
        assert len(freqs.f0) == 16

    @given(
        st.lists(
            st.floats(allow_nan=False, allow_infinity=False, width=32),
            min_size=1,
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_counts_consistent(self, values):
        array = np.array(values, dtype=np.float32)
        freqs = bit_frequencies(FLOAT32, array)
        assert freqs.total == len(values)
        assert (freqs.f0 >= 0).all() and (freqs.f1 >= 0).all()
        np.testing.assert_array_equal(freqs.f0 + freqs.f1, len(values))
