"""Vectorized engine guarantees: bit-identity, fingerprints, conformance.

The vectorized engine's whole contract is that certification and
variant-axis stacking change throughput, never outcomes: its tables must
be bit-identical to the exact plan engine's, its fingerprint must be
*distinct* (the execution strategy differs) yet *attested compatible*
(the outcomes provably do not), and the dist layer must accept exactly
the mixed-engine fleets that attestation covers — and refuse the rest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.check import (
    PlanVerificationError,
    check_plan_vectorized,
    fingerprints_compatible,
    run_conformance,
    verify_plan_vectorized,
)
from repro.data import SynthCIFAR
from repro.dist import (
    DistError,
    ExhaustiveContext,
    exhaustive_config,
    verify_context_config,
)
from repro.faults import Fault, FaultModel, FaultSpace, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR, create_model
from repro.runtime import (
    DEFAULT_VEC_BATCH_SIZE,
    PlanEngine,
    VectorizedPlanEngine,
    capture_plan,
    create_engine,
    fuse_plan,
)


@pytest.fixture(scope="module")
def tiny_setup():
    """Exact and vectorized plan engines over the same tiny model."""
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    exact = PlanEngine(
        model, data.images, data.labels, fmt=FLOAT16, batch_size=8
    )
    vectorized = VectorizedPlanEngine(
        model, data.images, data.labels, fmt=FLOAT16, batch_size=64
    )
    space = FaultSpace(exact.layers, fmt=FLOAT16)
    return exact, vectorized, space


def all_layer_faults(engine, *, bits=None) -> list[Fault]:
    """A deterministic sample hitting every layer (so every op kind)."""
    total = engine.injector.fmt.total_bits
    if bits is None:
        bits = (0, 1, total // 2, total - 2, total - 1)
    faults = []
    for layer_idx, layer in enumerate(engine.layers):
        for bit in bits:
            for model in (FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1):
                fault = Fault(
                    layer=layer_idx,
                    index=(layer_idx * 7) % layer.size,
                    bit=bit,
                    model=model,
                )
                if not engine.injector.is_masked(fault):
                    faults.append(fault)
    return faults


class TestBitIdentity:
    def test_exhaustive_table_is_bit_identical(self, tiny_setup):
        exact, vectorized, space = tiny_setup
        table_exact = OutcomeTable.from_exhaustive(exact, space, workers=1)
        table_vec = OutcomeTable.from_exhaustive(vectorized, space, workers=1)
        for left, right in zip(table_exact.outcomes, table_vec.outcomes):
            assert left.dtype == right.dtype == np.uint8
            assert np.array_equal(left, right)
        assert table_vec.metadata["inference_count"] == (
            table_exact.metadata["inference_count"]
        )

    def test_prediction_matrix_is_bit_identical(self, tiny_setup):
        exact, vectorized, _ = tiny_setup
        faults = all_layer_faults(exact)
        preds_exact = exact.predictions_for_faults(faults)
        preds_vec = vectorized.predictions_for_faults(faults)
        assert np.array_equal(np.asarray(preds_exact), np.asarray(preds_vec))

    def test_mobilenet_depthwise_fallback_is_bit_identical(self):
        """Depthwise/grouped convs are not batch-invariant; the engine
        must take the exact per-variant path for them and still match."""
        model = create_model("mobilenetv2_mini")
        model.eval()
        data = SynthCIFAR("test", size=8, seed=42)
        exact = PlanEngine(model, data.images, data.labels, batch_size=8)
        vectorized = VectorizedPlanEngine(
            model, data.images, data.labels, batch_size=64
        )
        faults = all_layer_faults(exact, bits=(1, 24, 30))
        preds_exact = exact.predictions_for_faults(faults)
        preds_vec = vectorized.predictions_for_faults(faults)
        assert np.array_equal(np.asarray(preds_exact), np.asarray(preds_vec))
        assert exact.classify_many(faults) == vectorized.classify_many(faults)


class TestFingerprints:
    def test_vectorized_fingerprint_is_distinct_but_compatible(
        self, tiny_setup
    ):
        exact, vectorized, _ = tiny_setup
        assert vectorized.plan_fingerprint != exact.plan_fingerprint
        assert fingerprints_compatible(
            vectorized.plan_fingerprint, exact.plan_fingerprint
        )
        assert fingerprints_compatible(
            exact.plan_fingerprint, vectorized.plan_fingerprint
        )

    def test_engine_fingerprints_are_attested_compatible(self, tiny_setup):
        exact, vectorized, _ = tiny_setup
        assert vectorized.fingerprint() != exact.fingerprint()
        assert fingerprints_compatible(
            vectorized.fingerprint(), exact.fingerprint()
        )
        assert fingerprints_compatible(
            vectorized.fingerprint(), vectorized.fingerprint(kind="module")
        )

    def test_unrelated_fingerprints_are_not_compatible(self):
        assert not fingerprints_compatible("a" * 64, "b" * 64)

    def test_fused_plan_is_refused(self):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
        model.eval()
        fused = fuse_plan(capture_plan(model))
        diagnostics = verify_plan_vectorized(fused)
        assert any(d.rule == "P122" for d in diagnostics)
        with pytest.raises(PlanVerificationError, match="P122"):
            check_plan_vectorized(fused)

    def test_create_engine_wiring(self, tiny_setup):
        exact, _, _ = tiny_setup
        data = SynthCIFAR("test", size=8, seed=42)
        engine = create_engine(
            exact.model, data.images, data.labels, kind="plan_vectorized"
        )
        assert isinstance(engine, VectorizedPlanEngine)
        assert engine.kind == "plan_vectorized"
        assert engine.batch_size == DEFAULT_VEC_BATCH_SIZE
        with pytest.raises(ValueError, match="fusion"):
            create_engine(
                exact.model,
                data.images,
                data.labels,
                kind="plan_vectorized",
                fuse=True,
            )


class TestMixedEngineDist:
    def test_vectorized_worker_joins_exact_campaign(self, tiny_setup):
        """A campaign submitted with the exact plan engine accepts a
        vectorized worker: the verifier attested the fingerprints
        outcome-compatible when the vectorized plan was checked."""
        exact, vectorized, space = tiny_setup
        config = exhaustive_config(exact, space)
        verify_context_config(ExhaustiveContext(vectorized, space), config)

    def test_exact_worker_joins_vectorized_campaign(self, tiny_setup):
        exact, vectorized, space = tiny_setup
        config = exhaustive_config(vectorized, space)
        verify_context_config(ExhaustiveContext(exact, space), config)

    def test_undeclared_engines_stay_refused(self, tiny_setup):
        """Compatibility is pairwise attestation, not a free-for-all: an
        engine over different golden weights shares no declaration."""
        _, vectorized, _ = tiny_setup
        other_model = ResNetCIFAR(
            blocks_per_stage=1, widths=(2, 4, 6), seed=7
        )
        other_model.eval()
        data = SynthCIFAR("test", size=8, seed=42)
        other = PlanEngine(
            other_model, data.images, data.labels, fmt=FLOAT16, batch_size=8
        )
        other_space = FaultSpace(other.layers, fmt=FLOAT16)
        config = exhaustive_config(other, other_space)
        with pytest.raises(DistError, match="fingerprint mismatch"):
            verify_context_config(
                ExhaustiveContext(vectorized, other_space), config
            )


class TestConformance:
    def test_conformance_on_tiny_model(self):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
        model.eval()
        report = run_conformance(model, eval_size=8, faults=48, seed=1)
        assert report.ok
        assert report.bit_exact_attested
        assert report.tolerance == 0.0
        assert report.prediction_flips == 0
        assert report.outcome_flips == 0
        assert report.faults == 48
        payload = report.to_dict()
        assert payload["model"] == "ResNetCIFAR"
        assert payload["flipped_faults"] == []


class TestCliWiring:
    def test_run_parser_accepts_vectorized(self):
        from repro.cli.run import build_parser

        args = build_parser().parse_args(["--engine", "plan_vectorized"])
        assert args.engine == "plan_vectorized"

    def test_dist_parsers_accept_vectorized(self):
        from repro.cli.dist import build_parser

        args = build_parser().parse_args(
            ["submit", "q", "--engine", "plan_vectorized"]
        )
        assert args.engine == "plan_vectorized"
        args = build_parser().parse_args(
            ["work", "q", "--engine", "plan_vectorized"]
        )
        assert args.engine == "plan_vectorized"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["work", "q", "--engine", "module"])

    def test_check_conform_parser(self):
        from repro.cli.check import build_parser

        args = build_parser().parse_args(["conform"])
        assert args.model is None
        assert args.faults == 128
        assert args.tolerance == 0.0
        args = build_parser().parse_args(
            ["conform", "--model", "resnet14_mini", "--model",
             "mobilenetv2_mini", "--faults", "64"]
        )
        assert args.model == ["resnet14_mini", "mobilenetv2_mini"]
        assert args.faults == 64

    def test_check_lint_default_covers_benchmarks(self):
        from repro.cli.check import build_parser

        args = build_parser().parse_args(["lint"])
        assert args.paths == ["src/repro", "benchmarks"]
