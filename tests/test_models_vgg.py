"""Tests for the plain-CNN (VGG-style) zoo member."""

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import FaultSpace, InferenceEngine, enumerate_weight_layers
from repro.models import VGGCIFAR, create_model, vgg_mini
from repro.sfi import DataAwareSFI, DataUnawareSFI
from repro.tensor import Tensor

rng = np.random.default_rng(21)


class TestTopology:
    def test_weight_layer_count(self):
        layers = enumerate_weight_layers(vgg_mini())
        assert len(layers) == 5  # 4 conv blocks + classifier

    def test_forward_shape(self):
        model = vgg_mini().eval()
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        assert model.forward_fast(x).shape == (2, 10)

    def test_autograd_matches_fast(self):
        model = vgg_mini().eval()
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        np.testing.assert_allclose(
            model.forward_fast(x), model(Tensor(x)).data, rtol=1e-4, atol=1e-5
        )

    def test_stage_composition(self):
        model = vgg_mini().eval()
        x = rng.normal(size=(2, 3, 32, 32)).astype(np.float32)
        staged = x
        for stage in model.stage_modules():
            staged = stage.forward_fast(staged)
        np.testing.assert_allclose(
            staged, model.forward_fast(x), rtol=1e-5, atol=1e-6
        )

    def test_registry(self):
        model = create_model("vgg_mini")
        assert isinstance(model, VGGCIFAR)

    def test_empty_widths_rejected(self):
        with pytest.raises(ValueError):
            VGGCIFAR(widths=())

    def test_no_residual_paths(self):
        """Plain stack: no module adds its input back (structural check —
        corrupting a mid-stage activation to zero changes all downstream
        activations only through the stack)."""
        model = vgg_mini().eval()
        stages = model.stage_modules()
        x = rng.normal(size=(1, 3, 32, 32)).astype(np.float32)
        a = stages[0].forward_fast(x)
        downstream = stages[1].forward_fast(a)
        zeroed = stages[1].forward_fast(np.zeros_like(a))
        assert not np.allclose(downstream, zeroed)


class TestFaultCampaignsOnVGG:
    def test_fault_space(self):
        space = FaultSpace(vgg_mini())
        assert space.total_population == 4410 * 64

    def test_planners_cover_plain_topology(self):
        space = FaultSpace(vgg_mini())
        unaware = DataUnawareSFI().plan(space)
        aware = DataAwareSFI().plan(space)
        assert aware.total_injections < unaware.total_injections

    def test_engine_classifies_faults(self):
        from repro.faults import Fault, FaultModel

        model = vgg_mini().eval()
        data = SynthCIFAR("test", size=8, seed=3)
        engine = InferenceEngine(model, data.images, data.labels)
        fault = Fault(layer=2, index=0, bit=30, model=FaultModel.STUCK_AT_1)
        cached = engine.predictions_with_fault(fault)
        with engine.injector.inject(fault), np.errstate(all="ignore"):
            full = model.forward_fast(data.images).argmax(axis=1)
        np.testing.assert_array_equal(cached, full)
