"""Tests for repro.stats.sample_size — including digit-exact reproduction
of the paper's Tables I and II sample sizes."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paperdata import (
    MOBILENETV2_TOTALS,
    RESNET20_DATA_UNAWARE,
    RESNET20_LAYER_WISE,
    RESNET20_PAPER_LAYER_PARAMS,
    RESNET20_TOTALS,
)
from repro.stats import confidence_to_t, sample_size, sample_size_exact, sample_size_infinite

T99 = confidence_to_t(0.99)  # 2.58, the paper's constant


class TestFormula:
    def test_infinite_population(self):
        # Classic n = t^2 p(1-p) / e^2 at p=0.5, e=1%, t=2.58 -> 16641.
        assert sample_size_infinite(0.01, T99) == pytest.approx(16641.0)

    def test_fpc_reduces_sample(self):
        unlimited = sample_size_infinite(0.01, T99)
        corrected = sample_size_exact(100_000, 0.01, T99)
        assert corrected < unlimited

    def test_small_population_approaches_census(self):
        # With N comparable to the unlimited n, almost everything is needed.
        n = sample_size(1000, 0.01, T99)
        assert n > 900

    def test_p_zero_or_one_needs_no_samples(self):
        assert sample_size(10_000, 0.01, T99, p=0.0) == 0
        assert sample_size(10_000, 0.01, T99, p=1.0) == 0

    def test_p_half_maximises_sample(self):
        at_half = sample_size(1_000_000, 0.01, T99, p=0.5)
        for p in (0.1, 0.3, 0.45, 0.6, 0.9):
            assert sample_size(1_000_000, 0.01, T99, p=p) < at_half

    def test_min_samples_clamp(self):
        assert sample_size(10_000, 0.01, T99, p=0.0, min_samples=5) == 5

    def test_min_samples_never_exceeds_population(self):
        assert sample_size(3, 0.01, T99, p=0.0, min_samples=10) == 3

    def test_zero_population(self):
        assert sample_size(0, 0.01, T99) == 0

    def test_argument_validation(self):
        with pytest.raises(ValueError):
            sample_size(100, -0.01, T99)
        with pytest.raises(ValueError):
            sample_size(100, 0.01, 0.0)
        with pytest.raises(ValueError):
            sample_size(100, 0.01, T99, p=1.5)
        with pytest.raises(ValueError):
            sample_size(-1, 0.01, T99)
        with pytest.raises(ValueError):
            sample_size(100, 0.01, T99, min_samples=-1)

    @given(
        population=st.integers(1, 10_000_000),
        e=st.floats(0.001, 0.2),
        p=st.floats(0.0, 1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_bounds(self, population, e, p):
        n = sample_size(population, e, T99, p=p)
        assert 0 <= n <= population

    @given(population=st.integers(2, 1_000_000))
    @settings(max_examples=100, deadline=None)
    def test_property_monotone_in_margin(self, population):
        loose = sample_size(population, 0.05, T99)
        tight = sample_size(population, 0.01, T99)
        assert tight >= loose


class TestPaperTableI:
    """Digit-exact reproduction of the paper's published sample sizes."""

    def test_network_wise_total(self):
        n = sample_size(RESNET20_TOTALS["exhaustive"], 0.01, T99)
        assert n == RESNET20_TOTALS["network-wise"] == 16_625

    def test_layer_wise_column(self):
        for params, expected in zip(
            RESNET20_PAPER_LAYER_PARAMS, RESNET20_LAYER_WISE
        ):
            assert sample_size(params * 64, 0.01, T99) == expected

    def test_layer_wise_total(self):
        total = sum(
            sample_size(p * 64, 0.01, T99) for p in RESNET20_PAPER_LAYER_PARAMS
        )
        assert total == RESNET20_TOTALS["layer-wise"] == 307_650

    def test_data_unaware_column(self):
        for params, expected in zip(
            RESNET20_PAPER_LAYER_PARAMS, RESNET20_DATA_UNAWARE
        ):
            per_bit = sample_size(params * 2, 0.01, T99)
            assert per_bit * 32 == expected

    def test_data_unaware_total(self):
        total = sum(
            sample_size(p * 2, 0.01, T99) * 32
            for p in RESNET20_PAPER_LAYER_PARAMS
        )
        assert total == RESNET20_TOTALS["data-unaware"] == 4_885_760

    def test_mobilenet_network_wise(self):
        n = sample_size(MOBILENETV2_TOTALS["exhaustive"], 0.01, T99)
        assert n == MOBILENETV2_TOTALS["network-wise"] == 16_639
