"""Tests for repro.faults.activations."""

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import (
    ActivationFaultSpace,
    ActivationInferenceEngine,
    ActivationSite,
    Fault,
    FaultModel,
    FaultOutcome,
)
from repro.models import ResNetCIFAR
from repro.sfi import CampaignRunner, DataUnawareSFI, LayerWiseSFI


@pytest.fixture(scope="module")
def engine(tiny_model, tiny_eval_set):
    images, labels = tiny_eval_set
    return ActivationInferenceEngine(tiny_model, images, labels)


@pytest.fixture(scope="module")
def space(engine):
    return ActivationFaultSpace(engine)


class TestSites:
    def test_sites_cover_all_intermediate_stages(self, engine):
        # Stages minus the logits stage by default.
        assert len(engine.sites) == len(engine.stages) - 1

    def test_site_shapes_match_activations(self, engine):
        for site in engine.sites:
            activation = engine.site_activation(site)
            assert activation.shape[1:] == site.shape
            assert site.size == int(np.prod(site.shape))

    def test_include_logits_option(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        with_logits = ActivationInferenceEngine(
            tiny_model, images, labels, include_logits=True
        )
        assert len(with_logits.sites) == len(with_logits.stages)

    def test_population_arithmetic(self, engine, space):
        elements = sum(site.size for site in engine.sites)
        assert space.total_population == elements * 32  # one flip per bit


class TestClassification:
    def test_flip_on_high_exponent_changes_predictions(self, engine):
        """Exploding one activation element across the batch must perturb
        the logits downstream."""
        fault = Fault(layer=0, index=0, bit=30, model=FaultModel.BIT_FLIP)
        predictions = engine.predictions_with_fault(fault)
        assert predictions.shape == engine.golden_predictions.shape

    def test_mantissa_lsb_flip_is_benign(self, engine):
        fault = Fault(layer=1, index=5, bit=0, model=FaultModel.BIT_FLIP)
        outcome = engine.classify(fault)
        assert outcome in (FaultOutcome.NON_CRITICAL, FaultOutcome.MASKED)

    def test_stuck_at_can_be_masked(self, tiny_model, tiny_eval_set):
        """ReLU outputs are non-negative: stuck-at-0 on the sign bit is
        masked for every image."""
        images, labels = tiny_eval_set
        engine = ActivationInferenceEngine(tiny_model, images, labels)
        fault = Fault(layer=0, index=3, bit=31, model=FaultModel.STUCK_AT_0)
        assert engine.classify(fault) is FaultOutcome.MASKED

    def test_transient_flip_never_masked_on_sign(self, engine):
        fault = Fault(layer=0, index=3, bit=31, model=FaultModel.BIT_FLIP)
        assert engine.classify(fault) is not FaultOutcome.MASKED

    def test_corruption_does_not_leak_into_cache(self, engine):
        """Classifying a fault must not mutate the cached golden
        activations."""
        site = engine.sites[0]
        before = engine.site_activation(site).copy()
        fault = Fault(layer=0, index=0, bit=30, model=FaultModel.BIT_FLIP)
        engine.classify(fault)
        np.testing.assert_array_equal(engine.site_activation(site), before)

    def test_prefix_equals_full_recomputation(self, tiny_model, tiny_eval_set):
        """Corrupting the cached stage output then running the suffix must
        equal corrupting inside a full manual forward."""
        images, labels = tiny_eval_set
        engine = ActivationInferenceEngine(tiny_model, images, labels)
        fault = Fault(layer=1, index=7, bit=30, model=FaultModel.BIT_FLIP)
        fast = engine.predictions_with_fault(fault)

        x = images
        stages = tiny_model.stage_modules()
        with np.errstate(all="ignore"):
            for idx, stage in enumerate(stages):
                x = stage.forward_fast(x)
                if idx == 1:
                    flat = x.reshape(len(x), -1)
                    from repro.ieee754 import FLOAT32, flip_bit

                    bits = FLOAT32.encode(flat[:, 7])
                    flat[:, 7] = FLOAT32.decode_native(flip_bit(FLOAT32, bits, 30))
                    x = flat.reshape(x.shape)
        np.testing.assert_array_equal(fast, x.argmax(axis=1))


class TestCampaignsOverActivations:
    def test_planners_work_on_activation_space(self, space):
        plan = LayerWiseSFI(error_margin=0.05, confidence=0.95).plan(space)
        assert len(plan.items) == len(space.layers)
        assert plan.total_injections > 0

    def test_statistical_campaign_runs(self, engine, space):
        class ActivationOracle:
            def __init__(self, eng):
                self.eng = eng

            def classify(self, fault):
                return self.eng.classify(fault)

        plan = DataUnawareSFI(error_margin=0.2, confidence=0.9).plan(space)
        result = CampaignRunner(ActivationOracle(engine), space).run(
            plan, seed=0
        )
        assert result.total_injections == plan.total_injections
        net = result.network_estimate()
        assert 0.0 <= net.p_hat <= 1.0


class TestValidation:
    def test_requires_stage_modules(self, tiny_eval_set):
        from repro.nn import Linear, Sequential

        images, labels = tiny_eval_set
        with pytest.raises(TypeError):
            ActivationInferenceEngine(
                Sequential(Linear(4, 4)), images, labels
            )

    def test_mismatched_labels(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError):
            ActivationInferenceEngine(tiny_model, images, labels[:-1])

    def test_site_dataclass(self):
        site = ActivationSite(index=0, stage=2, shape=(4, 8, 8))
        assert site.size == 256
