"""Tests for repro.stats.allocation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paperdata import RESNET20_NETWORK_WISE, RESNET20_PAPER_LAYER_PARAMS
from repro.stats import neyman_allocation, proportional_allocation


class TestProportional:
    def test_sums_to_total(self):
        parts = proportional_allocation(100, [10, 20, 70])
        assert sum(parts) == 100

    def test_proportionality(self):
        parts = proportional_allocation(100, [100, 300, 600])
        assert parts == [10, 30, 60]

    def test_rounding_assigns_remainders(self):
        parts = proportional_allocation(10, [4, 4, 4])
        assert sum(parts) == 10
        assert max(parts) - min(parts) <= 1

    def test_respects_capacity(self):
        parts = proportional_allocation(5, [1, 1, 100])
        assert sum(parts) == 5
        assert parts[0] <= 1 and parts[1] <= 1

    def test_zero_total(self):
        assert proportional_allocation(0, [5, 5]) == [0, 0]

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            proportional_allocation(11, [5, 5])

    def test_empty_strata_with_positive_total_rejected(self):
        with pytest.raises(ValueError):
            proportional_allocation(1, [0, 0])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            proportional_allocation(-1, [5])
        with pytest.raises(ValueError):
            proportional_allocation(1, [-5])

    def test_paper_network_wise_per_layer_shares(self):
        """The paper's Table I network-wise column is each layer's
        proportional share of n=16,625, rounded independently."""
        populations = [p * 64 for p in RESNET20_PAPER_LAYER_PARAMS]
        total_pop = sum(populations)
        for population, expected in zip(populations, RESNET20_NETWORK_WISE):
            share = round(16_625 * population / total_pop)
            assert share == expected

    @given(
        total_frac=st.floats(0.0, 1.0),
        sizes=st.lists(st.integers(0, 1000), min_size=1, max_size=20),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_exact_sum_and_capacity(self, total_frac, sizes):
        population = sum(sizes)
        total = int(population * total_frac)
        parts = proportional_allocation(total, sizes)
        assert sum(parts) == total
        assert all(0 <= part <= size for part, size in zip(parts, sizes))


class TestNeyman:
    def test_zero_variance_stratum_gets_nothing(self):
        parts = neyman_allocation(10, [100, 100], [0.0, 1.0])
        assert parts == [0, 10]

    def test_degrades_to_proportional_when_all_zero(self):
        parts = neyman_allocation(10, [100, 300], [0.0, 0.0])
        assert sum(parts) == 10
        assert parts[1] > parts[0]

    def test_weights_by_size_times_std(self):
        parts = neyman_allocation(100, [100, 100], [1.0, 3.0])
        assert sum(parts) == 100
        assert parts[1] == pytest.approx(75, abs=1)

    def test_capacity_spill(self):
        # Stratum 1 can only take 5; excess must spill to stratum 0.
        parts = neyman_allocation(20, [100, 5], [0.0, 1.0])
        assert parts[1] == 5
        assert sum(parts) == 20

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            neyman_allocation(10, [1, 2], [0.5])

    def test_negative_std_rejected(self):
        with pytest.raises(ValueError):
            neyman_allocation(10, [10, 10], [0.5, -0.1])

    def test_total_exceeding_population_rejected(self):
        with pytest.raises(ValueError):
            neyman_allocation(100, [10, 10], [1.0, 1.0])

    @given(
        total_frac=st.floats(0.0, 1.0),
        strata=st.lists(
            st.tuples(st.integers(1, 500), st.floats(0.0, 5.0)),
            min_size=1,
            max_size=10,
        ),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_sum_and_capacity(self, total_frac, strata):
        sizes = [s for s, _ in strata]
        stds = [d for _, d in strata]
        total = int(sum(sizes) * total_frac)
        parts = neyman_allocation(total, sizes, stds)
        assert sum(parts) == total
        assert all(0 <= part <= size for part, size in zip(parts, sizes))
