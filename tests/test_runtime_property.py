"""Property test: plan and module engines agree fault-for-fault.

Hypothesis drives randomized mini models, fault coordinates across all
three fault models, and every classification policy; the batched plan
engine must reproduce the module engine's outcomes exactly.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.data import SynthCIFAR
from repro.faults import Fault, FaultModel, InferenceEngine
from repro.ieee754 import FLOAT16, FLOAT32
from repro.models import ResNetCIFAR
from repro.runtime import PlanEngine

_WIDTHS = [(2, 4, 6), (2, 4, 8), (4, 6, 8)]
_POLICIES = ["accuracy_drop", "any_mismatch", "accuracy_threshold"]


@settings(max_examples=15, deadline=None)
@given(
    widths=st.sampled_from(_WIDTHS),
    model_seed=st.integers(min_value=0, max_value=7),
    policy=st.sampled_from(_POLICIES),
    use_half=st.booleans(),
    batch_size=st.integers(min_value=1, max_value=6),
    data=st.data(),
)
def test_plan_outcomes_match_module(
    widths, model_seed, policy, use_half, batch_size, data
):
    model = ResNetCIFAR(blocks_per_stage=1, widths=widths, seed=model_seed)
    model.eval()
    eval_set = SynthCIFAR("test", size=8, seed=42)
    fmt = FLOAT16 if use_half else FLOAT32
    threshold = 0.25 if policy == "accuracy_threshold" else 0.0
    kwargs = dict(fmt=fmt, policy=policy, threshold=threshold)
    module_engine = InferenceEngine(
        model, eval_set.images, eval_set.labels, **kwargs
    )
    plan_engine = PlanEngine(
        model, eval_set.images, eval_set.labels, batch_size=batch_size, **kwargs
    )

    faults = []
    for fault_model in FaultModel:
        for _ in range(4):
            layer = data.draw(
                st.integers(0, len(module_engine.layers) - 1), label="layer"
            )
            faults.append(
                Fault(
                    layer=layer,
                    index=data.draw(
                        st.integers(0, module_engine.layers[layer].size - 1),
                        label="index",
                    ),
                    bit=data.draw(
                        st.integers(0, fmt.total_bits - 1), label="bit"
                    ),
                    model=fault_model,
                )
            )

    assert plan_engine.classify_many(faults) == module_engine.classify_many(
        faults
    )
    # Batched tail passes still count one logical inference per fault.
    assert plan_engine.inference_count == module_engine.inference_count
