"""Execution-plan capture: structure, bit-exact replay, and fusion."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models import (
    MobileNetV2CIFAR,
    ResNetCIFAR,
    VGGCIFAR,
)
from repro.nn import Module
from repro.runtime import (
    ExecutionPlan,
    FUSED_OP_KINDS,
    OP_KINDS,
    PlanBuilder,
    capture_plan,
    fuse_plan,
)


def _zoo_minis():
    """One small instance per zoo architecture (fresh random weights)."""
    return [
        ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7).eval(),
        MobileNetV2CIFAR(seed=7).eval(),
        VGGCIFAR(seed=7).eval(),
    ]


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(0)
    return rng.standard_normal((4, 3, 32, 32)).astype(np.float32)


class TestCaptureBitExact:
    @pytest.mark.parametrize("model_idx", range(3))
    def test_plan_replays_forward_fast_bitwise(self, batch, model_idx):
        """The unfused plan is byte-for-byte forward_fast."""
        model = _zoo_minis()[model_idx]
        plan = capture_plan(model)
        expected = model.forward_fast(batch)
        got = plan.execute(batch)
        assert expected.tobytes() == got.tobytes()

    def test_capture_handles_padded_shortcut(self, batch):
        """Stage transitions (stride-2 + channel padding) lower correctly."""
        model = ResNetCIFAR(blocks_per_stage=2, widths=(4, 8, 16), seed=1)
        model.eval()
        plan = capture_plan(model)
        assert {"subsample2d", "pad_channels", "add"} <= {
            op.kind for op in plan.ops
        }
        assert model.forward_fast(batch).tobytes() == plan.execute(batch).tobytes()

    def test_base_module_capture_raises(self):
        class Opaque(Module):
            pass

        with pytest.raises(NotImplementedError, match="capture"):
            Opaque().capture(PlanBuilder(), 0)


class TestPlanStructure:
    @pytest.fixture(scope="class")
    def plan(self):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        return capture_plan(model.eval())

    def test_plan_is_forward_only_ssa(self, plan):
        seen = {plan.input_slot}
        for index, op in enumerate(plan.ops):
            assert op.index == index
            assert all(slot in seen for slot in op.inputs)
            assert op.output not in seen  # each op writes a fresh slot
            seen.add(op.output)
        assert plan.output_slot == plan.ops[-1].output
        assert all(op.kind in OP_KINDS for op in plan.ops)

    def test_affected_ops_are_the_transitive_consumers(self, plan):
        first_conv = next(op for op in plan.ops if op.kind == "conv2d")
        affected = plan.affected_ops(first_conv.index)
        # Everything after the stem conv depends on it in a chain network.
        assert affected == tuple(
            op.index for op in plan.ops[first_conv.index + 1 :]
        )
        # The final linear affects nothing downstream.
        assert plan.affected_ops(plan.ops[-1].index) == ()

    def test_affected_ops_skip_parallel_shortcut(self, plan):
        # A block's conv1 does not dirty its own shortcut input: the add
        # consumes both, so it is affected, but the ops feeding only the
        # shortcut branch stay clean.
        convs = [op for op in plan.ops if op.kind == "conv2d"]
        block_conv = convs[1]  # first in-block conv (stem is convs[0])
        affected = set(plan.affected_ops(block_conv.index))
        adds = [op.index for op in plan.ops if op.kind == "add"]
        assert adds[0] in affected

    def test_consumers(self, plan):
        consumers = plan.consumers(plan.ops[0].output)
        assert consumers and all(
            plan.ops[0].output in op.inputs for op in consumers
        )

    def test_builder_rejects_unknown_kind(self):
        builder = PlanBuilder()
        with pytest.raises(ValueError, match="unknown op kind"):
            builder.emit("softmax", (0,))

    def test_builder_rejects_undefined_slot(self):
        builder = PlanBuilder()
        with pytest.raises(ValueError, match="undefined slot"):
            builder.emit("relu", (5,))

    def test_builder_rejects_empty_plan(self):
        with pytest.raises(ValueError, match="empty"):
            PlanBuilder().build(0)

    def test_builder_rejects_wrong_output_slot(self):
        builder = PlanBuilder()
        builder.emit("relu", (0,))
        builder.emit("relu", (1,))
        with pytest.raises(ValueError, match="last op"):
            builder.build(1)

    def test_opspec_repr_is_compact(self, plan):
        assert repr(plan.ops[0]) == "%1 = conv2d(0)"


class TestFusePlan:
    @pytest.fixture(scope="class")
    def model(self):
        return ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7).eval()

    def test_fuse_folds_every_conv_bn_pair(self, model):
        plan = capture_plan(model)
        fused = fuse_plan(plan)
        convs = sum(op.kind == "conv2d" for op in plan.ops)
        bns = sum(op.kind == "batchnorm2d" for op in plan.ops)
        assert bns == convs  # every conv feeds a BN in this zoo
        assert sum(op.kind == "conv2d_bn" for op in fused.ops) == convs
        assert not any(op.kind == "batchnorm2d" for op in fused.ops)
        assert len(fused.ops) == len(plan.ops) - bns
        assert fused.fusions == ("bn_fold", "im2col_workspace")
        assert all(
            op.kind in OP_KINDS | FUSED_OP_KINDS for op in fused.ops
        )

    def test_fused_plan_is_close_but_separate(self, model, batch):
        unfused = capture_plan(model).execute(batch)
        fused = capture_plan(model, fuse=True).execute(batch)
        np.testing.assert_allclose(fused, unfused, rtol=1e-4, atol=1e-5)

    def test_fuse_is_idempotent(self, model):
        fused = capture_plan(model, fuse=True)
        assert fuse_plan(fused) is fused

    def test_fused_plan_keeps_slot_numbering_valid(self, model, batch):
        fused = capture_plan(model, fuse=True)
        assert fused.output_slot == fused.ops[-1].output
        # execute_all still works against the original slot count.
        buffers = fused.execute_all(batch)
        assert len(buffers) == fused.num_slots

    def test_unfused_plan_untouched(self, model):
        plan = capture_plan(model)
        assert plan.fusions == ()
        assert isinstance(plan, ExecutionPlan)
