"""Tests for ``repro-verify-artifacts``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli.verify import main
from repro.store import load_manifest, save_verified_npz


@pytest.fixture()
def store_tree(tmp_path):
    """An artifact tree mirroring the real layout (weights + exhaustive)."""
    weights = tmp_path / "weights"
    exhaustive = tmp_path / "exhaustive"
    for directory, names in (
        (weights, ["resnet8_mini.npz", "resnet14_mini.npz"]),
        (exhaustive, ["resnet8_mini_n64_accuracy_drop.npz"]),
    ):
        for name in names:
            save_verified_npz(
                directory / name, {"x": np.arange(256, dtype=np.float32)}
            )
    return tmp_path


class TestVerifyCLI:
    def test_clean_store_passes(self, store_tree, capsys):
        assert main(["--artifacts", str(store_tree)]) == 0
        out = capsys.readouterr().out
        assert "all 3 artifact(s) verified" in out

    def test_corrupt_artifact_fails_with_nonzero_exit(self, store_tree, capsys):
        victim = store_tree / "weights" / "resnet8_mini.npz"
        victim.write_bytes(victim.read_bytes()[:80])
        assert main(["--artifacts", str(store_tree)]) == 1
        out = capsys.readouterr().out
        assert "FAIL" in out and "resnet8_mini.npz" in out

    def test_every_truncated_artifact_is_reported(self, store_tree, capsys):
        for path in store_tree.rglob("*.npz"):
            path.write_bytes(path.read_bytes()[:60])
        assert main(["--artifacts", str(store_tree)]) == 1
        out = capsys.readouterr().out
        assert "3 of 3 artifact(s) FAILED" in out

    def test_missing_listed_artifact_fails(self, store_tree):
        (store_tree / "weights" / "resnet14_mini.npz").unlink()
        assert main(["--artifacts", str(store_tree)]) == 1

    def test_unlisted_but_valid_artifact_passes(self, store_tree, capsys):
        extra = store_tree / "weights" / "handmade.npz"
        np_arrays = {"x": np.arange(4)}
        import io

        buffer = io.BytesIO()
        np.savez_compressed(buffer, **np_arrays)
        extra.write_bytes(buffer.getvalue())
        assert main(["--artifacts", str(store_tree)]) == 0
        assert "unlisted" in capsys.readouterr().out

    def test_write_manifest_skips_corrupt_files(self, store_tree):
        victim = store_tree / "weights" / "resnet8_mini.npz"
        victim.write_bytes(victim.read_bytes()[:80])
        main(["--artifacts", str(store_tree), "--write-manifest"])
        entries = load_manifest(store_tree / "weights")
        assert "resnet14_mini.npz" in entries
        assert "resnet8_mini.npz" not in entries

    def test_salvage_to_recovers_members(self, store_tree, tmp_path):
        arrays = {
            f"arr{i}": np.random.default_rng(i)
            .normal(size=(40, 40))
            .astype(np.float32)
            for i in range(6)
        }
        victim = store_tree / "weights" / "big.npz"
        save_verified_npz(victim, arrays)
        victim.write_bytes(victim.read_bytes()[: victim.stat().st_size * 3 // 5])
        out_dir = tmp_path / "recovered"
        assert (
            main(
                [
                    "--artifacts",
                    str(store_tree),
                    "--salvage-to",
                    str(out_dir),
                ]
            )
            == 1
        )
        recovered = dict(np.load(out_dir / "big.npz"))
        assert recovered
        for name, array in recovered.items():
            assert np.array_equal(array, arrays[name])

    def test_missing_root_fails(self, tmp_path):
        assert main(["--artifacts", str(tmp_path / "nope")]) == 1
