"""Tests for repro.stats.power and the Clopper-Pearson interval."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import (
    clopper_pearson_interval,
    resolvable_difference,
    two_proportion_sample_size,
    two_proportion_z_test,
)


class TestClopperPearson:
    def test_zero_successes_lower_bound_is_zero(self):
        ci = clopper_pearson_interval(50, 0, 0.99)
        assert ci.low == 0.0
        assert ci.high > 0.0

    def test_all_successes_upper_bound_is_one(self):
        ci = clopper_pearson_interval(50, 50, 0.99)
        assert ci.high == 1.0

    def test_contains_point_estimate(self):
        ci = clopper_pearson_interval(200, 13, 0.95)
        assert ci.contains(13 / 200)

    def test_wider_than_wilson_typically(self):
        from repro.stats import confidence_to_t, wilson_interval

        cp = clopper_pearson_interval(100, 10, 0.95)
        wilson = wilson_interval(100, 10, confidence_to_t(0.95, mode="exact"))
        assert cp.width >= wilson.width * 0.95  # exact is conservative

    def test_known_rule_of_three(self):
        """With 0/n successes at 95%, the upper bound is ~3/n."""
        ci = clopper_pearson_interval(1000, 0, 0.95)
        assert ci.high == pytest.approx(3.0 / 1000, rel=0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            clopper_pearson_interval(0, 0, 0.95)
        with pytest.raises(ValueError):
            clopper_pearson_interval(10, 11, 0.95)
        with pytest.raises(ValueError):
            clopper_pearson_interval(10, 5, 1.0)

    @given(n=st.integers(1, 2000), frac=st.floats(0.0, 1.0))
    @settings(max_examples=100, deadline=None)
    def test_property_bounds_and_coverage_of_estimate(self, n, frac):
        successes = min(n, int(n * frac))
        ci = clopper_pearson_interval(n, successes, 0.99)
        assert 0.0 <= ci.low <= ci.high <= 1.0
        assert ci.contains(successes / n)


class TestTwoProportionSampleSize:
    def test_textbook_value(self):
        # Detecting 1% vs 2% at alpha=1%, power=90% needs ~4.4k per group.
        n = two_proportion_sample_size(0.01, 0.02)
        assert 4000 < n < 5000

    def test_symmetric(self):
        assert two_proportion_sample_size(0.01, 0.03) == two_proportion_sample_size(
            0.03, 0.01
        )

    def test_smaller_difference_needs_more(self):
        assert two_proportion_sample_size(0.01, 0.015) > two_proportion_sample_size(
            0.01, 0.03
        )

    def test_higher_power_needs_more(self):
        assert two_proportion_sample_size(
            0.01, 0.02, power=0.95
        ) > two_proportion_sample_size(0.01, 0.02, power=0.8)

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_sample_size(0.01, 0.01)
        with pytest.raises(ValueError):
            two_proportion_sample_size(-0.1, 0.2)
        with pytest.raises(ValueError):
            two_proportion_sample_size(0.1, 0.2, alpha=0.0)
        with pytest.raises(ValueError):
            two_proportion_sample_size(0.1, 0.2, power=1.0)


class TestTwoProportionZTest:
    def test_clear_difference_detected(self):
        z, p = two_proportion_z_test(10_000, 100, 10_000, 300)
        assert p < 1e-6
        assert z < 0

    def test_identical_rates_not_significant(self):
        z, p = two_proportion_z_test(1000, 20, 1000, 20)
        assert z == 0.0
        assert p == 1.0

    def test_small_samples_inconclusive(self):
        _, p = two_proportion_z_test(30, 1, 30, 2)
        assert p > 0.05

    def test_degenerate_zero_rate(self):
        z, p = two_proportion_z_test(100, 0, 100, 0)
        assert p == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            two_proportion_z_test(0, 0, 10, 1)
        with pytest.raises(ValueError):
            two_proportion_z_test(10, 11, 10, 1)

    def test_consistency_with_sample_size(self):
        """At the planned per-group n, the design difference is detected
        in the majority of simulated campaigns (the power guarantee)."""
        rng = np.random.default_rng(0)
        n = two_proportion_sample_size(0.02, 0.04, alpha=0.01, power=0.9)
        detections = 0
        for _ in range(50):
            s1 = rng.binomial(n, 0.02)
            s2 = rng.binomial(n, 0.04)
            _, p = two_proportion_z_test(n, s1, n, s2)
            detections += p < 0.01
        assert detections >= 38  # ~90% power with simulation noise


class TestResolvableDifference:
    def test_inverts_sample_size(self):
        delta = resolvable_difference(5000, 0.01)
        needed = two_proportion_sample_size(0.01, 0.01 + delta)
        assert needed <= 5000
        # And a slightly smaller difference would not be resolvable.
        needed_smaller = two_proportion_sample_size(0.01, 0.01 + delta * 0.8)
        assert needed_smaller > 5000

    def test_more_samples_resolve_finer(self):
        coarse = resolvable_difference(1000, 0.02)
        fine = resolvable_difference(100_000, 0.02)
        assert fine < coarse

    def test_tiny_sample_returns_max(self):
        assert resolvable_difference(2, 0.5) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            resolvable_difference(0, 0.1)
        with pytest.raises(ValueError):
            resolvable_difference(10, 1.0)
