"""The crash-interleaving model checker over the queue protocol model."""

from __future__ import annotations

import pytest

from repro.check.protocol import (
    MUTANT_MODELS,
    ModelFS,
    ProtocolModel,
    Scenario,
    check_protocol,
    model_split,
    render_trace,
)

#: Exploration bound the unit tests run at: deep enough to reach every
#: mutation's characteristic violation, shallow enough to stay fast.
#: CI additionally gates the correct protocol at a deeper bound via
#: ``repro-check protocol`` (see .github/workflows/ci.yml).
TEST_DEPTH = 4


class TestModelFS:
    def test_effects_are_atomic_and_idempotent(self):
        fs = ModelFS()
        fs.write("pending/a", ("spec", "a", ("u0",), 0))
        assert fs.rename("pending/a", "leased/a")
        assert not fs.rename("pending/a", "leased/a")  # source gone
        assert fs.unlink("leased/a")
        assert not fs.unlink("leased/a")

    def test_freeze_thaw_roundtrip_is_canonical(self):
        fs = ModelFS()
        fs.write("b", ("x",))
        fs.write("a", ("y",))
        other = ModelFS()
        other.write("a", ("y",))
        other.write("b", ("x",))
        assert fs.freeze() == other.freeze()
        assert ModelFS.thaw(fs.freeze()).freeze() == fs.freeze()


class TestModelSplit:
    def test_children_partition_units(self):
        units = ("u0", "u1", "u2", "u3", "u4")
        children = model_split("s", units, 2)
        got = [u for _cid, cunits in children for u in cunits]
        assert sorted(got) == sorted(units)
        assert len({cid for cid, _ in children}) == len(children)

    def test_split_is_deterministic(self):
        assert model_split("s", ("a", "b", "c"), 2) == model_split(
            "s", ("a", "b", "c"), 2
        )

    def test_single_unit_shard_cannot_split(self):
        with pytest.raises(ValueError):
            model_split("s", ("a",), 2)


class TestCorrectProtocol:
    def test_no_violations_with_crashes(self):
        result = check_protocol(depth=TEST_DEPTH, workers=2, crash=True)
        assert result.ok, [str(v.code) for v in result.violations]
        assert result.states > 1000
        assert result.outcomes > 100
        assert result.merged_variants == 1

    def test_no_violations_without_crashes(self):
        result = check_protocol(depth=TEST_DEPTH, workers=2, crash=False)
        assert result.ok
        # Without crash injection only quiescent terminals are drained.
        assert result.outcomes < 1000

    def test_submit_phase_explored(self):
        solo = check_protocol(
            depth=3, workers=1, crash=True, include_submit=False
        )
        both = check_protocol(
            depth=3, workers=1, crash=True, include_submit=True
        )
        assert both.ok and solo.ok
        assert both.states > solo.states

    def test_result_json_shape(self):
        result = check_protocol(depth=2, workers=1, crash=True)
        payload = result.to_json()
        assert payload["ok"] is True
        assert payload["depth"] == 2
        assert payload["states"] == result.states
        assert payload["violation_codes"] == []

    def test_max_states_truncation_is_safe(self):
        result = check_protocol(depth=6, workers=2, max_states=500)
        # A truncated run must never fabricate violations.
        assert result.ok


class TestMutationHarness:
    """Each seeded corruption must be caught with its distinct Q-code."""

    def test_registry_has_at_least_four_distinct_classes(self):
        expected = [code for _cls, code in MUTANT_MODELS.values()]
        assert len(MUTANT_MODELS) >= 4
        assert len(set(expected)) == len(expected)

    @pytest.mark.parametrize("name", sorted(MUTANT_MODELS))
    def test_mutant_is_caught_with_expected_code(self, name):
        cls, expected = MUTANT_MODELS[name]
        result = check_protocol(
            cls(), depth=TEST_DEPTH, workers=2, crash=True
        )
        assert expected in result.codes(), (
            f"mutant {name} escaped: expected {expected}, "
            f"got {result.codes()}"
        )

    def test_reordered_complete_needs_crash_injection(self):
        # The unlink-before-result mutant is only unsafe across a crash:
        # without crash injection every schedule still completes.
        cls, _expected = MUTANT_MODELS["complete-unlink-before-result"]
        result = check_protocol(cls(), depth=TEST_DEPTH, workers=2, crash=False)
        assert "Q310" not in result.codes()

    def test_counterexample_trace_is_replayable_schedule(self):
        cls, expected = MUTANT_MODELS["complete-unlink-before-result"]
        result = check_protocol(cls(), depth=TEST_DEPTH, workers=2, crash=True)
        violation = next(v for v in result.violations if v.code == expected)
        rendered = render_trace(violation)
        assert expected in rendered
        assert "schedule:" in rendered
        assert "-- crash" in rendered
        # The schedule names concrete actors and atomic effects.
        assert any(step.actor.startswith("w") for step in violation.trace)

    def test_tainted_result_caught_without_crash_via_fail_schedules(self):
        # Q314 only needs two schedules with different attempt counts;
        # a worker-initiated fail provides that even without crashes.
        cls, _expected = MUTANT_MODELS["history-tainted-result"]
        result = check_protocol(cls(), depth=5, workers=2, crash=False)
        assert "Q314" in result.codes()


class TestScenarioKnobs:
    def test_custom_scenario_units_flow_into_merge_check(self):
        scenario = Scenario(shards=(("only", ("x0", "x1")),))
        result = check_protocol(
            scenario=scenario, depth=3, workers=1, crash=True
        )
        assert result.ok

    def test_model_name_round_trips_into_result(self):
        result = check_protocol(
            ProtocolModel(Scenario()), depth=2, workers=1
        )
        assert result.model == "correct"
