"""Tests for the telemetry-driven campaign cost model."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import FaultSpace, InferenceEngine, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.sfi import NetworkWiseSFI
from repro.telemetry import (
    CostModel,
    CostModelError,
    EngineRate,
    Journal,
    Telemetry,
    choose_submit_settings,
    fit_cost_model,
    format_comparisons,
    load_bench,
    predicted_vs_actual,
    summarize_journal,
)


@pytest.fixture()
def tiny_space():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    return FaultSpace(model, fmt=FLOAT16)


@pytest.fixture()
def measured_journal(tmp_path):
    """A synthetic but self-consistent exhaustive campaign journal.

    Layer 0 runs at 1000 faults/sec, layer 1 at 500 — the per-layer fit
    must keep them apart rather than blending into one global rate.
    """
    path = tmp_path / "measured.jsonl"
    tele = Telemetry(journal=Journal(path))
    tele.emit(
        "campaign_start",
        kind="exhaustive",
        model="synthetic",
        engine="plan",
        batch_size=4,
        total=3000,
        cells_total=3,
    )
    cells = [(0, 0, 1000, 1.0), (0, 1, 1000, 1.0), (1, 0, 1000, 2.0)]
    for layer, bit, faults, seconds in cells:
        tele.emit("cell_start", layer=layer, bit=bit)
        tele.emit(
            "cell_done",
            layer=layer,
            bit=bit,
            seconds=seconds,
            faults=faults,
            inferences=faults,
        )
    tele.emit("campaign_end", elapsed_seconds=4.0, faults=3000)
    return path


def bench_file(tmp_path, rates: dict[str, tuple[int, float]]):
    path = tmp_path / "BENCH_engine.json"
    payload = {
        "engines": {
            name: {"batch_size": batch, "faults_per_sec": fps}
            for name, (batch, fps) in rates.items()
        }
    }
    path.write_text(json.dumps(payload))
    return path


class TestFit:
    def test_per_layer_rates_fitted(self, measured_journal):
        model = fit_cost_model(summarize_journal(measured_journal))
        assert model.cells_observed == 3
        assert model.faults_observed == 3000
        assert model.measured_engine == "plan"
        assert model.measured_batch_size == 4
        assert model.layer_seconds_per_fault[0] == pytest.approx(0.001)
        assert model.layer_seconds_per_fault[1] == pytest.approx(0.002)
        # Global rate blends both for layers never observed.
        assert model.seconds_per_fault == pytest.approx(4.0 / 3000)
        assert model.layer_rate(99) == model.seconds_per_fault
        # The fit pins predictions to the hardware it ran on.
        assert model.host_cpus == os.cpu_count()

    def test_fit_without_cells_fails_loudly(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        tele = Telemetry(journal=Journal(path))
        tele.emit("campaign_start", kind="sampled", total=10)
        tele.emit("campaign_end", elapsed_seconds=0.1)
        with pytest.raises(CostModelError, match="no measured cells"):
            fit_cost_model(summarize_journal(path))

    def test_roundtrips_through_json(self, measured_journal, tmp_path):
        model = fit_cost_model(summarize_journal(measured_journal))
        model.engine_rates = {
            "plan": EngineRate("plan", "plan", 1, 100.0)
        }
        out = tmp_path / "cm.json"
        model.save(out)
        back = CostModel.load(out)
        assert back.to_dict() == model.to_dict()
        assert back.layer_seconds_per_fault == model.layer_seconds_per_fault
        assert back.engine_rates["plan"] == model.engine_rates["plan"]


class TestBench:
    def test_load_bench_maps_kinds(self, tmp_path):
        path = bench_file(
            tmp_path,
            {
                "module": (1, 50.0),
                "plan": (1, 100.0),
                "plan_batched": (16, 200.0),
                "plan_vectorized": (256, 400.0),
            },
        )
        rates = load_bench(path)
        assert rates["plan_batched"].kind == "plan"
        assert rates["plan_batched"].batch_size == 16
        assert rates["plan_vectorized"].kind == "plan_vectorized"
        assert rates["module"].faults_per_sec == 50.0

    def test_engine_scale_is_relative(self, measured_journal, tmp_path):
        bench = load_bench(
            bench_file(
                tmp_path,
                {
                    "module": (1, 50.0),
                    "plan_batched": (4, 200.0),
                },
            )
        )
        model = fit_cost_model(summarize_journal(measured_journal), bench=bench)
        # Measured on plan@4 (bench row plan_batched, 200 f/s); module
        # runs at a quarter of that, so module predictions cost 4x.
        assert model.engine_scale("module", 1) == pytest.approx(4.0)
        assert model.engine_scale("plan", 4) == pytest.approx(1.0)

    def test_missing_bench_rows_scale_to_one(self, measured_journal):
        model = fit_cost_model(summarize_journal(measured_journal))
        assert model.engine_scale("module", 1) == 1.0
        assert model.engine_scale("plan_vectorized", 256) == 1.0


class TestPredict:
    def test_exhaustive_sums_layer_cells(self, measured_journal, tiny_space):
        model = fit_cost_model(summarize_journal(measured_journal))
        prediction = model.predict_exhaustive(tiny_space, workers=1)
        expected = sum(
            tiny_space.bits
            * tiny_space.cell_population(layer)
            * model.layer_rate(layer)
            for layer in range(len(tiny_space.layers))
        )
        assert prediction.serial_seconds == pytest.approx(expected)
        assert prediction.fault_evals == tiny_space.total_population
        assert prediction.kind == "exhaustive"

    def test_workers_divide_wall_at_utilisation(
        self, measured_journal, tiny_space
    ):
        model = fit_cost_model(summarize_journal(measured_journal))
        model.utilisation = 1.0
        model.host_cpus = None  # uncapped: check the division itself
        one = model.predict_exhaustive(tiny_space, workers=1)
        four = model.predict_exhaustive(tiny_space, workers=4)
        assert four.wall_seconds == pytest.approx(one.wall_seconds / 4)
        # Shards cap parallelism: 4 workers over 2 shards scale like 2.
        capped = model.predict_exhaustive(tiny_space, workers=4, shards=2)
        assert capped.wall_seconds == pytest.approx(one.wall_seconds / 2)

    def test_host_cpus_cap_parallelism(self, measured_journal, tiny_space):
        # Eight CPU-bound workers on a two-core host time-slice; the
        # prediction must not promise an 8x speedup.
        model = fit_cost_model(summarize_journal(measured_journal))
        model.utilisation = 1.0
        model.host_cpus = 2
        one = model.predict_exhaustive(tiny_space, workers=1)
        eight = model.predict_exhaustive(tiny_space, workers=8, shards=8)
        assert eight.wall_seconds == pytest.approx(one.wall_seconds / 2)

    def test_sampled_prices_plan_items(self, measured_journal, tiny_space):
        model = fit_cost_model(summarize_journal(measured_journal))
        plan = NetworkWiseSFI(0.05, 0.95).plan(tiny_space)
        prediction = model.predict_sampled(plan)
        assert prediction.kind == "sampled"
        assert prediction.fault_evals == plan.total_injections
        assert prediction.serial_seconds > 0

    def test_unfitted_model_refuses_to_predict(self, tiny_space):
        with pytest.raises(CostModelError, match="no measured cells"):
            CostModel().predict_exhaustive(tiny_space)

    def test_prediction_event_fields_are_flat(
        self, measured_journal, tiny_space
    ):
        model = fit_cost_model(summarize_journal(measured_journal))
        fields = model.predict_exhaustive(tiny_space).event_fields()
        assert "fitted_from" not in fields
        assert isinstance(fields["wall_seconds"], float)
        assert fields["fault_evals"] == tiny_space.total_population


class TestSelfConsistency:
    def test_first_fit_predicts_measured_campaign_within_2x(self, tmp_path):
        """The acceptance bound: fit from one run, re-predict its cost.

        The campaign that produced the journal is the one being priced,
        so the prediction must land well inside the 2x acceptance band.
        """
        model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
        model.eval()
        data = SynthCIFAR("test", size=8, seed=42)
        engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
        space = FaultSpace(engine.layers, fmt=FLOAT16)
        journal = tmp_path / "run.jsonl"
        tele = Telemetry(journal=Journal(journal))
        tele.emit(
            "campaign_start",
            kind="exhaustive",
            model="tiny",
            engine="module",
            batch_size=1,
            total=space.total_population,
        )
        import time

        start = time.perf_counter()
        OutcomeTable.from_exhaustive(engine, space, telemetry=tele)
        measured = time.perf_counter() - start
        tele.emit("campaign_end", elapsed_seconds=measured)

        cost_model = fit_cost_model(summarize_journal(journal))
        prediction = cost_model.predict_exhaustive(space, workers=1)
        # predict_exhaustive assumes one worker at the observed
        # utilisation; compare against the serial estimate.
        ratio = prediction.serial_seconds / measured
        assert 0.5 <= ratio <= 2.0, (
            f"predicted {prediction.serial_seconds:.2f}s for a measured "
            f"{measured:.2f}s campaign ({ratio:.2f}x)"
        )


class TestChooseSubmitSettings:
    def make_model(self, tmp_path):
        bench = load_bench(
            bench_file(
                tmp_path,
                {
                    "module": (1, 50.0),
                    "plan": (1, 100.0),
                    "plan_batched": (16, 200.0),
                    "plan_vectorized": (256, 400.0),
                },
            )
        )
        return CostModel(
            measured_engine="plan",
            measured_batch_size=16,
            seconds_per_fault=0.005,
            engine_rates=bench,
            utilisation=1.0,
            cells_observed=1,
            faults_observed=200,
        )

    def test_fastest_allowed_engine_wins(self, tmp_path, tiny_space):
        model = self.make_model(tmp_path)
        choice = choose_submit_settings(model, tiny_space, workers=2)
        assert choice.engine == "plan_vectorized"
        assert choice.batch_size == 256
        exact_only = choose_submit_settings(
            model, tiny_space, workers=2, allowed_engines=("plan", "module")
        )
        assert exact_only.engine == "plan"
        assert exact_only.batch_size == 16

    def test_shards_track_target_seconds(self, tmp_path, tiny_space):
        model = self.make_model(tmp_path)
        fine = choose_submit_settings(
            model, tiny_space, workers=2, target_shard_seconds=1.0
        )
        coarse = choose_submit_settings(
            model, tiny_space, workers=2, target_shard_seconds=1e9
        )
        assert fine.shards > coarse.shards
        # Never starve the fleet, never exceed cell granularity.
        assert coarse.shards == 2
        cells = len(tiny_space.layers) * tiny_space.bits
        assert fine.shards <= cells

    def test_nonpositive_target_rejected(self, tmp_path, tiny_space):
        model = self.make_model(tmp_path)
        with pytest.raises(CostModelError, match="must be positive"):
            choose_submit_settings(model, tiny_space, target_shard_seconds=0)


class TestPredictedVsActual:
    def journal_with_prediction(self, tmp_path, *, work_after: bool):
        path = tmp_path / "j.jsonl"
        tele = Telemetry(journal=Journal(path))
        tele.emit(
            "campaign_predicted",
            kind="exhaustive",
            engine="plan",
            batch_size=16,
            workers=2,
            shards=4,
            fault_evals=2000,
            serial_seconds=4.0,
            wall_seconds=2.0,
            utilisation=1.0,
            engine_scale=1.0,
        )
        if work_after:
            worker = Telemetry(journal=Journal(path))
            worker.emit("campaign_start", kind="exhaustive", total=2000)
            worker.emit("shard_claim", shard="s1", worker="w1")
            worker.emit(
                "cell_done", layer=0, bit=0, seconds=1.0, faults=2000
            )
            worker.emit("shard_done", shard="s1", worker="w1")
            worker.emit("campaign_end", elapsed_seconds=1.0, faults=2000)
        return path

    def test_work_after_prediction_is_aggregated(self, tmp_path):
        path = self.journal_with_prediction(tmp_path, work_after=True)
        comparisons = predicted_vs_actual(summarize_journal(path))
        assert len(comparisons) == 1
        cmp = comparisons[0]
        assert cmp.resolved
        assert cmp.actual_fault_evals == 2000
        assert cmp.evals_ratio == pytest.approx(1.0)
        rendered = format_comparisons(comparisons)
        assert "predicted vs actual:" in rendered
        assert "error: wall" in rendered

    def test_prediction_without_work_stays_unresolved(self, tmp_path):
        path = self.journal_with_prediction(tmp_path, work_after=False)
        comparisons = predicted_vs_actual(summarize_journal(path))
        assert len(comparisons) == 1
        assert not comparisons[0].resolved
        assert comparisons[0].wall_ratio is None
        rendered = format_comparisons(comparisons)
        assert "no campaign work observed" in rendered
