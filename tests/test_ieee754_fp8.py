"""Tests for the generic (table-based) codec and the FP8 formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ieee754 import (
    FLOAT8_E4M3,
    FLOAT8_E5M2,
    bit_frequencies,
    flip_bit,
    make_format,
)


class TestLayout:
    def test_e4m3_layout(self):
        assert FLOAT8_E4M3.total_bits == 8
        assert FLOAT8_E4M3.bias == 7
        assert FLOAT8_E4M3.max_finite == 240.0

    def test_e5m2_layout(self):
        assert FLOAT8_E5M2.bias == 15
        assert FLOAT8_E5M2.max_finite == 57344.0

    def test_uint_dtype(self):
        assert FLOAT8_E4M3.uint_dtype == np.dtype("uint8")


class TestGenericCodec:
    @pytest.mark.parametrize("fmt", [FLOAT8_E4M3, FLOAT8_E5M2])
    def test_exact_roundtrip_for_representable(self, fmt):
        values = np.array([0.0, 1.0, -1.0, 0.5, 0.25, 2.0, -4.0, 1.5])
        decoded = fmt.decode(fmt.encode(values))
        np.testing.assert_array_equal(decoded, values)

    def test_all_patterns_decode(self):
        bits = np.arange(256, dtype=np.uint8)
        values = FLOAT8_E4M3.decode(bits)
        assert values.shape == (256,)
        finite = values[np.isfinite(values)]
        assert finite.max() == 240.0
        assert finite.min() == -240.0

    def test_inf_and_nan_patterns(self):
        # Exponent all ones (bits 3..6), mantissa 0 -> inf.
        inf_bits = np.array([0b0_1111_000], dtype=np.uint8)
        assert np.isinf(FLOAT8_E4M3.decode(inf_bits))[0]
        nan_bits = np.array([0b0_1111_100], dtype=np.uint8)
        assert np.isnan(FLOAT8_E4M3.decode(nan_bits))[0]

    def test_subnormals(self):
        # Smallest subnormal of e4m3: 2^-6 / 8 = 2^-9.
        bits = np.array([1], dtype=np.uint8)
        assert FLOAT8_E4M3.decode(bits)[0] == 2.0**-9

    def test_overflow_saturates_to_inf(self):
        bits = FLOAT8_E4M3.encode(np.array([1e10, -1e10]))
        decoded = FLOAT8_E4M3.decode(bits)
        assert np.isinf(decoded[0]) and decoded[0] > 0
        assert np.isinf(decoded[1]) and decoded[1] < 0

    def test_nan_encodes_to_nan(self):
        bits = FLOAT8_E4M3.encode(np.array([np.nan]))
        assert np.isnan(FLOAT8_E4M3.decode(bits))[0]

    def test_round_to_nearest_even(self):
        # 1.0625 is the midpoint of [1.0, 1.125] in e4m3; RNE picks the
        # even mantissa (1.0).  1.1875 is the midpoint of [1.125, 1.25]
        # and rounds up to the even 1.25.
        fmt = FLOAT8_E4M3
        assert fmt.decode(fmt.encode(np.array([1.0625])))[0] == 1.0
        assert fmt.decode(fmt.encode(np.array([1.1875])))[0] == 1.25

    def test_decode_native_is_float32(self):
        bits = FLOAT8_E4M3.encode(np.array([1.5]))
        native = FLOAT8_E4M3.decode_native(bits)
        assert native.dtype == np.float32
        assert native[0] == 1.5

    @given(
        st.lists(
            st.floats(-200.0, 200.0, allow_nan=False), min_size=1, max_size=30
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_property_quantisation_is_nearest(self, values):
        fmt = FLOAT8_E4M3
        array = np.array(values)
        decoded = fmt.decode(fmt.encode(array))
        table = fmt.decode(np.arange(256, dtype=np.uint8))
        finite = table[np.isfinite(table)]
        for original, quantised in zip(array, decoded):
            best = np.min(np.abs(finite - original))
            assert abs(quantised - original) == pytest.approx(best, abs=1e-12)

    @given(st.integers(0, 255), st.integers(0, 7))
    @settings(max_examples=150, deadline=None)
    def test_property_bit_ops_work_on_fp8(self, pattern, bit):
        bits = np.array([pattern], dtype=np.uint8)
        flipped = flip_bit(FLOAT8_E4M3, bits, bit)
        assert (int(bits[0]) ^ int(flipped[0])) == (1 << bit)


class TestCustomFormats:
    def test_make_format(self):
        fmt = make_format("float8_e3m4", 3, 4)
        assert fmt.total_bits == 8
        assert fmt.bias == 3
        assert fmt.decode(fmt.encode(np.array([1.5])))[0] == 1.5

    def test_make_format_width_limit(self):
        with pytest.raises(ValueError, match="16 bits"):
            make_format("float24", 8, 15)

    def test_frequency_analysis_on_fp8(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 0.1, size=500)
        freqs = bit_frequencies(FLOAT8_E4M3, weights)
        assert freqs.total == 500
        assert len(freqs.f0) == 8
