"""Tests for repro.stats.intervals."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import confidence_to_t, normal_interval, wilson_interval

T99 = confidence_to_t(0.99)
T95 = confidence_to_t(0.95)


class TestNormalInterval:
    def test_centered_on_p_hat(self):
        ci = normal_interval(100, 50, T95)
        assert (ci.low + ci.high) / 2 == pytest.approx(0.5)

    def test_clamped_to_unit_interval(self):
        ci = normal_interval(10, 0, T99)
        assert ci.low == 0.0
        ci = normal_interval(10, 10, T99)
        assert ci.high == 1.0

    def test_fpc_narrows(self):
        plain = normal_interval(100, 30, T95)
        corrected = normal_interval(100, 30, T95, population=150)
        assert corrected.width < plain.width

    def test_census_has_zero_width(self):
        ci = normal_interval(100, 30, T95, population=100)
        assert ci.width == pytest.approx(0.0)

    def test_population_smaller_than_sample_rejected(self):
        with pytest.raises(ValueError):
            normal_interval(100, 30, T95, population=50)

    def test_contains(self):
        ci = normal_interval(1000, 100, T95)
        assert ci.contains(0.1)
        assert not ci.contains(0.5)


class TestWilsonInterval:
    def test_never_degenerate_at_zero(self):
        # Unlike Wald, Wilson has positive width even with 0 successes.
        ci = wilson_interval(100, 0, T95)
        assert ci.width > 0.0
        assert ci.low == 0.0

    def test_contains_p_hat(self):
        ci = wilson_interval(50, 10, T95)
        assert ci.contains(0.2)

    def test_narrower_with_more_data(self):
        wide = wilson_interval(20, 4, T95)
        narrow = wilson_interval(2000, 400, T95)
        assert narrow.width < wide.width

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0, T95)
        with pytest.raises(ValueError):
            wilson_interval(10, 11, T95)
        with pytest.raises(ValueError):
            wilson_interval(10, 5, 0.0)

    @given(
        n=st.integers(1, 10_000),
        frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_wilson_within_unit(self, n, frac):
        successes = min(n, int(n * frac))
        ci = wilson_interval(n, successes, T99)
        assert 0.0 <= ci.low <= ci.high <= 1.0
        assert ci.contains(successes / n)

    @given(n=st.integers(2, 5000), frac=st.floats(0.0, 1.0))
    @settings(max_examples=200, deadline=None)
    def test_property_both_cover_point_estimate(self, n, frac):
        successes = min(n, int(n * frac))
        wald = normal_interval(n, successes, T95)
        assert wald.contains(successes / n)
