"""The kernel-backend layer: registry, resolution, attestation, parity.

Covers the ``repro.backends`` contract end to end: name resolution
(explicit arg > ``REPRO_BACKEND`` > reference), graceful degradation
when a backend's library is missing, per-kernel agreement between the
reference backend and :mod:`repro.nn.functional`, backend-qualified
plan fingerprints, and the engine-level restrictions (module and
vectorized engines are reference-only).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.nn.functional as F
from repro.backends import (
    BACKEND_ENV,
    BACKEND_OP_KINDS,
    BACKEND_PRIMITIVES,
    Backend,
    BackendUnavailableError,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.models import ResNetCIFAR
from repro.nn import Conv2d, Linear
from repro.runtime import capture_plan, create_engine


class TestRegistry:
    def test_numpy_backend_registered_and_reference(self):
        backend = get_backend("numpy")
        assert backend.name == "numpy"
        assert backend.is_reference
        assert backend.version == np.__version__

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_unknown_backend_lists_registered_names(self):
        with pytest.raises(BackendUnavailableError, match="numpy"):
            get_backend("no_such_backend")

    def test_available_backends_includes_reference(self):
        assert "numpy" in available_backends()

    def test_register_backend_round_trip(self):
        class Probe(NumpyBackend):
            name = "probe"
            is_reference = False

        register_backend("probe", Probe)
        try:
            assert get_backend("probe").name == "probe"
        finally:
            from repro.backends import _INSTANCES, _REGISTRY

            _REGISTRY.pop("probe", None)
            _INSTANCES.pop("probe", None)

    def test_backend_must_declare_every_op_kind(self):
        class Partial(Backend):
            name = "partial"
            OP_TOLERANCE = {"conv2d": "bitexact"}
            OP_INVARIANCE = {"conv2d": "kernel"}

        with pytest.raises(TypeError, match="linear"):
            Partial()


class TestResolution:
    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend(None).name == "numpy"

    def test_env_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "array_api")
        assert resolve_backend(None).name == "array_api"

    def test_explicit_name_beats_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "array_api")
        assert resolve_backend("numpy").name == "numpy"

    def test_instance_passes_through(self):
        backend = get_backend("numpy")
        assert resolve_backend(backend) is backend

    def test_blank_env_falls_back_to_reference(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "  ")
        assert resolve_backend(None).name == "numpy"


class TestAttestation:
    def test_attestation_covers_every_kind_and_primitive(self):
        attestation = get_backend("numpy").attestation()
        declared = set(attestation["ops"])
        assert declared == set(BACKEND_OP_KINDS) | set(BACKEND_PRIMITIVES)

    def test_attestation_is_deterministic(self):
        backend = get_backend("numpy")
        assert backend.attestation() == backend.attestation()

    def test_attestation_carries_name_and_version(self):
        attestation = get_backend("numpy").attestation()
        assert attestation["name"] == "numpy"
        assert attestation["version"] == np.__version__


class TestGracefulDegradation:
    def test_unavailable_backend_is_filtered_not_fatal(self):
        class Broken(Backend):
            name = "broken"
            OP_TOLERANCE = dict.fromkeys(
                (*BACKEND_OP_KINDS, *BACKEND_PRIMITIVES), "bitexact"
            )
            OP_INVARIANCE = dict.fromkeys(
                (*BACKEND_OP_KINDS, *BACKEND_PRIMITIVES), "always"
            )

            def __init__(self):
                raise BackendUnavailableError("library not installed")

        register_backend("broken", Broken)
        try:
            assert "broken" not in available_backends()
            with pytest.raises(BackendUnavailableError):
                get_backend("broken")
        finally:
            from repro.backends import _INSTANCES, _REGISTRY

            _REGISTRY.pop("broken", None)
            _INSTANCES.pop("broken", None)


class TestReferenceKernels:
    """The numpy backend is a pure reorganisation of nn.functional."""

    def test_conv2d_matches_functional(self, rng):
        x = rng.standard_normal((2, 3, 8, 8)).astype(np.float32)
        conv = Conv2d(3, 5, 3, stride=1, padding=1, bias=True, rng=rng)
        backend = get_backend("numpy")
        out = backend.conv2d(
            x, conv.weight.data, conv.bias.data, stride=1, padding=1
        )
        expected = F.conv2d(
            x, conv.weight.data, conv.bias.data, stride=1, padding=1
        )
        np.testing.assert_array_equal(out, expected)

    def test_linear_matches_functional(self, rng):
        x = rng.standard_normal((4, 7)).astype(np.float32)
        layer = Linear(7, 3, rng=rng)
        backend = get_backend("numpy")
        out = backend.linear(x, layer.weight.data, layer.bias.data)
        expected = F.linear(x, layer.weight.data, layer.bias.data)
        np.testing.assert_array_equal(out, expected)

    def test_relu_and_pad_match_functional(self, rng):
        x = rng.standard_normal((2, 4, 5, 5)).astype(np.float32)
        backend = get_backend("numpy")
        np.testing.assert_array_equal(backend.relu(x), F.relu(x))
        np.testing.assert_array_equal(
            backend.pad_channels(x, 2, 3), F.pad_channels(x, 2, 3)
        )


class TestPlanBackendWiring:
    def test_bare_plan_defaults_to_reference(self, tiny_model):
        plan = capture_plan(tiny_model)
        assert plan.backend.is_reference

    def test_capture_plan_resolves_backend_name(self, tiny_model):
        plan = capture_plan(tiny_model, backend="numpy")
        assert plan.backend is get_backend("numpy")

    def test_fused_plan_inherits_backend(self, tiny_model):
        from repro.runtime.plan import fuse_plan

        plan = capture_plan(tiny_model, backend="numpy")
        assert fuse_plan(plan).backend is plan.backend

    def test_fingerprint_unqualified_on_reference(self, tiny_model):
        from repro.check import plan_fingerprint

        plan = capture_plan(tiny_model)
        explicit = plan_fingerprint(plan, backend=plan.backend)
        assert plan_fingerprint(plan) == explicit

    def test_fingerprint_qualified_on_non_reference(self, tiny_model):
        from repro.check import plan_fingerprint

        class Shifted(NumpyBackend):
            name = "shifted"
            is_reference = False

        plan = capture_plan(tiny_model)
        reference = plan_fingerprint(plan)
        qualified = plan_fingerprint(plan, backend=Shifted())
        assert qualified != reference


@pytest.mark.skipif(
    "array_api" not in available_backends(),
    reason="no Array-API-compatible library importable here",
)
class TestArrayApiParity:
    def test_plan_outputs_within_tolerance(self, tiny_model, tiny_eval_set):
        images, _labels = tiny_eval_set
        x = images[:4]
        reference = capture_plan(tiny_model)
        alternate = capture_plan(tiny_model, backend="array_api")
        ref_out = reference.execute_all(x)[reference.output_slot]
        alt_out = alternate.execute_all(x)[alternate.output_slot]
        np.testing.assert_allclose(alt_out, ref_out, rtol=1e-5, atol=1e-6)

    def test_plan_engine_accepts_array_api(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        engine = create_engine(
            tiny_model, images, labels, kind="plan", backend="array_api"
        )
        assert engine.backend.name == "array_api"
        # The array_api backend claims "never" for matmul-backed kernels,
        # so no conv/linear op is ever stacked under it.
        assert not any(
            stackable
            for op, stackable in zip(engine.plan.ops, engine._stackable)
            if op.kind in ("conv2d", "conv2d_bn", "linear")
        )


class TestEngineRestrictions:
    def _non_reference(self):
        class Shifted(NumpyBackend):
            name = "shifted"
            is_reference = False

        return Shifted()

    def test_module_engine_refuses_non_reference(
        self, tiny_model, tiny_eval_set
    ):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError, match="module"):
            create_engine(
                tiny_model,
                images,
                labels,
                kind="module",
                backend=self._non_reference(),
            )

    def test_vectorized_engine_refuses_non_reference(
        self, tiny_model, tiny_eval_set
    ):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError, match="reference"):
            create_engine(
                tiny_model,
                images,
                labels,
                kind="plan_vectorized",
                backend=self._non_reference(),
            )

    def test_plan_engine_reference_backend_unchanged(
        self, tiny_model, tiny_eval_set
    ):
        images, labels = tiny_eval_set
        engine = create_engine(tiny_model, images, labels, kind="plan")
        assert engine.backend.is_reference


class TestCampaignConfigBackend:
    def test_reference_config_has_no_backend_key(
        self, tiny_model, tiny_eval_set
    ):
        from repro.faults import FaultSpace
        from repro.faults.table import campaign_config

        images, labels = tiny_eval_set
        engine = create_engine(tiny_model, images, labels, kind="plan")
        config = campaign_config(engine, FaultSpace(engine.layers))
        assert "backend" not in config

    def test_non_reference_config_carries_attestation(
        self, tiny_model, tiny_eval_set
    ):
        from repro.faults import FaultSpace
        from repro.faults.table import campaign_config

        class Shifted(NumpyBackend):
            name = "shifted"
            is_reference = False

        images, labels = tiny_eval_set
        engine = create_engine(
            tiny_model, images, labels, kind="plan", backend=Shifted()
        )
        config = campaign_config(engine, FaultSpace(engine.layers))
        assert config["backend"]["name"] == "shifted"
        assert "ops" in config["backend"]


def test_exhaustive_table_path_backend_suffix():
    from repro.sfi.artifacts import exhaustive_table_path

    reference = exhaustive_table_path("resnet8_mini")
    alternate = exhaustive_table_path("resnet8_mini", backend="array_api")
    assert reference != alternate
    assert "_via_array_api" in alternate.name
