"""The ``progress=`` deprecation shims warn exactly once and still work."""

from __future__ import annotations

import warnings

import pytest

from repro.data import SynthCIFAR
from repro.faults import FaultSpace, InferenceEngine, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.sfi.artifacts import load_or_run_exhaustive


@pytest.fixture(scope="module")
def campaign_setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


class TestFromExhaustiveShim:
    def test_progress_callback_warns_exactly_once(self, campaign_setup):
        engine, space = campaign_setup
        calls = []
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            OutcomeTable.from_exhaustive(
                engine,
                space,
                progress=lambda done, total: calls.append((done, total)),
                progress_every=1,
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "progress" in str(deprecations[0].message)
        # The shim still functions: the callback fired and finished.
        assert calls
        assert calls[-1] == (space.total_population, space.total_population)

    def test_no_warning_without_the_deprecated_parameter(
        self, campaign_setup
    ):
        engine, space = campaign_setup
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            OutcomeTable.from_exhaustive(engine, space)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]


class TestLoadOrRunShim:
    def test_progress_flag_warns_exactly_once_on_cache_hit(self):
        # Served from the committed artifact cache: the shim must warn
        # whether or not the campaign actually runs.
        from repro.models import pretrained_path
        from repro.sfi.artifacts import exhaustive_table_path

        if not (
            pretrained_path("resnet8_mini").is_file()
            and exhaustive_table_path("resnet8_mini").is_file()
        ):
            pytest.skip("no cached resnet8_mini artifacts")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            table, _space, _engine = load_or_run_exhaustive(
                "resnet8_mini", progress=True
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "progress" in str(deprecations[0].message)
        assert table.num_layers > 0

    def test_no_warning_without_the_flag(self):
        from repro.models import pretrained_path
        from repro.sfi.artifacts import exhaustive_table_path

        if not (
            pretrained_path("resnet8_mini").is_file()
            and exhaustive_table_path("resnet8_mini").is_file()
        ):
            pytest.skip("no cached resnet8_mini artifacts")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            load_or_run_exhaustive("resnet8_mini")
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
