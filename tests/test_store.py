"""Tests for the verified artifact store (repro.store)."""

from __future__ import annotations

import io
import json
import os

import numpy as np
import pytest

from repro.store import (
    CampaignCheckpoint,
    CorruptArtifactError,
    atomic_savez,
    atomic_write,
    load_manifest,
    load_verified_npz,
    record_artifact,
    salvage_npz,
    save_verified_npz,
    sha256_file,
    validate_npz,
    verify_artifact,
    verify_directory,
    write_manifest,
)


def _make_npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


class TestAtomicWrite:
    def test_writes_bytes_and_cleans_up(self, tmp_path):
        path = tmp_path / "sub" / "a.bin"
        with atomic_write(path) as stream:
            stream.write(b"payload")
        assert path.read_bytes() == b"payload"
        leftovers = [p for p in path.parent.iterdir() if p != path]
        assert leftovers == []

    def test_failure_leaves_no_partial_file(self, tmp_path):
        path = tmp_path / "a.bin"
        path.write_bytes(b"original")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as stream:
                stream.write(b"half-writ")
                raise RuntimeError("killed mid-write")
        assert path.read_bytes() == b"original"
        assert [p.name for p in tmp_path.iterdir()] == ["a.bin"]

    def test_atomic_savez_roundtrip(self, tmp_path):
        path = tmp_path / "arrays.npz"
        atomic_savez(path, x=np.arange(5), y=np.eye(3))
        with np.load(path) as archive:
            assert np.array_equal(archive["x"], np.arange(5))
            assert np.array_equal(archive["y"], np.eye(3))


class TestManifest:
    def test_record_and_verify(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.arange(4))
        entry = record_artifact(path)
        assert entry["sha256"] == sha256_file(path)
        assert verify_artifact(path) is None

    def test_detects_modification(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.arange(4))
        record_artifact(path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF  # same size, different content
        path.write_bytes(bytes(data))
        problem = verify_artifact(path)
        assert problem is not None and "SHA-256" in problem

    def test_detects_truncation_by_size(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.arange(100))
        record_artifact(path)
        path.write_bytes(path.read_bytes()[:50])
        problem = verify_artifact(path)
        assert problem is not None and "size mismatch" in problem

    def test_unlisted_file_is_not_an_error(self, tmp_path):
        path = tmp_path / "handmade.npz"
        atomic_savez(path, x=np.arange(4))
        assert verify_artifact(path) is None

    def test_verify_directory_report(self, tmp_path):
        good = tmp_path / "good.npz"
        atomic_savez(good, x=np.arange(4))
        record_artifact(good)
        bad = tmp_path / "bad.npz"
        atomic_savez(bad, x=np.arange(64))
        record_artifact(bad)
        bad.write_bytes(bad.read_bytes()[:32])
        gone = tmp_path / "gone.npz"
        atomic_savez(gone, x=np.arange(4))
        record_artifact(gone)
        gone.unlink()
        unlisted = tmp_path / "unlisted.npz"
        atomic_savez(unlisted, x=np.arange(4))
        report = verify_directory(tmp_path)
        assert report.ok == ["good.npz"]
        assert list(report.failed) == ["bad.npz"]
        assert report.missing == ["gone.npz"]
        assert report.unlisted == ["unlisted.npz"]
        assert not report.clean

    def test_write_manifest_selected_names(self, tmp_path):
        for name in ("a.npz", "b.npz"):
            atomic_savez(tmp_path / name, x=np.arange(3))
        write_manifest(tmp_path, names=["a.npz"])
        assert sorted(load_manifest(tmp_path)) == ["a.npz"]


class TestVerifiedNpz:
    def test_save_load_roundtrip_updates_manifest(self, tmp_path):
        path = tmp_path / "a.npz"
        save_verified_npz(path, {"x": np.arange(6)})
        assert "a.npz" in load_manifest(tmp_path)
        loaded = load_verified_npz(path)
        assert np.array_equal(loaded["x"], np.arange(6))

    def test_truncation_raises_domain_error_naming_file(self, tmp_path):
        path = tmp_path / "resnet8_mini.npz"
        save_verified_npz(path, {"x": np.arange(512)})
        path.write_bytes(path.read_bytes()[:100])
        command = "python examples/train_models.py --model resnet8_mini"
        with pytest.raises(CorruptArtifactError) as excinfo:
            load_verified_npz(path, regenerate=command)
        message = str(excinfo.value)
        assert "resnet8_mini.npz" in message
        assert command in message
        # No bare BadZipFile escapes.
        assert excinfo.value.path == os.fspath(path)

    def test_validate_npz_detects_damage(self, tmp_path):
        path = tmp_path / "a.npz"
        atomic_savez(path, x=np.arange(256))
        assert validate_npz(path) is None
        path.write_bytes(path.read_bytes()[:64])
        assert validate_npz(path) is not None
        assert validate_npz(tmp_path / "absent.npz") == "file is missing"

    def test_missing_file_error(self, tmp_path):
        with pytest.raises(CorruptArtifactError, match="missing"):
            load_verified_npz(tmp_path / "never-written.npz")


class TestSalvage:
    def test_recovers_intact_members_from_truncated_archive(self, tmp_path):
        arrays = {
            f"arr{i}": np.random.default_rng(i)
            .normal(size=(40, 40))
            .astype(np.float32)
            for i in range(6)
        }
        blob = _make_npz_bytes(arrays)
        path = tmp_path / "damaged.npz"
        path.write_bytes(blob[: int(len(blob) * 0.6)])
        assert validate_npz(path) is not None  # np.load would fail
        recovered = salvage_npz(path)
        assert 0 < len(recovered) < len(arrays)
        for name, array in recovered.items():
            assert np.array_equal(array, arrays[name])

    def test_healthy_archive_salvages_fully(self, tmp_path):
        arrays = {"x": np.arange(10), "y": np.linspace(0, 1, 7)}
        path = tmp_path / "healthy.npz"
        path.write_bytes(_make_npz_bytes(arrays))
        recovered = salvage_npz(path)
        assert sorted(recovered) == sorted(arrays)
        for name, array in arrays.items():
            assert np.array_equal(recovered[name], array)

    def test_garbage_returns_empty(self, tmp_path):
        path = tmp_path / "noise.npz"
        path.write_bytes(os.urandom(2048))
        assert salvage_npz(path) == {}


class TestCampaignCheckpoint:
    CONFIG = {"model": "tiny", "policy": "accuracy_drop"}

    def test_store_load_roundtrip(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path / "run.ckpt", config=self.CONFIG)
        assert ckpt.completed() == set()
        chunk = np.arange(12, dtype=np.uint8).reshape(6, 2)
        ckpt.store("L000_B00", chunk)
        assert ckpt.completed() == {"L000_B00"}
        reopened = CampaignCheckpoint(tmp_path / "run.ckpt", config=self.CONFIG)
        assert np.array_equal(reopened.load("L000_B00"), chunk)

    def test_config_mismatch_wipes_stale_chunks(self, tmp_path):
        first = CampaignCheckpoint(tmp_path / "run.ckpt", config=self.CONFIG)
        first.store("L000_B00", np.zeros((4, 2), dtype=np.uint8))
        changed = dict(self.CONFIG, policy="any_mismatch")
        second = CampaignCheckpoint(tmp_path / "run.ckpt", config=changed)
        assert second.completed() == set()
        assert second.load("L000_B00") is None

    def test_half_written_chunk_is_ignored(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path / "run.ckpt", config=self.CONFIG)
        ckpt.store("L000_B00", np.zeros((4, 2), dtype=np.uint8))
        chunk_path = tmp_path / "run.ckpt" / "L000_B00.npy"
        chunk_path.write_bytes(chunk_path.read_bytes()[:10])
        assert ckpt.load("L000_B00") is None

    def test_discard(self, tmp_path):
        ckpt = CampaignCheckpoint(tmp_path / "run.ckpt", config=self.CONFIG)
        ckpt.store("L000_B00", np.zeros((4, 2), dtype=np.uint8))
        ckpt.discard()
        assert not (tmp_path / "run.ckpt").exists()


class TestManifestFormat:
    def test_manifest_is_sorted_versioned_json(self, tmp_path):
        save_verified_npz(tmp_path / "b.npz", {"x": np.arange(3)})
        save_verified_npz(tmp_path / "a.npz", {"x": np.arange(3)})
        with open(tmp_path / "MANIFEST.json", encoding="utf-8") as stream:
            payload = json.load(stream)
        assert payload["version"] == 1
        assert list(payload["artifacts"]) == ["a.npz", "b.npz"]
