"""Tests for repro.tensor.im2col."""

import numpy as np
import pytest

from repro.tensor import col2im, conv_output_size, im2col


class TestConvOutputSize:
    def test_same_padding(self):
        assert conv_output_size(32, 3, 1, 1) == 32

    def test_stride_two(self):
        assert conv_output_size(32, 3, 2, 1) == 16

    def test_no_padding(self):
        assert conv_output_size(5, 3, 1, 0) == 3

    def test_non_positive_rejected(self):
        with pytest.raises(ValueError):
            conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.arange(2 * 3 * 8 * 8, dtype=np.float32).reshape(2, 3, 8, 8)
        cols = im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_1x1_kernel_is_reshape(self):
        x = np.random.default_rng(0).normal(size=(1, 4, 5, 5)).astype(np.float32)
        cols = im2col(x, 1, 1, 1, 0)
        np.testing.assert_array_equal(cols, x.reshape(1, 4, 25))

    def test_values_match_naive(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(1, 2, 5, 5)).astype(np.float32)
        cols = im2col(x, 3, 3, 2, 1)
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        out = 0
        for oy in range(3):
            for ox in range(3):
                patch = padded[0, :, oy * 2 : oy * 2 + 3, ox * 2 : ox * 2 + 3]
                np.testing.assert_allclose(
                    cols[0, :, oy * 3 + ox], patch.reshape(-1)
                )
                out += 1
        assert out == 9

    def test_conv_via_matmul_matches_naive(self):
        rng = np.random.default_rng(2)
        x = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        cols = im2col(x, 3, 3, 1, 1)
        out = np.matmul(w.reshape(4, -1), cols).reshape(2, 4, 6, 6)
        naive = np.zeros_like(out)
        padded = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        for n in range(2):
            for oc in range(4):
                for i in range(6):
                    for j in range(6):
                        naive[n, oc, i, j] = np.sum(
                            padded[n, :, i : i + 3, j : j + 3] * w[oc]
                        )
        np.testing.assert_allclose(out, naive, rtol=1e-4, atol=1e-5)


class TestCol2Im:
    def test_adjoint_property(self):
        """<im2col(x), c> == <x, col2im(c)> — col2im is im2col's adjoint."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 7, 7)).astype(np.float64)
        for stride, padding, k in [(1, 1, 3), (2, 1, 3), (1, 0, 2), (3, 2, 3)]:
            cols_shape = im2col(x, k, k, stride, padding).shape
            c = rng.normal(size=cols_shape)
            lhs = np.sum(im2col(x, k, k, stride, padding) * c)
            rhs = np.sum(x * col2im(c, x.shape, k, k, stride, padding))
            assert lhs == pytest.approx(rhs, rel=1e-9)

    def test_overlap_accumulates(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((1, 9, 9))  # 3x3 kernel, stride 1, padding 1
        back = col2im(cols, x_shape, 3, 3, 1, 1)
        # The centre pixel is covered by all 9 kernel positions.
        assert back[0, 0, 1, 1] == 9.0
        # A corner pixel is covered by only 4.
        assert back[0, 0, 0, 0] == 4.0
