"""Tests for repro.sfi.validation."""

import numpy as np
import pytest

from repro.faults import FaultOutcome, FaultSpace, OutcomeTable, TableOracle
from repro.models import ResNetCIFAR
from repro.sfi import (
    CampaignRunner,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
    validate_campaign,
)
from repro.sfi.validation import MethodComparison, average_reports


@pytest.fixture(scope="module")
def setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    space = FaultSpace(model)
    outcomes = []
    for layer in space.layers:
        arr = np.full(
            (layer.size, space.bits, 2), FaultOutcome.NON_CRITICAL, dtype=np.uint8
        )
        arr[:, 30, 1] = FaultOutcome.CRITICAL
        outcomes.append(arr)
    table = OutcomeTable(outcomes)
    oracle = TableOracle(table, space)
    return space, table, oracle


class TestValidateCampaign:
    def test_layer_rows_cover_all_layers(self, setup):
        space, table, oracle = setup
        result = CampaignRunner(oracle, space).run(
            LayerWiseSFI().plan(space), seed=0
        )
        report = validate_campaign(result, table)
        assert len(report.layers) == len(space.layers)
        assert report.method == "layer-wise"

    def test_exhaustive_rates_contained(self, setup):
        space, table, oracle = setup
        result = CampaignRunner(oracle, space).run(
            LayerWiseSFI().plan(space), seed=0
        )
        report = validate_campaign(result, table)
        assert report.contained_fraction == 1.0
        assert report.network.contained

    def test_average_margin_below_target_for_fine_methods(self, setup):
        space, table, oracle = setup
        result = CampaignRunner(oracle, space).run(
            DataUnawareSFI().plan(space), seed=0
        )
        report = validate_campaign(result, table)
        assert report.meets_margin_target(0.01)

    def test_injected_fraction(self, setup):
        space, table, oracle = setup
        plan = NetworkWiseSFI().plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        report = validate_campaign(result, table)
        assert report.injected_fraction == pytest.approx(
            plan.total_injections / space.total_population
        )

    def test_absolute_error_small_for_census(self, setup):
        space, table, oracle = setup
        plan = DataUnawareSFI(error_margin=0.0001).plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        report = validate_campaign(result, table)
        assert report.average_absolute_error == pytest.approx(0.0, abs=1e-12)

    def test_layer_count_mismatch_rejected(self, setup):
        space, table, oracle = setup
        result = CampaignRunner(oracle, space).run(
            NetworkWiseSFI().plan(space), seed=0
        )
        truncated = OutcomeTable(table.outcomes[:-1])
        with pytest.raises(ValueError, match="layers"):
            validate_campaign(result, truncated)

    def test_unsampled_layer_counts_as_full_margin(self, setup):
        space, table, oracle = setup
        result = CampaignRunner(oracle, space).run(
            NetworkWiseSFI(error_margin=0.3).plan(space), seed=0
        )
        report = validate_campaign(result, table)
        if any(lv.estimate.margin is None for lv in report.layers):
            assert report.average_margin > 0.1


class TestMethodComparison:
    def test_from_report(self, setup):
        space, table, oracle = setup
        result = CampaignRunner(oracle, space).run(
            LayerWiseSFI().plan(space), seed=0
        )
        report = validate_campaign(result, table)
        comp = MethodComparison.from_report(report)
        assert comp.method == "layer-wise"
        assert comp.injections == report.total_injections
        assert comp.injected_percent == pytest.approx(
            report.injected_fraction * 100
        )

    def test_average_reports(self, setup):
        space, table, oracle = setup
        runner = CampaignRunner(oracle, space)
        plan = LayerWiseSFI().plan(space)
        reports = [
            validate_campaign(runner.run(plan, seed=s), table) for s in range(3)
        ]
        comp = average_reports(reports)
        assert comp.method == "layer-wise"
        assert comp.injections == plan.total_injections

    def test_average_reports_rejects_mixed_methods(self, setup):
        space, table, oracle = setup
        runner = CampaignRunner(oracle, space)
        r1 = validate_campaign(runner.run(LayerWiseSFI().plan(space), seed=0), table)
        r2 = validate_campaign(
            runner.run(NetworkWiseSFI().plan(space), seed=0), table
        )
        with pytest.raises(ValueError, match="mix"):
            average_reports([r1, r2])

    def test_average_reports_empty(self):
        with pytest.raises(ValueError):
            average_reports([])
