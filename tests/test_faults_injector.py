"""Tests for repro.faults.injector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import Fault, FaultModel, WeightFaultInjector
from repro.models import ResNetCIFAR


@pytest.fixture()
def injector():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    return WeightFaultInjector(model)


class TestFaultyValue:
    def test_sign_stuck_at_1_negates(self, injector):
        flat = injector.layers[0].flat_weights()
        flat[0] = 0.75
        fault = Fault(layer=0, index=0, bit=31, model=FaultModel.STUCK_AT_1)
        golden, faulty = injector.faulty_value(fault)
        assert golden == 0.75
        assert faulty == -0.75

    def test_masked_when_bit_already_stuck(self, injector):
        flat = injector.layers[0].flat_weights()
        flat[1] = 1.0  # bit 30 of 1.0 is 0
        fault = Fault(layer=0, index=1, bit=30, model=FaultModel.STUCK_AT_0)
        assert injector.is_masked(fault)
        golden, faulty = injector.faulty_value(fault)
        assert golden == faulty

    def test_bit_flip_never_masked(self, injector):
        fault = Fault(layer=0, index=0, bit=12, model=FaultModel.BIT_FLIP)
        assert not injector.is_masked(fault)

    def test_exponent_msb_explodes_weight(self, injector):
        flat = injector.layers[0].flat_weights()
        flat[2] = 0.5
        fault = Fault(layer=0, index=2, bit=30, model=FaultModel.STUCK_AT_1)
        _, faulty = injector.faulty_value(fault)
        assert abs(faulty) > 1e30


class TestInjectionContext:
    def test_applies_and_restores(self, injector):
        flat = injector.layers[0].flat_weights()
        golden = flat[3]
        fault = Fault(layer=0, index=3, bit=31, model=FaultModel.BIT_FLIP)
        with injector.inject(fault) as faulty:
            assert flat[3] == np.float32(faulty)
            assert flat[3] != golden
        assert flat[3] == golden

    def test_restores_on_exception(self, injector):
        flat = injector.layers[0].flat_weights()
        golden = flat[0]
        fault = Fault(layer=0, index=0, bit=31, model=FaultModel.BIT_FLIP)
        with pytest.raises(RuntimeError):
            with injector.inject(fault):
                raise RuntimeError("boom")
        assert flat[0] == golden

    def test_restores_exact_bits(self, injector):
        """Restoration must be bit-exact even for denormal weights."""
        flat = injector.layers[0].flat_weights()
        flat[4] = np.float32(1e-42)  # denormal
        golden_bits = flat[4:5].view(np.uint32)[0]
        fault = Fault(layer=0, index=4, bit=20, model=FaultModel.BIT_FLIP)
        with injector.inject(fault):
            pass
        assert flat[4:5].view(np.uint32)[0] == golden_bits

    def test_nested_faults_in_different_layers(self, injector):
        f1 = Fault(layer=0, index=0, bit=31, model=FaultModel.BIT_FLIP)
        f2 = Fault(layer=1, index=0, bit=31, model=FaultModel.BIT_FLIP)
        flat0 = injector.layers[0].flat_weights()
        flat1 = injector.layers[1].flat_weights()
        g0, g1 = flat0[0], flat1[0]
        with injector.inject(f1), injector.inject(f2):
            assert flat0[0] != g0 and flat1[0] != g1
        assert flat0[0] == g0 and flat1[0] == g1


class TestValidation:
    def test_layer_out_of_range(self, injector):
        fault = Fault(layer=99, index=0, bit=0, model=FaultModel.BIT_FLIP)
        with pytest.raises(ValueError, match="layer"):
            injector.faulty_value(fault)

    def test_index_out_of_range(self, injector):
        fault = Fault(
            layer=0, index=10**9, bit=0, model=FaultModel.BIT_FLIP
        )
        with pytest.raises(ValueError, match="index"):
            injector.faulty_value(fault)

    def test_bit_out_of_range(self, injector):
        fault = Fault(layer=0, index=0, bit=32, model=FaultModel.BIT_FLIP)
        with pytest.raises(ValueError, match="bit"):
            injector.faulty_value(fault)


class TestProperties:
    @given(
        bit=st.integers(0, 31),
        index=st.integers(0, 107),
        model=st.sampled_from(list(FaultModel)),
    )
    @settings(max_examples=150, deadline=None)
    def test_property_inject_restore_identity(self, bit, index, model):
        net = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        injector = WeightFaultInjector(net)
        flat = injector.layers[0].flat_weights()
        before = flat.copy()
        fault = Fault(layer=0, index=index, bit=bit, model=model)
        masked = injector.is_masked(fault)  # judged against golden weights
        with injector.inject(fault):
            changed = not np.array_equal(flat, before)
            assert changed == (not masked)
        np.testing.assert_array_equal(flat, before)

    @given(bit=st.integers(0, 31), index=st.integers(0, 79))
    @settings(max_examples=100, deadline=None)
    def test_property_stuck_at_pair_covers_flip(self, bit, index):
        """For any weight bit, exactly one stuck-at matches the flip and
        the other is masked."""
        net = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        injector = WeightFaultInjector(net)
        layer = len(injector.layers) - 1  # linear layer, 80 weights
        flip = Fault(layer=layer, index=index, bit=bit, model=FaultModel.BIT_FLIP)
        sa0 = Fault(layer=layer, index=index, bit=bit, model=FaultModel.STUCK_AT_0)
        sa1 = Fault(layer=layer, index=index, bit=bit, model=FaultModel.STUCK_AT_1)
        _, flipped = injector.faulty_value(flip)
        masked = [injector.is_masked(f) for f in (sa0, sa1)]
        assert sum(masked) == 1
        active = sa1 if masked[0] else sa0
        _, stuck = injector.faulty_value(active)
        if not (np.isnan(stuck) and np.isnan(flipped)):
            assert stuck == flipped
