"""Plan attestation across the distributed trust boundary.

Plan-engine campaigns record the verified plan's structural fingerprint
at submit time; every completed shard stamps the fingerprint its worker
actually verified, and the merge refuses shards whose plan never passed
``repro-check`` — so a worker running stale or tampered code cannot
contribute results to a verified campaign.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.dist import (
    ExhaustiveContext,
    MergeError,
    ShardQueue,
    ShardWorker,
    make_exhaustive_shards,
    merge_exhaustive,
    plan_attestation_runtime,
)
from repro.faults import FaultSpace, InferenceEngine
from repro.faults.table import cell_key
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.runtime import PlanEngine, VectorizedPlanEngine


@pytest.fixture(scope="module")
def plan_setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = PlanEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


def zero_arrays(spec, config):
    """Correctly-shaped placeholder results (merge checks identity and
    shape, not values — values are covered by the bit-identity tests)."""
    sizes = config["layer_sizes"]
    n_models = len(config["fault_models"])
    return {
        f"cell_{cell_key(int(u[0]), int(u[1]))}": np.zeros(
            (sizes[int(u[0])], n_models), dtype=np.uint8
        )
        for u in spec.units
    }


def submitted_queue(tmp_path, engine, space, *, runtime, shards=2):
    config, specs = make_exhaustive_shards(engine, space, shards=shards)
    queue = ShardQueue(tmp_path / "queue")
    queue.submit(specs, config=config, runtime=runtime)
    return queue, config, specs


class TestAttestationStamps:
    def test_plan_engine_runtime_pins_fingerprint(self, plan_setup):
        engine, _space = plan_setup
        runtime = plan_attestation_runtime(engine)
        assert runtime == {
            "engine": "plan",
            "plan_sha256": engine.plan_fingerprint,
        }

    def test_module_engine_contributes_no_attestation(self, plan_setup):
        _engine, space = plan_setup
        model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
        model.eval()
        data = SynthCIFAR("test", size=8, seed=42)
        module_engine = InferenceEngine(
            model, data.images, data.labels, fmt=FLOAT16
        )
        assert plan_attestation_runtime(module_engine) == {}
        context = ExhaustiveContext(module_engine, space)
        assert context.attestation() == {}

    def test_context_attests_verified_plan(self, plan_setup):
        engine, space = plan_setup
        context = ExhaustiveContext(engine, space)
        assert context.attestation() == {
            "plan_sha256": engine.plan_fingerprint,
            "plan_verified": True,
        }


class TestMergeEnforcement:
    def test_attested_shards_merge(self, plan_setup, tmp_path):
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space,
            runtime=plan_attestation_runtime(engine),
        )
        stamp = ExhaustiveContext(engine, space).attestation()
        for spec in specs:
            queue.complete(spec, zero_arrays(spec, config), meta=stamp)
        table = merge_exhaustive(queue)
        assert table.num_layers == len(config["layer_sizes"])

    def test_unattested_shard_refused(self, plan_setup, tmp_path):
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space,
            runtime=plan_attestation_runtime(engine),
        )
        stamp = ExhaustiveContext(engine, space).attestation()
        queue.complete(specs[0], zero_arrays(specs[0], config), meta=stamp)
        queue.complete(specs[1], zero_arrays(specs[1], config), meta={})
        with pytest.raises(MergeError, match="never passed"):
            merge_exhaustive(queue)

    def test_foreign_fingerprint_refused(self, plan_setup, tmp_path):
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space,
            runtime=plan_attestation_runtime(engine),
        )
        stamp = ExhaustiveContext(engine, space).attestation()
        queue.complete(specs[0], zero_arrays(specs[0], config), meta=stamp)
        queue.complete(
            specs[1],
            zero_arrays(specs[1], config),
            meta={"plan_sha256": "0" * 64, "plan_verified": True},
        )
        with pytest.raises(MergeError, match="does not attest"):
            merge_exhaustive(queue)

    def test_unverified_flag_refused(self, plan_setup, tmp_path):
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space,
            runtime=plan_attestation_runtime(engine),
        )
        stamp = ExhaustiveContext(engine, space).attestation()
        queue.complete(specs[0], zero_arrays(specs[0], config), meta=stamp)
        queue.complete(
            specs[1],
            zero_arrays(specs[1], config),
            meta={
                "plan_sha256": engine.plan_fingerprint,
                "plan_verified": False,
            },
        )
        with pytest.raises(MergeError, match="verified=False"):
            merge_exhaustive(queue)

    def test_legacy_campaigns_merge_without_attestation(
        self, plan_setup, tmp_path
    ):
        # Queues submitted before attestation existed carry no
        # plan_sha256 in their runtime — they must keep merging.
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space, runtime={},
        )
        for spec in specs:
            queue.complete(spec, zero_arrays(spec, config), meta={})
        table = merge_exhaustive(queue)
        assert table.num_layers == len(config["layer_sizes"])


class TestMixedEngineMerge:
    @pytest.fixture(scope="class")
    def vectorized(self, plan_setup):
        engine, _space = plan_setup
        return VectorizedPlanEngine(
            engine.model, engine.images, engine.labels, fmt=FLOAT16
        )

    def test_vectorized_shard_merges_into_plan_campaign(
        self, plan_setup, vectorized, tmp_path
    ):
        """A fleet may mix exact and vectorized workers: the vectorized
        fingerprint differs but the verifier attested it compatible, so
        its shards merge into a plan-engine campaign."""
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space,
            runtime=plan_attestation_runtime(engine),
        )
        exact_stamp = ExhaustiveContext(engine, space).attestation()
        vec_stamp = ExhaustiveContext(vectorized, space).attestation()
        assert vec_stamp["plan_sha256"] != exact_stamp["plan_sha256"]
        assert vec_stamp["plan_verified"] is True
        queue.complete(specs[0], zero_arrays(specs[0], config), meta=exact_stamp)
        queue.complete(specs[1], zero_arrays(specs[1], config), meta=vec_stamp)
        table = merge_exhaustive(queue)
        assert table.num_layers == len(config["layer_sizes"])

    def test_exact_shard_merges_into_vectorized_campaign(
        self, plan_setup, vectorized, tmp_path
    ):
        engine, space = plan_setup
        runtime = plan_attestation_runtime(vectorized)
        assert runtime["engine"] == "plan_vectorized"
        queue, config, specs = submitted_queue(
            tmp_path, engine, space, runtime=runtime,
        )
        exact_stamp = ExhaustiveContext(engine, space).attestation()
        for spec in specs:
            queue.complete(spec, zero_arrays(spec, config), meta=exact_stamp)
        table = merge_exhaustive(queue)
        assert table.num_layers == len(config["layer_sizes"])

    def test_vectorized_shard_merges_in_fresh_process(
        self, plan_setup, vectorized, tmp_path, monkeypatch
    ):
        """The compatibility registry is process-local; a standalone
        `repro-dist merge` never built either plan.  The shard carries
        the worker's own declarations, so the merge accepts it with an
        empty registry."""
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space,
            runtime=plan_attestation_runtime(engine),
        )
        vec_stamp = ExhaustiveContext(vectorized, space).attestation()
        assert engine.plan_fingerprint in vec_stamp["plan_compatible_with"]
        for spec in specs:
            queue.complete(spec, zero_arrays(spec, config), meta=vec_stamp)
        from repro.check import plan as check_plan_mod

        monkeypatch.setattr(
            check_plan_mod, "_COMPATIBLE_FINGERPRINTS", {}
        )
        monkeypatch.setattr(check_plan_mod, "_VERIFIED_FINGERPRINTS", set())
        table = merge_exhaustive(queue)
        assert table.num_layers == len(config["layer_sizes"])

    def test_incompatible_shard_still_refused(
        self, plan_setup, vectorized, tmp_path
    ):
        """Mixing is strictly attestation-gated: a fingerprint with no
        compatibility declaration is refused even if marked verified."""
        engine, space = plan_setup
        queue, config, specs = submitted_queue(
            tmp_path, engine, space,
            runtime=plan_attestation_runtime(vectorized),
        )
        vec_stamp = ExhaustiveContext(vectorized, space).attestation()
        queue.complete(specs[0], zero_arrays(specs[0], config), meta=vec_stamp)
        queue.complete(
            specs[1],
            zero_arrays(specs[1], config),
            meta={"plan_sha256": "f" * 64, "plan_verified": True},
        )
        with pytest.raises(MergeError, match="does not attest"):
            merge_exhaustive(queue)


class TestWorkerPath:
    def test_worker_stamps_attestation_into_done_results(
        self, plan_setup, tmp_path
    ):
        engine, space = plan_setup
        config, specs = make_exhaustive_shards(
            engine, space, shards=len(space.layers) * space.bits
        )
        # One single-cell shard keeps the real classification cheap.
        queue = ShardQueue(tmp_path / "queue")
        queue.submit(specs[:1], config=config, runtime=plan_attestation_runtime(engine))
        worker = ShardWorker(
            queue, ExhaustiveContext(engine, space), lease_seconds=60.0
        )
        assert worker.run(max_shards=1, wait=False) == 1
        meta, arrays = queue.load_result(specs[0].shard_id)
        assert meta["plan_sha256"] == engine.plan_fingerprint
        assert meta["plan_verified"] is True
        assert len(arrays) == len(specs[0].units)
