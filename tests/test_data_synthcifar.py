"""Tests for repro.data."""

import numpy as np
import pytest

from repro.data import (
    CLASS_NAMES,
    NUM_CLASSES,
    SynthCIFAR,
    generate_images,
    iterate_batches,
)


class TestGeneration:
    def test_shapes_and_dtypes(self):
        images, labels = generate_images(20, seed=0)
        assert images.shape == (20, 3, 32, 32)
        assert images.dtype == np.float32
        assert labels.shape == (20,)
        assert labels.dtype == np.int64

    def test_value_range(self):
        images, _ = generate_images(20, seed=0)
        assert images.min() >= 0.0
        assert images.max() <= 1.0

    def test_deterministic(self):
        a, la = generate_images(10, seed=3)
        b, lb = generate_images(10, seed=3)
        np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(la, lb)

    def test_seed_changes_data(self):
        a, _ = generate_images(10, seed=3)
        b, _ = generate_images(10, seed=4)
        assert not np.array_equal(a, b)

    def test_class_balance(self):
        _, labels = generate_images(100, seed=0)
        counts = np.bincount(labels, minlength=NUM_CLASSES)
        np.testing.assert_array_equal(counts, 10)

    def test_all_classes_present(self):
        _, labels = generate_images(NUM_CLASSES, seed=0)
        assert set(labels.tolist()) == set(range(NUM_CLASSES))

    def test_custom_image_size(self):
        images, _ = generate_images(5, image_size=16, seed=0)
        assert images.shape == (5, 3, 16, 16)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_images(0)
        with pytest.raises(ValueError):
            generate_images(5, image_size=4)

    def test_class_names_count(self):
        assert len(CLASS_NAMES) == NUM_CLASSES


class TestSynthCIFAR:
    def test_splits_disjoint(self):
        train = SynthCIFAR("train", size=50, seed=1)
        test = SynthCIFAR("test", size=50, seed=1)
        assert not np.array_equal(train.images, test.images)

    def test_normalization(self):
        raw = SynthCIFAR("train", size=200, seed=1, normalize=False)
        norm = SynthCIFAR("train", size=200, seed=1, normalize=True)
        assert raw.images.min() >= 0.0
        assert norm.images.min() < 0.0
        np.testing.assert_allclose(
            norm.images, (raw.images - 0.5) / 0.25, rtol=1e-5, atol=1e-6
        )

    def test_len(self):
        assert len(SynthCIFAR("train", size=33, seed=1)) == 33

    def test_subset(self):
        data = SynthCIFAR("test", size=20, seed=1)
        images, labels = data.subset(5)
        assert len(images) == 5 and len(labels) == 5
        np.testing.assert_array_equal(images, data.images[:5])

    def test_subset_validation(self):
        data = SynthCIFAR("test", size=20, seed=1)
        with pytest.raises(ValueError):
            data.subset(0)
        with pytest.raises(ValueError):
            data.subset(21)

    def test_invalid_split(self):
        with pytest.raises(ValueError, match="split"):
            SynthCIFAR("validation")

    def test_classes_visually_distinct(self):
        """Mean per-class images should differ clearly from one another."""
        data = SynthCIFAR("train", size=500, seed=1, normalize=False)
        means = np.stack(
            [data.images[data.labels == c].mean(axis=0) for c in range(NUM_CLASSES)]
        )
        for i in range(NUM_CLASSES):
            for j in range(i + 1, NUM_CLASSES):
                assert np.abs(means[i] - means[j]).mean() > 0.01


class TestBatches:
    def test_covers_everything(self):
        images = np.arange(10, dtype=np.float32).reshape(10, 1)
        labels = np.arange(10)
        seen = []
        for bx, by in iterate_batches(images, labels, 3, shuffle=False):
            seen.extend(by.tolist())
        assert seen == list(range(10))

    def test_shuffle_deterministic_with_rng(self):
        images = np.arange(10, dtype=np.float32).reshape(10, 1)
        labels = np.arange(10)
        a = [
            by.tolist()
            for _, by in iterate_batches(
                images, labels, 4, rng=np.random.default_rng(0)
            )
        ]
        b = [
            by.tolist()
            for _, by in iterate_batches(
                images, labels, 4, rng=np.random.default_rng(0)
            )
        ]
        assert a == b

    def test_drop_last(self):
        images = np.zeros((10, 1), dtype=np.float32)
        labels = np.zeros(10, dtype=np.int64)
        batches = list(
            iterate_batches(images, labels, 4, shuffle=False, drop_last=True)
        )
        assert len(batches) == 2

    def test_labels_track_images(self):
        images = np.arange(10, dtype=np.float32).reshape(10, 1)
        labels = np.arange(10)
        for bx, by in iterate_batches(
            images, labels, 3, rng=np.random.default_rng(1)
        ):
            np.testing.assert_array_equal(bx[:, 0].astype(np.int64), by)

    def test_validation(self):
        with pytest.raises(ValueError):
            list(iterate_batches(np.zeros((2, 1)), np.zeros(2), 0))
        with pytest.raises(ValueError):
            list(iterate_batches(np.zeros((2, 1)), np.zeros(3), 1))
