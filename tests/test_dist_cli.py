"""``repro-dist`` end to end: submit -> work -> status -> merge."""

from __future__ import annotations

import json

import pytest

from repro.cli.dist import main as dist_main
from repro.models import pretrained_path
from repro.sfi.artifacts import exhaustive_table_path

pytestmark = pytest.mark.skipif(
    not (
        pretrained_path("resnet8_mini").is_file()
        and exhaustive_table_path("resnet8_mini").is_file()
    ),
    reason="needs the committed resnet8_mini artifacts",
)

SUBMIT = [
    "--kind",
    "sampled",
    "--model",
    "resnet8_mini",
    "--method",
    "data-unaware",
    "--error-margin",
    "0.1",
    "--seed",
    "5",
    "--shards",
    "4",
]


class TestSampledRoundTrip:
    def test_submit_work_status_merge(self, tmp_path, capsys):
        root = str(tmp_path / "q")
        assert dist_main(["submit", root, *SUBMIT]) == 0
        out = capsys.readouterr().out
        assert "4 shard(s), 4 enqueued" in out

        assert dist_main(["status", root, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["kind"] == "sampled"
        assert len(status["pending"]) == 4
        assert not status["complete"]

        journal = tmp_path / "worker.jsonl"
        assert dist_main(["work", root, "--trace", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "completed 4 shard(s)" in out
        assert journal.is_file()

        assert dist_main(["status", root, "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert len(status["done"]) == 4
        assert status["complete"]

        assert dist_main(["merge", root]) == 0
        out = capsys.readouterr().out
        assert "data-unaware" in out
        assert "injections" in out

    def test_merged_result_matches_serial_runner(self, tmp_path, capsys):
        from repro.dist import ShardQueue, merge_sampled
        from repro.faults import TableOracle
        from repro.sfi import CampaignRunner, DataUnawareSFI
        from repro.sfi.artifacts import load_or_run_exhaustive

        root = str(tmp_path / "q")
        assert dist_main(["submit", root, *SUBMIT]) == 0
        assert dist_main(["work", root]) == 0
        capsys.readouterr()

        table, space, _engine = load_or_run_exhaustive("resnet8_mini")
        plan = DataUnawareSFI(0.1, 0.99).plan(space)
        serial = CampaignRunner(TableOracle(table, space), space).run(
            plan, seed=5
        )
        merged = merge_sampled(ShardQueue(root), space)
        assert merged.cell_tallies == serial.cell_tallies
        assert merged.assumed_p == serial.assumed_p
        assert merged.network_estimate() == serial.network_estimate()

    def test_resubmit_resumes_instead_of_restarting(self, tmp_path, capsys):
        root = str(tmp_path / "q")
        assert dist_main(["submit", root, *SUBMIT]) == 0
        capsys.readouterr()
        assert dist_main(["work", root, "--max-shards", "2"]) == 0
        capsys.readouterr()
        assert dist_main(["submit", root, *SUBMIT]) == 0
        out = capsys.readouterr().out
        assert "0 enqueued (2 already done)" in out

    def test_merge_refuses_incomplete_queue(self, tmp_path, capsys):
        root = str(tmp_path / "q")
        assert dist_main(["submit", root, *SUBMIT]) == 0
        capsys.readouterr()
        assert dist_main(["merge", root]) == 2
        err = capsys.readouterr().err
        assert "incomplete" in err

    def test_mismatched_submission_is_refused(self, tmp_path, capsys):
        root = str(tmp_path / "q")
        assert dist_main(["submit", root, *SUBMIT]) == 0
        capsys.readouterr()
        different = [arg if arg != "5" else "6" for arg in SUBMIT]
        assert dist_main(["submit", root, *different]) == 2
        err = capsys.readouterr().err
        assert "different config fingerprint" in err
