"""Campaign-level guarantees of the plan engine.

The plan engine must be a drop-in replacement for the module engine in
exhaustive campaigns: same tables bit-for-bit, same checkpoint/resume
behaviour — and the two engines' artifacts must never silently mix
(checkpoints are wiped, dist shards are refused).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.dist import (
    DistError,
    ExhaustiveContext,
    exhaustive_config,
    verify_context_config,
)
from repro.faults import FaultSpace, InferenceEngine, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.runtime import PlanEngine


@pytest.fixture(scope="module")
def campaign_setup():
    """Module and plan engines over the same tiny model + eval set."""
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    module_engine = InferenceEngine(
        model, data.images, data.labels, fmt=FLOAT16
    )
    plan_engine = PlanEngine(
        model, data.images, data.labels, fmt=FLOAT16, batch_size=8
    )
    space = FaultSpace(module_engine.layers, fmt=FLOAT16)
    return module_engine, plan_engine, space


@pytest.fixture(scope="module")
def module_table(campaign_setup):
    module_engine, _, space = campaign_setup
    return OutcomeTable.from_exhaustive(module_engine, space, workers=1)


def assert_tables_identical(a: OutcomeTable, b: OutcomeTable) -> None:
    assert a.num_layers == b.num_layers
    for left, right in zip(a.outcomes, b.outcomes):
        assert left.dtype == right.dtype == np.uint8
        assert np.array_equal(left, right)


class _KillAfter:
    """Progress callback that simulates a crash after *n* reports."""

    def __init__(self, n: int) -> None:
        self.remaining = n

    def __call__(self, done: int, total: int) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt("simulated kill")


class TestPlanCampaign:
    def test_plan_table_is_bit_identical_to_module_table(
        self, campaign_setup, module_table
    ):
        _, plan_engine, space = campaign_setup
        plan_table = OutcomeTable.from_exhaustive(
            plan_engine, space, workers=1
        )
        assert_tables_identical(module_table, plan_table)
        assert plan_table.metadata["inference_count"] == (
            module_table.metadata["inference_count"]
        )

    def test_kill_and_resume_plan_campaign(
        self, campaign_setup, module_table, tmp_path
    ):
        _, plan_engine, space = campaign_setup
        checkpoint = tmp_path / "plan.ckpt"
        with pytest.raises(KeyboardInterrupt):
            OutcomeTable.from_exhaustive(
                plan_engine,
                space,
                checkpoint=checkpoint,
                progress=_KillAfter(3),
                progress_every=1,
            )
        persisted = {p.stem for p in checkpoint.glob("*.npy")}
        assert persisted, "kill happened before any chunk was persisted"
        assert len(persisted) < len(space.layers) * space.bits

        resumed = OutcomeTable.from_exhaustive(
            plan_engine, space, checkpoint=checkpoint
        )
        assert_tables_identical(module_table, resumed)

    def test_module_checkpoint_not_resumed_by_plan_engine(
        self, campaign_setup, module_table, tmp_path
    ):
        """The checkpoint config embeds the engine kind: chunks written
        under the module engine are discarded, not resumed, when a plan
        engine reuses the path — and the rerun still matches."""
        module_engine, plan_engine, space = campaign_setup
        checkpoint = tmp_path / "cross.ckpt"
        with pytest.raises(KeyboardInterrupt):
            OutcomeTable.from_exhaustive(
                module_engine,
                space,
                checkpoint=checkpoint,
                progress=_KillAfter(2),
                progress_every=1,
            )
        table = OutcomeTable.from_exhaustive(
            plan_engine, space, checkpoint=checkpoint
        )
        assert_tables_identical(module_table, table)


class TestPlanTelemetry:
    def test_journal_carries_batching_metrics(self, campaign_setup, tmp_path):
        """repro-stats surfaces the plan engine's batching and op-cache
        effectiveness from the journal alone."""
        from repro.telemetry import (
            Journal,
            Telemetry,
            format_summary,
            read_journal,
            summarize_journal,
        )

        _, plan_engine, space = campaign_setup
        path = tmp_path / "plan.jsonl"
        OutcomeTable.from_exhaustive(
            plan_engine,
            space,
            workers=1,
            telemetry=Telemetry(journal=Journal(path)),
        )
        events = read_journal(path)
        start = next(e for e in events if e.type == "campaign_start")
        assert start.fields["engine"] == "plan"
        assert start.fields["batch_size"] == plan_engine.batch_size

        summary = summarize_journal(path)[0]
        assert summary.tail_passes > 0
        assert summary.ops_cached > 0
        assert summary.batched_faults_per_pass > 1.0
        assert 0.0 < summary.op_cache_hit_rate < 1.0
        assert "plan engine:" in format_summary(summary)


class TestDistRefusal:
    def test_worker_refuses_other_engine_kind(self, campaign_setup):
        """A campaign submitted with the plan engine is refused by a
        worker that rebuilt a module engine (and vice versa): their
        fingerprints differ."""
        module_engine, plan_engine, space = campaign_setup
        config = exhaustive_config(plan_engine, space)
        context = ExhaustiveContext(module_engine, space)
        with pytest.raises(DistError, match="fingerprint mismatch"):
            verify_context_config(context, config)

    def test_worker_refuses_fused_against_unfused(self, campaign_setup):
        _, plan_engine, space = campaign_setup
        fused = PlanEngine(
            plan_engine.model,
            plan_engine.images,
            plan_engine.labels,
            fmt=FLOAT16,
            fuse=True,
        )
        config = exhaustive_config(fused, space)
        assert config["fusions"] == ["bn_fold", "im2col_workspace"]
        context = ExhaustiveContext(plan_engine, space)
        with pytest.raises(DistError, match="fingerprint mismatch"):
            verify_context_config(context, config)

    def test_matching_plan_config_is_accepted(self, campaign_setup):
        _, plan_engine, space = campaign_setup
        config = exhaustive_config(plan_engine, space)
        assert config["engine"] == "plan"
        verify_context_config(ExhaustiveContext(plan_engine, space), config)

    def test_module_refusal_survives_vectorized_attestation(
        self, campaign_setup
    ):
        """The vectorized engine declares itself compatible with *both*
        the plan and module engines; those pairwise declarations must
        not transitively whitelist module workers on plan campaigns."""
        from repro.runtime import VectorizedPlanEngine

        module_engine, plan_engine, space = campaign_setup
        VectorizedPlanEngine(
            plan_engine.model,
            plan_engine.images,
            plan_engine.labels,
            fmt=FLOAT16,
        )
        config = exhaustive_config(plan_engine, space)
        context = ExhaustiveContext(module_engine, space)
        with pytest.raises(DistError, match="fingerprint mismatch"):
            verify_context_config(context, config)


class TestCliWiring:
    def test_repro_run_engine_flags(self):
        from repro.cli.run import build_parser

        args = build_parser().parse_args([])
        assert args.engine == "plan"
        assert args.fuse is False
        assert args.batch_size is None
        args = build_parser().parse_args(
            ["--engine", "module", "--batch-size", "4"]
        )
        assert args.engine == "module"
        assert args.batch_size == 4
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--engine", "jit"])

    def test_repro_dist_submit_engine_flags(self):
        from repro.cli.dist import build_parser

        args = build_parser().parse_args(
            ["submit", "q", "--model", "resnet8_mini"]
        )
        assert args.engine == "plan"
        assert args.fuse is False
        args = build_parser().parse_args(
            ["submit", "q", "--model", "resnet8_mini", "--engine", "module"]
        )
        assert args.engine == "module"
