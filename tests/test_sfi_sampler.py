"""Tests for repro.sfi.sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultSpace
from repro.models import ResNetCIFAR
from repro.sfi import cell_subpopulations, sample_subpopulation
from repro.sfi.sampler import sample_without_replacement


class TestSampleWithoutReplacement:
    def test_distinct(self):
        rng = np.random.default_rng(0)
        ids = sample_without_replacement(1000, 100, rng)
        assert len(set(ids.tolist())) == 100

    def test_full_census(self):
        rng = np.random.default_rng(0)
        ids = sample_without_replacement(10, 10, rng)
        assert sorted(ids.tolist()) == list(range(10))

    def test_empty(self):
        rng = np.random.default_rng(0)
        assert len(sample_without_replacement(10, 0, rng)) == 0

    def test_sparse_path(self):
        """n << N triggers rejection sampling; results stay distinct."""
        rng = np.random.default_rng(1)
        ids = sample_without_replacement(10_000_000, 500, rng)
        assert len(set(ids.tolist())) == 500
        assert ids.max() < 10_000_000

    def test_dense_path(self):
        rng = np.random.default_rng(1)
        ids = sample_without_replacement(100, 60, rng)
        assert len(set(ids.tolist())) == 60

    def test_deterministic_for_seed(self):
        a = sample_without_replacement(10_000, 50, np.random.default_rng(7))
        b = sample_without_replacement(10_000, 50, np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            sample_without_replacement(10, 11, rng)
        with pytest.raises(ValueError):
            sample_without_replacement(10, -1, rng)

    @given(
        population=st.integers(1, 100_000),
        frac=st.floats(0.0, 1.0),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=100, deadline=None)
    def test_property_distinct_and_in_range(self, population, frac, seed):
        n = int(population * frac)
        rng = np.random.default_rng(seed)
        ids = sample_without_replacement(population, n, rng)
        assert len(ids) == n
        assert len(set(ids.tolist())) == n
        if n:
            assert 0 <= ids.min() and ids.max() < population


class TestSampleSubpopulation:
    def test_faults_stay_in_stratum(self):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        space = FaultSpace(model)
        cell = cell_subpopulations(space)[70]
        rng = np.random.default_rng(0)
        faults = sample_subpopulation(cell, 50, rng)
        assert len(faults) == 50
        assert all(f.layer == cell.layer and f.bit == cell.bit for f in faults)
        assert len({(f.index, f.model) for f in faults}) == 50

    def test_uniformity_over_models(self):
        """Both stuck-at polarities should appear in a large sample."""
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        space = FaultSpace(model)
        cell = cell_subpopulations(space)[0]
        rng = np.random.default_rng(0)
        faults = sample_subpopulation(cell, cell.population // 2, rng)
        models = {f.model for f in faults}
        assert len(models) == 2
