"""Plan verifier: clean plans verify, corrupted plans are rejected.

The mutation tests are the contract: each class of plan corruption that
could silently wreck a campaign (stale golden cache, aliased buffers,
unvetted batching, unknown kernels, infeasible shapes) must be rejected
with its own stable diagnostic ID.
"""

from __future__ import annotations

import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    KERNEL_TABLE,
    PlanVerificationError,
    check_plan,
    is_plan_verified,
    plan_fingerprint,
    verify_plan,
)
from repro.models import MODELS, create_model
from repro.runtime.plan import (
    FUSED_OP_KINDS,
    OP_KINDS,
    PlanBuilder,
    capture_plan,
)

MINI_MODELS = ["resnet8_mini", "resnet14_mini", "mobilenetv2_mini", "vgg_mini"]

_PLAN_CACHE: dict = {}


def plan_for(name: str, fuse: bool):
    """Shared read-only plan (capture is deterministic per arch)."""
    key = (name, fuse)
    if key not in _PLAN_CACHE:
        _PLAN_CACHE[key] = capture_plan(create_model(name), fuse=fuse)
    return _PLAN_CACHE[key]


def fresh_plan(name: str = "resnet8_mini", fuse: bool = False):
    """A private plan instance the test may mutate."""
    return capture_plan(create_model(name), fuse=fuse)


def error_rules(diagnostics) -> set[str]:
    return {d.rule for d in diagnostics if d.severity == "error"}


class TestCleanPlans:
    @pytest.mark.parametrize("name", MINI_MODELS)
    @pytest.mark.parametrize("fuse", [False, True])
    def test_mini_models_verify_with_zero_diagnostics(self, name, fuse):
        assert verify_plan(plan_for(name, fuse)) == []

    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(sorted(MODELS)), fuse=st.booleans())
    def test_every_registered_model_plan_is_clean(self, name, fuse):
        diagnostics = verify_plan(plan_for(name, fuse))
        assert error_rules(diagnostics) == set()

    def test_kernel_table_covers_every_capturable_kind(self):
        assert set(KERNEL_TABLE) == set(OP_KINDS | FUSED_OP_KINDS)

    def test_builder_rejects_unknown_kind_at_emit(self):
        builder = PlanBuilder()
        with pytest.raises(ValueError, match="unknown op kind"):
            builder.emit("gelu", (0,))


class TestMutationRejection:
    """Each corruption class gets its own diagnostic ID."""

    def test_dropped_affected_entry_is_unsound_P110(self):
        plan = fresh_plan()
        conv = next(op for op in plan.ops if op.kind == "conv2d")
        full = plan.affected_ops(conv.index)
        assert len(full) > 1
        plan._affected[conv.index] = full[:-1]  # drop a dependent op
        diagnostics = verify_plan(plan)
        assert "P110" in error_rules(diagnostics)
        [finding] = [d for d in diagnostics if d.rule == "P110"]
        assert "stale" in finding.message

    def test_aliased_buffer_slots_P102(self):
        plan = fresh_plan()
        plan.ops[5].output = plan.ops[4].output
        assert "P102" in error_rules(verify_plan(plan))

    def test_flipped_batch_invariant_on_linear_P120(self):
        plan = fresh_plan()
        linear = next(op for op in plan.ops if op.kind == "linear")
        assert linear.batch_invariant is False  # 2-D GEMM
        linear.batch_invariant = True
        assert "P120" in error_rules(verify_plan(plan))

    def test_foreign_op_kind_P101(self):
        plan = fresh_plan()
        plan.ops[0].kind = "gelu"
        assert "P101" in error_rules(verify_plan(plan))

    def test_fused_kind_in_unfused_plan_P101(self):
        plan = fresh_plan()
        assert plan.fusions == ()
        plan.ops[0].kind = "conv2d_bn"
        assert "P101" in error_rules(verify_plan(plan))

    def test_broken_shape_chain_P104(self):
        plan = fresh_plan()
        add = next(op for op in plan.ops if op.kind == "add")
        # Rewire one addend to the raw network input: (3, 32, 32) can
        # never match the residual branch's activation shape.
        add.inputs = (plan.input_slot, add.inputs[1])
        assert "P104" in error_rules(verify_plan(plan))

    def test_the_five_mutation_classes_have_distinct_ids(self):
        assert len({"P110", "P102", "P120", "P101", "P104"}) == 5

    def test_check_plan_raises_with_rule_id_in_message(self):
        plan = fresh_plan()
        plan.ops[0].kind = "gelu"
        with pytest.raises(PlanVerificationError, match="P101"):
            check_plan(plan)

    def test_read_before_write_P103(self):
        plan = fresh_plan()
        plan.ops[0].inputs = (plan.num_slots - 1,)
        assert "P103" in error_rules(verify_plan(plan))

    def test_unreachable_module_op_P112(self):
        plan = fresh_plan()
        # Cut the first add's dependence on the residual branch: every
        # module op feeding only that branch can no longer reach the
        # output, so faults in it would be invisible.
        add = next(op for op in plan.ops if op.kind == "add")
        add.inputs = (add.inputs[1], add.inputs[1])
        assert "P112" in error_rules(verify_plan(plan))


class TestFingerprint:
    def test_same_architecture_same_fingerprint(self):
        assert plan_fingerprint(fresh_plan()) == plan_fingerprint(fresh_plan())

    def test_fused_and_unfused_fingerprints_differ(self):
        unfused = plan_fingerprint(plan_for("resnet8_mini", False))
        fused = plan_fingerprint(plan_for("resnet8_mini", True))
        assert unfused != fused

    def test_different_architectures_differ(self):
        assert plan_fingerprint(plan_for("resnet8_mini", False)) != (
            plan_fingerprint(plan_for("vgg_mini", False))
        )

    def test_check_plan_registers_the_fingerprint(self):
        plan = fresh_plan()
        fingerprint = check_plan(plan)
        assert is_plan_verified(fingerprint)
        assert not is_plan_verified("0" * 64)


class TestEngineWiring:
    def test_plan_engine_exposes_verified_fingerprint(
        self, tiny_model, tiny_eval_set
    ):
        from repro.runtime import PlanEngine

        images, labels = tiny_eval_set
        engine = PlanEngine(tiny_model, images, labels)
        assert engine.plan_fingerprint == plan_fingerprint(engine.plan)
        assert is_plan_verified(engine.plan_fingerprint)

    def test_largest_plan_verifies_fast(self):
        plan = plan_for("mobilenetv2", False)  # 154 ops, the biggest
        start = time.perf_counter()
        diagnostics = verify_plan(plan)
        seconds = time.perf_counter() - start
        assert diagnostics == []
        # EXPERIMENTS.md records ~17 ms; 0.5 s is the don't-regress bar
        # (loose enough for loaded CI runners).
        assert seconds < 0.5
