"""Elastic rebalancing: shard splits must never change the science.

Covers the pure re-partition (``split_shard``), the race-safe queue
protocol (``begin_split`` / ``commit_split`` / ``recover_splits``), the
resume path (``expand_splits``), the pace-observing :class:`Rebalancer`,
and the end-to-end property the whole feature hangs on: a campaign whose
shards were split for stragglers merges bit-identically to the serial
run.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.dist import (
    DistError,
    ExhaustiveContext,
    Rebalancer,
    ShardQueue,
    ShardWorker,
    expand_splits,
    make_exhaustive_shards,
    merge_exhaustive,
    split_shard,
)
from repro.faults import FaultSpace, InferenceEngine, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.telemetry import Journal, Telemetry, read_journal


@pytest.fixture(scope="module")
def campaign_setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


@pytest.fixture(scope="module")
def serial_table(campaign_setup):
    engine, space = campaign_setup
    return OutcomeTable.from_exhaustive(engine, space, workers=1)


def submitted_queue(tmp_path, campaign_setup, *, shards=4):
    engine, space = campaign_setup
    queue = ShardQueue(tmp_path / "q")
    config, specs = make_exhaustive_shards(engine, space, shards=shards)
    queue.submit(specs, config=config)
    return queue, config, specs


class TestSplitShard:
    def test_children_cover_parent_exactly(self, campaign_setup):
        _, specs = make_exhaustive_shards(*campaign_setup, shards=2)
        parent = specs[0]
        children = split_shard(parent, 3)
        assert len(children) == 3
        covered = [unit for child in children for unit in child.units]
        assert sorted(covered) == sorted(parent.units)
        # Round-robin partition, parent order preserved within a child.
        assert children[0].units == tuple(list(parent.units)[0::3])

    def test_deterministic_ids_and_history(self, campaign_setup):
        _, specs = make_exhaustive_shards(*campaign_setup, shards=2)
        parent = specs[0]
        once = split_shard(parent, 2)
        again = split_shard(parent, 2)
        assert [c.shard_id for c in once] == [c.shard_id for c in again]
        assert len({c.shard_id for c in once} | {parent.shard_id}) == 3
        assert all(
            c.history[-1] == f"split {i + 1}/2 of {parent.shard_id}"
            for i, c in enumerate(once)
        )
        assert all(c.config_hash == parent.config_hash for c in once)

    def test_degenerate_parts_rejected(self, campaign_setup):
        _, specs = make_exhaustive_shards(*campaign_setup, shards=2)
        parent = specs[0]
        with pytest.raises(ValueError, match=">= 2 parts"):
            split_shard(parent, 1)
        single = split_shard(parent, len(parent.units))[0]
        with pytest.raises(DistError, match="nothing to split"):
            split_shard(single, 2)

    def test_oversized_parts_clamp_to_unit_count(self, campaign_setup):
        _, specs = make_exhaustive_shards(*campaign_setup, shards=2)
        parent = specs[0]
        children = split_shard(parent, len(parent.units) * 10)
        assert len(children) == len(parent.units)
        assert all(len(c.units) == 1 for c in children)


class TestQueueSplitProtocol:
    def test_commit_rewrites_campaign_and_enqueues(
        self, tmp_path, campaign_setup
    ):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup)
        parent = specs[1]
        claimed = queue.begin_split(parent.shard_id)
        assert claimed is not None
        # While splitting, the parent is invisible to worker claims.
        assert not (queue.pending_dir / f"{parent.shard_id}.json").exists()
        children = split_shard(claimed, 2)
        queue.commit_split(claimed, children)

        campaign = queue.campaign()
        shards = campaign["shards"]
        assert parent.shard_id not in shards
        # Children take the parent's slot, order preserved around it.
        at = shards.index(children[0].shard_id)
        assert shards[at + 1] == children[1].shard_id
        assert shards[0] == specs[0].shard_id
        assert campaign["splits"][parent.shard_id] == {
            "children": [c.shard_id for c in children],
            "parts": 2,
        }
        for child in children:
            assert (queue.pending_dir / f"{child.shard_id}.json").exists()
        assert not queue.splitting_path(parent.shard_id).exists()

    def test_begin_split_loses_to_a_claim(self, tmp_path, campaign_setup):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup)
        spec, lease = queue.claim(worker="w1", lease_seconds=30.0)
        assert queue.begin_split(spec.shard_id) is None
        lease.release()

    def test_commit_rejects_foreign_shard(self, tmp_path, campaign_setup):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup)
        parent = specs[0]
        foreign = split_shard(parent, 2)[0]
        with pytest.raises(DistError, match="not part of the campaign"):
            queue.commit_split(foreign, split_shard(parent, 2))

    def test_recover_uncommitted_split_restores_parent(
        self, tmp_path, campaign_setup
    ):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup)
        parent = specs[2]
        queue.begin_split(parent.shard_id)
        # Crash before commit_split: campaign.json never changed.
        recovered = queue.recover_splits()
        assert recovered == [parent.shard_id]
        assert (queue.pending_dir / f"{parent.shard_id}.json").exists()
        assert parent.shard_id in queue.campaign()["shards"]

    def test_recover_committed_split_rederives_children(
        self, tmp_path, campaign_setup
    ):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup)
        parent = specs[0]
        claimed = queue.begin_split(parent.shard_id)
        children = split_shard(claimed, 2)
        queue.commit_split(claimed, children)
        # Simulate the crash window after the campaign.json rewrite:
        # children vanished, the .splitting parent is still on disk.
        for child in children:
            (queue.pending_dir / f"{child.shard_id}.json").unlink()
        queue.splitting_path(parent.shard_id).write_text(
            claimed.to_json() + "\n"
        )
        recovered = queue.recover_splits()
        assert recovered == [parent.shard_id]
        for child in children:
            assert (queue.pending_dir / f"{child.shard_id}.json").exists()
        assert not queue.splitting_path(parent.shard_id).exists()

    def test_resubmit_expands_recorded_splits(self, tmp_path, campaign_setup):
        queue, config, specs = submitted_queue(tmp_path, campaign_setup)
        parent = specs[0]
        claimed = queue.begin_split(parent.shard_id)
        children = split_shard(claimed, 2)
        queue.commit_split(claimed, children)
        # Resume with the *original* shard list: the recorded split must
        # re-derive the children instead of resurrecting the parent.
        _, fresh_specs = make_exhaustive_shards(*campaign_setup, shards=4)
        queue.submit(fresh_specs, config=config)
        assert not (queue.pending_dir / f"{parent.shard_id}.json").exists()
        assert parent.shard_id not in queue.campaign()["shards"]
        for child in children:
            assert child.shard_id in queue.campaign()["shards"]

    def test_expand_splits_validates_derivation(self, campaign_setup):
        _, specs = make_exhaustive_shards(*campaign_setup, shards=2)
        parent = specs[0]
        children = split_shard(parent, 2)
        record = {
            parent.shard_id: {
                "children": [c.shard_id for c in children],
                "parts": 2,
            }
        }
        expanded = expand_splits(specs, record)
        assert [s.shard_id for s in expanded] == [
            children[0].shard_id,
            children[1].shard_id,
            specs[1].shard_id,
        ]
        # Grandchildren: splits of splits replay recursively.
        grand = split_shard(children[0], 2)
        record[children[0].shard_id] = {
            "children": [g.shard_id for g in grand],
            "parts": 2,
        }
        deep = expand_splits(specs, record)
        assert grand[0].shard_id in {s.shard_id for s in deep}
        # A tampered record (ids that split_shard cannot re-derive) is an
        # integrity failure, not something to silently re-enqueue.
        record[parent.shard_id]["children"] = ["bogus", "ids"]
        with pytest.raises(DistError, match="does not reproduce"):
            expand_splits(specs, record)


def write_lease(queue, shard_id, *, worker, acquired, heartbeats):
    queue.leased_dir.mkdir(parents=True, exist_ok=True)
    (queue.leased_dir / f"{shard_id}.lease.json").write_text(
        json.dumps(
            {
                "shard_id": shard_id,
                "worker": worker,
                "acquired": acquired,
                "heartbeats": heartbeats,
                "deadline": acquired + 3600.0,
                "lease_seconds": 3600.0,
            }
        )
    )


class TestRebalancer:
    def test_observe_reads_lease_progress(self, tmp_path, campaign_setup):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup)
        write_lease(
            queue, "a" * 16, worker="fast", acquired=1000.0, heartbeats=50
        )
        write_lease(
            queue, "b" * 16, worker="slow", acquired=1000.0, heartbeats=2
        )
        rebalancer = Rebalancer(queue)
        rates = {r.worker: r for r in rebalancer.observe(now=1100.0)}
        assert rates["fast"].rate == pytest.approx(0.5)
        assert rates["slow"].rate == pytest.approx(0.02)

    def test_straggler_pace_splits_pending_shards(
        self, tmp_path, campaign_setup
    ):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup, shards=4)
        # Three healthy workers, one straggler at 1/25th their rate.
        for i, heartbeats in enumerate((50, 50, 50)):
            write_lease(
                queue,
                f"{i}" * 16,
                worker=f"fast{i}",
                acquired=1000.0,
                heartbeats=heartbeats,
            )
        write_lease(
            queue, "f" * 16, worker="laggard", acquired=1000.0, heartbeats=2
        )
        journal = tmp_path / "rebalance.jsonl"
        rebalancer = Rebalancer(
            queue,
            # Healthy pace: 0.5 units/s -> 2 s/unit.  The straggler runs
            # at 50 s/unit, so a ~28-unit pending shard prices at ~1400s
            # against a 60s target and must split.
            target_shard_seconds=60.0,
            telemetry=Telemetry(journal=Journal(journal)),
        )
        report = rebalancer.tick(now=1100.0)
        assert report.stragglers == ["laggard"]
        assert report.seconds_per_unit == pytest.approx(50.0)
        assert report.split_count == 4  # every pending shard was oversized
        campaign_shards = queue.campaign()["shards"]
        for parent_id, child_ids in report.splits:
            assert parent_id not in campaign_shards
            assert all(c in campaign_shards for c in child_ids)
        events = read_journal(journal)
        assert [e.type for e in events].count("shard_split") == 4
        assert events[0].fields["children"] == list(report.splits[0][1])

    def test_healthy_fleet_does_not_split_fine_shards(
        self, tmp_path, campaign_setup
    ):
        queue, _, _ = submitted_queue(tmp_path, campaign_setup, shards=4)
        write_lease(
            queue, "a" * 16, worker="fast", acquired=1000.0, heartbeats=500
        )
        rebalancer = Rebalancer(queue, target_shard_seconds=60.0)
        report = rebalancer.tick(now=1100.0)
        assert report.stragglers == []
        assert report.split_count == 0

    def test_no_observations_and_no_prior_never_splits(
        self, tmp_path, campaign_setup
    ):
        queue, _, _ = submitted_queue(tmp_path, campaign_setup, shards=2)
        rebalancer = Rebalancer(queue, target_shard_seconds=0.001)
        report = rebalancer.tick(now=1100.0)
        assert report.seconds_per_unit is None
        assert report.split_count == 0

    def test_prior_pace_splits_before_any_lease(
        self, tmp_path, campaign_setup
    ):
        queue, _, specs = submitted_queue(tmp_path, campaign_setup, shards=2)
        rebalancer = Rebalancer(
            queue, target_shard_seconds=30.0, seconds_per_unit=10.0
        )
        report = rebalancer.tick(now=1100.0)
        assert report.split_count == 2
        # Idempotent: children now fit the target at the same pace.
        min_child = min(
            len(s.units) for s in map(queue._read_spec, queue.pending_dir.glob("*.json"))
        )
        assert min_child * 10.0 <= 30.0 or min_child >= rebalancer.min_units


class TestSplitCampaignMergesIdentically:
    def test_straggler_split_campaign_is_bit_identical(
        self, tmp_path, campaign_setup, serial_table
    ):
        """The acceptance property: split shards, drain, merge, compare."""
        engine, space = campaign_setup
        queue, _, specs = submitted_queue(tmp_path, campaign_setup, shards=3)
        # A rebalance pass with a pessimistic prior splits every pending
        # shard before the fleet arrives (the worst-case storm).
        rebalancer = Rebalancer(
            queue, target_shard_seconds=1.0, seconds_per_unit=1.0
        )
        report = rebalancer.tick()
        assert report.split_count == 3
        context = ExhaustiveContext(engine, space)
        completed = ShardWorker(
            queue, context, worker_id="w1", lease_seconds=60.0
        ).run()
        assert completed == len(queue.campaign()["shards"])
        assert queue.is_complete()
        merged = merge_exhaustive(queue)
        assert merged.num_layers == serial_table.num_layers
        for left, right in zip(serial_table.outcomes, merged.outcomes):
            assert np.array_equal(left, right)
