"""Chaos: a worker SIGKILLed mid-shard must not corrupt the campaign.

The killed worker leaves a leased shard with no process behind it; the
lease expires, a surviving worker releases and re-claims it, and the
merged table is still bit-identical to the serial run.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.dist import (
    ExhaustiveContext,
    ShardQueue,
    ShardWorker,
    make_exhaustive_shards,
    merge_exhaustive,
)
from repro.faults import FaultSpace, InferenceEngine, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR

pytestmark = pytest.mark.skipif(
    not hasattr(os, "fork"), reason="chaos test needs fork + SIGKILL"
)

LEASE_SECONDS = 0.3


@pytest.fixture(scope="module")
def campaign_setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


@pytest.fixture(scope="module")
def serial_table(campaign_setup):
    engine, space = campaign_setup
    return OutcomeTable.from_exhaustive(engine, space, workers=1)


def test_killed_worker_mid_shard_is_reassigned_and_merge_is_identical(
    campaign_setup, serial_table, tmp_path
):
    engine, space = campaign_setup
    queue = ShardQueue(tmp_path / "q")
    config, specs = make_exhaustive_shards(engine, space, shards=4)
    queue.submit(specs, config=config)
    context = ExhaustiveContext(engine, space)

    def doomed_worker():
        # SIGKILL ourselves after the first completed unit: the claimed
        # shard stays leased with no heartbeat behind it — no Python
        # cleanup, no lease release, exactly like a machine dying.
        worker = ShardWorker(
            queue,
            context,
            worker_id="doomed",
            lease_seconds=LEASE_SECONDS,
            on_unit=lambda _spec: os.kill(os.getpid(), signal.SIGKILL),
        )
        worker.run()

    ctx = multiprocessing.get_context("fork")
    victim = ctx.Process(target=doomed_worker)
    victim.start()
    victim.join(timeout=30)
    assert victim.exitcode == -signal.SIGKILL

    # The victim died holding one shard: still leased, nothing done.
    status = queue.status()
    assert len(status.leased) == 1
    assert status.leased[0]["worker"] == "doomed"
    killed_shard = status.leased[0]["shard_id"]
    assert not status.done

    # Until the lease deadline passes nothing may be released ...
    assert queue.release_expired(lease_seconds=LEASE_SECONDS) == []
    time.sleep(LEASE_SECONDS + 0.1)
    # ... after it, the dead worker's shard goes back to pending.
    released = queue.release_expired(lease_seconds=LEASE_SECONDS)
    assert released == [(killed_shard, "requeued")]

    # A surviving worker drains everything, including the re-dispatched
    # shard (claiming past its retry backoff window).
    survivor = ShardWorker(
        queue,
        context,
        worker_id="survivor",
        lease_seconds=30.0,
        backoff_base=0.01,
    )
    completed = survivor.run()
    assert completed == 4
    assert queue.is_complete()
    requeued_spec, _arrays = queue.load_result(killed_shard)
    assert requeued_spec["attempts"] == 1  # the expiry was recorded

    merged = merge_exhaustive(queue)
    assert merged.num_layers == serial_table.num_layers
    for left, right in zip(serial_table.outcomes, merged.outcomes):
        assert np.array_equal(left, right)
