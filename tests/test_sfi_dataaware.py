"""Tests for repro.sfi.dataaware (paper Eq. 4-5)."""

import numpy as np
import pytest

from repro.ieee754 import BFLOAT16, FLOAT16, FLOAT32
from repro.models import resnet8_mini
from repro.sfi import bit_criticality, data_aware_p, model_weight_vector


@pytest.fixture(scope="module")
def gaussian_weights():
    return np.random.default_rng(0).normal(0.0, 0.05, size=20_000)


@pytest.fixture(scope="module")
def profile(gaussian_weights):
    return bit_criticality(gaussian_weights)


class TestEq4:
    def test_d_avg_combines_directions_with_frequencies(self, profile):
        total = profile.frequencies.total
        f0 = profile.frequencies.f0 / total
        f1 = profile.frequencies.f1 / total
        expected = profile.distances.d01 * f0 + profile.distances.d10 * f1
        np.testing.assert_allclose(profile.d_avg, expected)

    def test_d_avg_nonnegative(self, profile):
        assert (profile.d_avg >= 0).all()

    def test_exponent_msb_dominates(self, profile):
        assert profile.d_avg[30] == profile.d_avg.max()

    def test_mantissa_lsb_negligible(self, profile):
        assert profile.d_avg[0] < profile.d_avg[30] * 1e-10


class TestEq5:
    def test_p_range(self, profile):
        assert (profile.p >= 0.0).all()
        assert (profile.p <= 0.5).all()

    def test_outliers_pinned_at_half(self, profile):
        assert profile.outliers.any()
        np.testing.assert_array_equal(profile.p[profile.outliers], 0.5)

    def test_exponent_msb_is_outlier(self, profile):
        assert profile.outliers[30]

    def test_mantissa_priors_near_zero(self, profile):
        assert profile.p[:10].max() < 0.05

    def test_min_bit_gets_zero(self, profile):
        inner = profile.p[~profile.outliers]
        assert inner.min() == pytest.approx(0.0)

    def test_monotone_mantissa_trend(self, profile):
        """Higher mantissa bits flip larger amounts -> larger priors."""
        mantissa = profile.p[:23]
        assert mantissa[22] >= mantissa[10] >= mantissa[0]


class TestOutlierPolicies:
    def test_percentile_policy(self, gaussian_weights):
        prof = bit_criticality(
            gaussian_weights, outlier_policy="percentile", outlier_percentile=90.0
        )
        # ~10% of 32 bits above the 90th percentile.
        assert 1 <= prof.outliers.sum() <= 6

    def test_none_policy(self, gaussian_weights):
        prof = bit_criticality(gaussian_weights, outlier_policy="none")
        assert not prof.outliers.any()
        # Without outlier handling the max bit still gets exactly 0.5.
        assert prof.p.max() == pytest.approx(0.5)

    def test_unknown_policy(self, gaussian_weights):
        with pytest.raises(ValueError, match="outlier_policy"):
            bit_criticality(gaussian_weights, outlier_policy="bogus")

    def test_policies_agree_on_high_bits(self, gaussian_weights):
        """All policies assign the exponent MSB the maximum criticality."""
        for policy in ("iqr", "percentile", "none"):
            prof = bit_criticality(gaussian_weights, outlier_policy=policy)
            assert prof.p[30] == pytest.approx(0.5)


class TestOtherFormats:
    @pytest.mark.parametrize("fmt", [FLOAT16, BFLOAT16])
    def test_reduced_precision_profiles(self, gaussian_weights, fmt):
        prof = bit_criticality(gaussian_weights, fmt=fmt)
        assert prof.p.shape == (16,)
        assert (prof.p <= 0.5).all()
        # Exponent MSB is the most critical bit in every format.
        msb = fmt.mantissa_bits + fmt.exponent_bits - 1
        assert prof.p[msb] == pytest.approx(0.5)

    def test_format_consistency_of_total_bits(self, gaussian_weights):
        prof32 = bit_criticality(gaussian_weights, fmt=FLOAT32)
        assert prof32.p.shape == (32,)


class TestModelHelpers:
    def test_model_weight_vector_length(self):
        model = resnet8_mini(seed=0)
        vector = model_weight_vector(model)
        assert vector.shape == (2024,)

    def test_data_aware_p_wrapper(self):
        model = resnet8_mini(seed=0)
        p = data_aware_p(model)
        assert p.shape == (32,)
        assert p[30] == pytest.approx(0.5)

    def test_empty_weights_rejected(self):
        with pytest.raises(ValueError):
            bit_criticality(np.array([]))

    def test_deterministic(self, gaussian_weights):
        a = bit_criticality(gaussian_weights).p
        b = bit_criticality(gaussian_weights).p
        np.testing.assert_array_equal(a, b)
