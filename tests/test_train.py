"""Tests for repro.train."""

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.models import ResNetCIFAR
from repro.nn import Linear, Sequential
from repro.tensor import Tensor, ops
from repro.train import SGD, TrainConfig, Trainer, cosine_lr, evaluate_accuracy, step_lr
from repro.train.optim import SGD as SGDDirect


class TestSGD:
    def test_plain_gradient_step(self):
        net = Sequential(Linear(2, 2, rng=np.random.default_rng(0)))
        opt = SGD(net.parameters(), lr=0.1, momentum=0.0)
        w = net[0].weight
        w.grad = np.ones_like(w.data)
        before = w.data.copy()
        opt.step()
        np.testing.assert_allclose(w.data, before - 0.1, rtol=1e-6)

    def test_momentum_accumulates(self):
        net = Sequential(Linear(1, 1, rng=np.random.default_rng(0)))
        opt = SGD(net.parameters(), lr=1.0, momentum=0.5)
        w = net[0].weight
        w.grad = np.ones_like(w.data)
        start = w.data.copy()
        opt.step()
        first_step = start - w.data
        w.grad = np.ones_like(w.data)
        mid = w.data.copy()
        opt.step()
        second_step = mid - w.data
        assert second_step[0, 0] == pytest.approx(first_step[0, 0] * 1.5)

    def test_weight_decay_shrinks(self):
        net = Sequential(Linear(1, 1, rng=np.random.default_rng(0)))
        opt = SGD(net.parameters(), lr=0.1, momentum=0.0, weight_decay=0.1)
        w = net[0].weight
        w.data[...] = 10.0
        w.grad = np.zeros_like(w.data)
        opt.step()
        assert abs(w.data[0, 0]) < 10.0

    def test_skips_parameters_without_grad(self):
        net = Sequential(Linear(1, 1, rng=np.random.default_rng(0)))
        opt = SGD(net.parameters(), lr=0.1)
        before = net[0].weight.data.copy()
        opt.step()
        np.testing.assert_array_equal(net[0].weight.data, before)

    def test_zero_grad(self):
        net = Sequential(Linear(1, 1, rng=np.random.default_rng(0)))
        opt = SGD(net.parameters(), lr=0.1)
        net[0].weight.grad = np.ones_like(net[0].weight.data)
        opt.zero_grad()
        assert net[0].weight.grad is None

    def test_validation(self):
        net = Sequential(Linear(1, 1))
        with pytest.raises(ValueError):
            SGDDirect(net.parameters(), lr=0.0)
        with pytest.raises(ValueError):
            SGDDirect(net.parameters(), lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGDDirect(net.parameters(), lr=0.1, weight_decay=-1.0)
        with pytest.raises(ValueError):
            SGDDirect([], lr=0.1)


class TestSchedules:
    def test_step_lr(self):
        schedule = step_lr(1.0, [10, 20], gamma=0.1)
        assert schedule(0) == 1.0
        assert schedule(10) == pytest.approx(0.1)
        assert schedule(25) == pytest.approx(0.01)

    def test_step_lr_unsorted_rejected(self):
        with pytest.raises(ValueError):
            step_lr(1.0, [20, 10])

    def test_cosine_endpoints(self):
        schedule = cosine_lr(1.0, 100)
        assert schedule(0) == pytest.approx(1.0)
        assert schedule(100) == pytest.approx(0.0, abs=1e-9)
        assert schedule(50) == pytest.approx(0.5)

    def test_cosine_min_lr(self):
        schedule = cosine_lr(1.0, 10, min_lr=0.1)
        assert schedule(10) == pytest.approx(0.1)

    def test_cosine_monotone_decreasing(self):
        schedule = cosine_lr(0.5, 30)
        values = [schedule(e) for e in range(31)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_validation(self):
        with pytest.raises(ValueError):
            cosine_lr(0.0, 10)
        with pytest.raises(ValueError):
            cosine_lr(1.0, 0)
        with pytest.raises(ValueError):
            step_lr(-1.0, [])


class TestTrainer:
    def test_loss_decreases_on_tiny_task(self):
        data = SynthCIFAR("train", size=100, seed=7, image_size=16)
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=0)
        config = TrainConfig(epochs=3, batch_size=25, lr=0.05, seed=0)
        trainer = Trainer(model, config)
        history = trainer.fit(data.images, data.labels)
        assert len(history) == 3
        assert history[-1]["loss"] < history[0]["loss"]

    def test_validation_accuracy_recorded(self):
        data = SynthCIFAR("train", size=60, seed=7, image_size=16)
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=0)
        config = TrainConfig(epochs=1, batch_size=30, lr=0.01, seed=0)
        trainer = Trainer(model, config)
        history = trainer.fit(
            data.images,
            data.labels,
            val_images=data.images[:20],
            val_labels=data.labels[:20],
        )
        assert "val_accuracy" in history[0]
        assert 0.0 <= history[0]["val_accuracy"] <= 1.0

    def test_lr_schedule_applied(self):
        data = SynthCIFAR("train", size=40, seed=7, image_size=16)
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=0)
        config = TrainConfig(
            epochs=2, batch_size=20, lr=1.0, seed=0, lr_schedule=step_lr(1.0, [1])
        )
        trainer = Trainer(model, config)
        history = trainer.fit(data.images, data.labels)
        assert history[0]["lr"] == 1.0
        assert history[1]["lr"] == pytest.approx(0.1)


class TestEvaluate:
    def test_perfect_classifier(self):
        class Oracle:
            def eval(self):
                return self

            def forward_fast(self, x):
                n = len(x)
                logits = np.zeros((n, 10), dtype=np.float32)
                logits[np.arange(n), self.answers[: n]] = 1.0
                self.answers = self.answers[n:]
                return logits

        labels = np.array([1, 2, 3, 4])
        oracle = Oracle()
        oracle.answers = labels.copy()
        accuracy = evaluate_accuracy(
            oracle, np.zeros((4, 3, 8, 8), dtype=np.float32), labels, batch_size=2
        )
        assert accuracy == 1.0
