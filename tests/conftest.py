"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.models import ResNetCIFAR, pretrained_path


@pytest.fixture(scope="session")
def tiny_model():
    """A very small (untrained) ResNet for structural/FI tests."""
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    model.eval()
    return model


@pytest.fixture(scope="session")
def tiny_eval_set():
    """A small evaluation set (16 images)."""
    data = SynthCIFAR("test", size=16, seed=99)
    return data.images, data.labels


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


def pretrained_available(name: str) -> bool:
    """Whether trained weights for *name* exist in the artifact cache."""
    return pretrained_path(name).is_file()


requires_pretrained_resnet = pytest.mark.skipif(
    not pretrained_available("resnet8_mini"),
    reason="trained resnet8_mini weights not generated yet "
    "(run examples/train_models.py)",
)
