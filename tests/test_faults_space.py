"""Tests for repro.faults: fault model, targets, fault space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    Fault,
    FaultModel,
    FaultSpace,
    STUCK_AT_MODELS,
    enumerate_weight_layers,
)
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR


@pytest.fixture(scope="module")
def space():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    return FaultSpace(model)


class TestFaultModel:
    def test_stuck_values(self):
        assert FaultModel.STUCK_AT_0.stuck_value == 0
        assert FaultModel.STUCK_AT_1.stuck_value == 1
        assert FaultModel.BIT_FLIP.stuck_value is None

    def test_canonical_pair(self):
        assert STUCK_AT_MODELS == (FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1)

    def test_fault_validation(self):
        with pytest.raises(ValueError):
            Fault(layer=-1, index=0, bit=0, model=FaultModel.STUCK_AT_0)
        with pytest.raises(ValueError):
            Fault(layer=0, index=-1, bit=0, model=FaultModel.STUCK_AT_0)
        with pytest.raises(ValueError):
            Fault(layer=0, index=0, bit=-1, model=FaultModel.STUCK_AT_0)

    def test_fault_ordering(self):
        a = Fault(layer=0, index=0, bit=0, model=FaultModel.STUCK_AT_0)
        b = Fault(layer=1, index=0, bit=0, model=FaultModel.STUCK_AT_0)
        assert a < b


class TestWeightLayers:
    def test_enumeration_order_and_indices(self, space):
        layers = space.layers
        assert [l.index for l in layers] == list(range(len(layers)))
        assert layers[0].module.in_channels == 3  # stem first
        assert layers[-1].name.endswith("fc")  # classifier last

    def test_flat_weights_share_memory(self, space):
        layer = space.layers[0]
        flat = layer.flat_weights()
        original = flat[0]
        flat[0] = 123.0
        assert layer.weight.data.reshape(-1)[0] == 123.0
        flat[0] = original

    def test_empty_model_rejected(self):
        from repro.nn import Module, ReLU, Sequential

        with pytest.raises(ValueError):
            enumerate_weight_layers(Sequential(ReLU()))


class TestPopulations:
    def test_population_arithmetic(self, space):
        weights = sum(l.size for l in space.layers)
        assert space.total_population == weights * 32 * 2
        assert space.cell_population(0) == space.layers[0].size * 2
        assert space.layer_population(0) == space.layers[0].size * 64

    def test_float16_population(self):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        space16 = FaultSpace(model, fmt=FLOAT16)
        weights = sum(l.size for l in space16.layers)
        assert space16.total_population == weights * 16 * 2

    def test_bitflip_population(self):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        flip_space = FaultSpace(model, fault_models=(FaultModel.BIT_FLIP,))
        weights = sum(l.size for l in flip_space.layers)
        assert flip_space.total_population == weights * 32

    def test_validation(self):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        with pytest.raises(ValueError):
            FaultSpace(model, fault_models=())


class TestIdMapping:
    def test_cell_fault_layout(self, space):
        f0 = space.cell_fault(0, 5, 0)
        assert (f0.layer, f0.index, f0.bit, f0.model) == (
            0, 0, 5, FaultModel.STUCK_AT_0,
        )
        f1 = space.cell_fault(0, 5, 1)
        assert f1.model is FaultModel.STUCK_AT_1
        f2 = space.cell_fault(0, 5, 2)
        assert f2.index == 1

    def test_layer_fault_layout(self, space):
        cell = space.cell_population(0)
        fault = space.layer_fault(0, cell * 3 + 7)
        assert fault.bit == 3
        assert fault.index == 3
        assert fault.model is FaultModel.STUCK_AT_1

    def test_range_validation(self, space):
        with pytest.raises(ValueError):
            space.cell_fault(0, 0, space.cell_population(0))
        with pytest.raises(ValueError):
            space.cell_fault(0, 32, 0)
        with pytest.raises(ValueError):
            space.layer_fault(0, space.layer_population(0))
        with pytest.raises(ValueError):
            space.network_fault(space.total_population)
        with pytest.raises(ValueError):
            space.network_fault(-1)

    @given(data=st.data())
    @settings(max_examples=200, deadline=None)
    def test_property_global_id_round_trip(self, data):
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
        space = FaultSpace(model)
        global_id = data.draw(
            st.integers(0, space.total_population - 1), label="global_id"
        )
        fault = space.network_fault(global_id)
        assert space.fault_global_id(fault) == global_id

    def test_iter_cell_count(self, space):
        faults = list(space.iter_cell(0, 31))
        assert len(faults) == space.cell_population(0)
        assert all(f.bit == 31 and f.layer == 0 for f in faults)

    def test_iter_layer_covers_all_bits(self, space):
        bits = {f.bit for f in space.iter_layer(1)}
        assert bits == set(range(32))

    def test_iter_all_matches_population_on_small_layer(self, space):
        last = len(space.layers) - 1
        count = sum(1 for _ in space.iter_layer(last))
        assert count == space.layer_population(last)
