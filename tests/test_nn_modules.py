"""Tests for repro.nn: module registry, layers, state dicts, fast paths."""

import numpy as np
import pytest

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    Module,
    ReLU,
    ReLU6,
    Sequential,
    load_state,
    save_state,
)
from repro.tensor import Tensor

rng = np.random.default_rng(5)


def small_net(seed: int = 0) -> Sequential:
    gen = np.random.default_rng(seed)
    return Sequential(
        Conv2d(3, 4, 3, padding=1, rng=gen),
        BatchNorm2d(4),
        ReLU(),
        GlobalAvgPool2d(),
        Linear(4, 10, rng=gen),
    )


class TestRegistry:
    def test_named_parameters(self):
        net = small_net()
        names = [name for name, _ in net.named_parameters()]
        assert "0.weight" in names
        assert "1.weight" in names and "1.bias" in names
        assert "4.weight" in names and "4.bias" in names

    def test_named_buffers(self):
        net = small_net()
        names = [name for name, _ in net.named_buffers()]
        assert "1.running_mean" in names and "1.running_var" in names

    def test_modules_iteration(self):
        net = small_net()
        kinds = [type(m).__name__ for m in net.modules()]
        assert "Conv2d" in kinds and "Linear" in kinds

    def test_train_eval_recursive(self):
        net = small_net()
        net.eval()
        assert all(not m.training for m in net.modules())
        net.train()
        assert all(m.training for m in net.modules())

    def test_zero_grad(self):
        net = small_net()
        for p in net.parameters():
            p.grad = np.zeros_like(p.data)
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())


class TestStateDict:
    def test_round_trip(self):
        net1 = small_net(seed=1)
        net2 = small_net(seed=2)
        net2.load_state_dict(net1.state_dict())
        for (n1, p1), (n2, p2) in zip(
            net1.named_parameters(), net2.named_parameters()
        ):
            assert n1 == n2
            np.testing.assert_array_equal(p1.data, p2.data)

    def test_missing_key_rejected(self):
        net = small_net()
        state = net.state_dict()
        state.pop("0.weight")
        with pytest.raises(KeyError, match="mismatch"):
            net.load_state_dict(state)

    def test_extra_key_rejected(self):
        net = small_net()
        state = net.state_dict()
        state["bogus"] = np.zeros(1)
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_shape_mismatch_rejected(self):
        net = small_net()
        state = net.state_dict()
        state["0.weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(ValueError, match="shape"):
            net.load_state_dict(state)

    def test_buffers_round_trip(self):
        net1 = small_net()
        net1.train()
        net1(Tensor(rng.normal(size=(4, 3, 8, 8)).astype(np.float32)))
        net2 = small_net(seed=9)
        net2.load_state_dict(net1.state_dict())
        bn1 = net1[1]
        bn2 = net2[1]
        np.testing.assert_array_equal(bn1.running_mean, bn2.running_mean)

    def test_save_load_npz(self, tmp_path):
        net1 = small_net(seed=3)
        path = tmp_path / "weights.npz"
        save_state(net1, path)
        net2 = small_net(seed=4)
        load_state(net2, path)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        net1.eval()
        net2.eval()
        np.testing.assert_allclose(net1.forward_fast(x), net2.forward_fast(x))


class TestForwardFastConsistency:
    """forward_fast (inference kernels) must match the autograd forward."""

    @pytest.mark.parametrize(
        "layer,shape",
        [
            (Conv2d(3, 5, 3, padding=1, rng=np.random.default_rng(0)), (2, 3, 8, 8)),
            (
                Conv2d(3, 6, 3, stride=2, padding=1, rng=np.random.default_rng(0)),
                (2, 3, 8, 8),
            ),
            (
                Conv2d(4, 4, 3, padding=1, groups=4, rng=np.random.default_rng(0)),
                (2, 4, 8, 8),
            ),
            (Conv2d(4, 8, 1, rng=np.random.default_rng(0)), (2, 4, 8, 8)),
            (
                Conv2d(4, 8, 1, bias=True, rng=np.random.default_rng(0)),
                (2, 4, 8, 8),
            ),
            (Linear(6, 4, rng=np.random.default_rng(0)), (3, 6)),
            (ReLU(), (2, 5)),
            (ReLU6(), (2, 5)),
            (AvgPool2d(2), (2, 3, 8, 8)),
            (GlobalAvgPool2d(), (2, 3, 8, 8)),
            (Flatten(), (2, 3, 4, 4)),
        ],
    )
    def test_layer_consistency(self, layer, shape):
        layer.eval()
        x = rng.normal(size=shape).astype(np.float32)
        slow = layer(Tensor(x)).data
        fast = layer.forward_fast(x)
        np.testing.assert_allclose(fast, slow, rtol=1e-5, atol=1e-6)

    def test_batchnorm_eval_consistency(self):
        bn = BatchNorm2d(4)
        bn.running_mean[...] = rng.normal(size=4)
        bn.running_var[...] = np.abs(rng.normal(size=4)) + 0.5
        bn.eval()
        x = rng.normal(size=(2, 4, 5, 5)).astype(np.float32)
        np.testing.assert_allclose(
            bn.forward_fast(x), bn(Tensor(x)).data, rtol=1e-4, atol=1e-5
        )


class TestLayerValidation:
    def test_conv_group_divisibility(self):
        with pytest.raises(ValueError):
            Conv2d(3, 4, 3, groups=2)

    def test_sequential_indexing(self):
        net = small_net()
        assert isinstance(net[0], Conv2d)
        assert len(net) == 5
        assert isinstance(list(net)[-1], Linear)

    def test_module_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module().forward(Tensor(np.zeros(1)))
        with pytest.raises(NotImplementedError):
            Module().forward_fast(np.zeros(1))
