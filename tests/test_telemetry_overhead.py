"""Disabled telemetry must be free.

The acceptance bar for the observability work: with telemetry disabled
(the default ``NullTelemetry``), the instrumented hot path costs < 2%
over a hand-inlined loop with no telemetry code at all.  Timings take
the min over alternating repeats so scheduler noise on a loaded
single-core box cannot produce a false failure.
"""

from __future__ import annotations

import time

from repro.data import SynthCIFAR
from repro.faults import FaultSpace, InferenceEngine
from repro.faults.engine import classify_predictions
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR

REPEATS = 5
MAX_OVERHEAD = 0.02


def _setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    faults = list(space.iter_layer(0))[:192]
    return engine, faults


def _baseline_classify_many(engine, faults):
    """The pre-telemetry hot loop, inlined with zero telemetry code."""
    outcomes = []
    for fault in faults:
        if engine.injector.is_masked(fault):
            outcomes.append(0)
            continue
        predictions = engine._predictions_with_fault(fault)
        outcomes.append(
            classify_predictions(
                predictions,
                engine.golden_predictions,
                engine.labels,
                policy=engine.policy,
                threshold=engine.threshold,
            )
        )
    return outcomes


def test_null_telemetry_overhead_under_two_percent():
    engine, faults = _setup()
    assert engine.telemetry.enabled is False  # the shipped default

    # Warm both paths (allocations, caches) before timing.
    _baseline_classify_many(engine, faults)
    engine.classify_many(faults)

    baseline_times = []
    shipped_times = []
    for _ in range(REPEATS):  # alternate so drift hits both paths alike
        start = time.perf_counter()
        _baseline_classify_many(engine, faults)
        baseline_times.append(time.perf_counter() - start)

        start = time.perf_counter()
        engine.classify_many(faults)
        shipped_times.append(time.perf_counter() - start)

    baseline = min(baseline_times)
    shipped = min(shipped_times)
    overhead = (shipped - baseline) / baseline
    assert overhead < MAX_OVERHEAD, (
        f"NullTelemetry path is {overhead:.2%} slower than the bare loop "
        f"(shipped {shipped:.4f}s vs baseline {baseline:.4f}s)"
    )
