"""Tests for repro.sfi.twostage."""

import numpy as np
import pytest

from repro.faults import FaultOutcome, FaultSpace, OutcomeTable, TableOracle
from repro.models import ResNetCIFAR
from repro.sfi import (
    CampaignRunner,
    DataUnawareSFI,
    Granularity,
    LayerWiseSFI,
    NetworkWiseSFI,
    TwoStageSFI,
    merge_results,
)


@pytest.fixture(scope="module")
def setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    space = FaultSpace(model)
    outcomes = []
    for layer in space.layers:
        arr = np.full(
            (layer.size, space.bits, 2), FaultOutcome.NON_CRITICAL, dtype=np.uint8
        )
        arr[:, 30, 1] = FaultOutcome.CRITICAL
        outcomes.append(arr)
    table = OutcomeTable(outcomes)
    return space, table, TableOracle(table, space)


class TestMergeResults:
    def test_tallies_add(self, setup):
        space, _, oracle = setup
        runner = CampaignRunner(oracle, space)
        plan = LayerWiseSFI(error_margin=0.05).plan(space)
        a = runner.run(plan, seed=0)
        b = runner.run(plan, seed=1)
        merged = merge_results(a, b, method="merged")
        assert merged.total_injections == a.total_injections + b.total_injections
        assert merged.total_criticals == a.total_criticals + b.total_criticals
        assert merged.method == "merged"

    def test_rejects_mixed_granularity(self, setup):
        space, _, oracle = setup
        runner = CampaignRunner(oracle, space)
        a = runner.run(LayerWiseSFI(error_margin=0.05).plan(space), seed=0)
        b = runner.run(NetworkWiseSFI(error_margin=0.05).plan(space), seed=0)
        with pytest.raises(ValueError, match="granularity"):
            merge_results(a, b, method="merged")


class TestTwoStagePlanning:
    def test_pilot_covers_every_cell(self, setup):
        space, _, _ = setup
        planner = TwoStageSFI(pilot_per_cell=10)
        pilot = planner.plan_pilot(space)
        assert len(pilot.items) == len(space.layers) * space.bits
        assert all(
            0 < i.sample_size <= min(10, i.subpopulation.population)
            for i in pilot.items
        )

    def test_measured_priors_reflect_pilot(self, setup):
        space, _, oracle = setup
        planner = TwoStageSFI(pilot_per_cell=40)
        runner = CampaignRunner(oracle, space)
        pilot = runner.run(planner.plan_pilot(space), seed=0)
        priors = planner.measured_priors(space, pilot)
        # Bit 30 cells contain all criticals -> clearly elevated prior.
        assert priors[(0, 30)] > priors[(0, 5)]
        # Unseen-critical cells get the Laplace floor, never exactly 0.
        assert priors[(0, 5)] > 0.0
        # And priors are capped at the variance maximum.
        assert all(p <= 0.5 for p in priors.values())

    def test_main_plan_credits_pilot(self, setup):
        space, _, oracle = setup
        planner = TwoStageSFI(pilot_per_cell=30)
        runner = CampaignRunner(oracle, space)
        pilot = runner.run(planner.plan_pilot(space), seed=0)
        main = planner.plan_main(space, pilot)
        for item in main.items:
            key = (item.subpopulation.layer, item.subpopulation.bit)
            already = pilot.cell_tallies.get(key, (0, 0, 0))[0]
            assert item.sample_size + already <= item.subpopulation.population

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoStageSFI(error_margin=0.0)
        with pytest.raises(ValueError):
            TwoStageSFI(pilot_per_cell=0)
        with pytest.raises(ValueError):
            TwoStageSFI(p_cap=0.6)


class TestTwoStageEndToEnd:
    def test_run_produces_valid_estimates(self, setup):
        space, table, oracle = setup
        result = TwoStageSFI(pilot_per_cell=20).run(oracle, space, seed=3)
        assert result.method == "two-stage"
        assert result.granularity is Granularity.BIT_LAYER
        true_rate = table.total_rate()
        net = result.network_estimate()
        assert net.p_hat == pytest.approx(true_rate, abs=0.01)

    def test_cheaper_than_data_unaware(self, setup):
        space, _, oracle = setup
        two_stage = TwoStageSFI(pilot_per_cell=20).run(oracle, space, seed=0)
        unaware_plan = DataUnawareSFI().plan(space)
        assert two_stage.total_injections < unaware_plan.total_injections

    def test_deterministic_per_seed(self, setup):
        space, _, oracle = setup
        a = TwoStageSFI(pilot_per_cell=15).run(oracle, space, seed=9)
        b = TwoStageSFI(pilot_per_cell=15).run(oracle, space, seed=9)
        assert a.cell_tallies == b.cell_tallies

    def test_concentrates_samples_on_critical_bits(self, setup):
        space, _, oracle = setup
        result = TwoStageSFI(pilot_per_cell=25).run(oracle, space, seed=0)
        # All criticals live on bit 30; its cells should end up with more
        # injections than an equally-sized silent bit's cells.
        bit30 = sum(
            t[0] for (l, b), t in result.cell_tallies.items() if b == 30
        )
        bit5 = sum(
            t[0] for (l, b), t in result.cell_tallies.items() if b == 5
        )
        assert bit30 > bit5
