"""Tests for repro.sfi.granularity."""

import pytest

from repro.faults import FaultSpace
from repro.models import ResNetCIFAR
from repro.sfi import (
    Granularity,
    cell_subpopulations,
    layer_subpopulations,
    network_subpopulation,
)


@pytest.fixture(scope="module")
def space():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    return FaultSpace(model)


class TestPartitioning:
    def test_network_covers_everything(self, space):
        subpop = network_subpopulation(space)
        assert subpop.population == space.total_population
        assert subpop.granularity is Granularity.NETWORK
        assert subpop.layer is None and subpop.bit is None

    def test_layers_partition_population(self, space):
        subpops = layer_subpopulations(space)
        assert len(subpops) == len(space.layers)
        assert sum(s.population for s in subpops) == space.total_population

    def test_cells_partition_population(self, space):
        subpops = cell_subpopulations(space)
        assert len(subpops) == len(space.layers) * 32
        assert sum(s.population for s in subpops) == space.total_population

    def test_cell_keys_unique(self, space):
        subpops = cell_subpopulations(space)
        keys = {s.key for s in subpops}
        assert len(keys) == len(subpops)

    def test_fault_decoding_respects_stratum(self, space):
        cell = cell_subpopulations(space)[40]  # layer 1, bit 8
        assert cell.layer == 1 and cell.bit == 8
        fault = cell.fault(5)
        assert fault.layer == 1 and fault.bit == 8

    def test_layer_fault_decoding(self, space):
        layer_pop = layer_subpopulations(space)[2]
        fault = layer_pop.fault(layer_pop.population - 1)
        assert fault.layer == 2
        assert fault.bit == 31

    def test_network_fault_decoding(self, space):
        net = network_subpopulation(space)
        fault = net.fault(net.population - 1)
        assert fault.layer == len(space.layers) - 1
