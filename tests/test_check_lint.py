"""Determinism linter: rule units, suppression, baseline, and the
self-audit that src/repro itself lints clean with no baseline debt."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.check import (
    LINT_RULES,
    lint_paths,
    lint_source,
    load_baseline,
    new_findings,
    rule_catalog,
    save_baseline,
)

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src" / "repro"


def findings_for(code: str):
    return lint_source(textwrap.dedent(code), Path("snippet.py"))


def rules_of(findings) -> set[str]:
    return {f.rule for f in findings}


class TestUnseededRandomness:
    def test_np_random_legacy_call_flagged(self):
        assert "D201" in rules_of(
            findings_for(
                """
                import numpy as np
                x = np.random.rand(3)
                """
            )
        )

    def test_bare_default_rng_flagged_seeded_is_not(self):
        bad = findings_for("import numpy as np\nr = np.random.default_rng()\n")
        good = findings_for("import numpy as np\nr = np.random.default_rng(7)\n")
        assert "D201" in rules_of(bad)
        assert "D201" not in rules_of(good)

    def test_stdlib_random_import_flagged(self):
        assert "D201" in rules_of(findings_for("import random\n"))

    def test_generator_methods_are_fine(self):
        code = """
        import numpy as np
        rng = np.random.default_rng(0)
        rng.shuffle([1, 2, 3])
        """
        assert "D201" not in rules_of(findings_for(code))


class TestSetIterationOrder:
    def test_for_over_set_literal_flagged(self):
        assert "D202" in rules_of(
            findings_for("for x in {1, 2, 3}:\n    print(x)\n")
        )

    def test_sorted_wrapper_is_order_safe(self):
        assert "D202" not in rules_of(
            findings_for("for x in sorted({1, 2, 3}):\n    print(x)\n")
        )

    def test_list_of_set_flagged(self):
        assert "D202" in rules_of(findings_for("xs = list({1, 2, 3})\n"))

    def test_set_comprehension_result_is_unordered_anyway(self):
        assert "D202" not in rules_of(
            findings_for("ys = {x for x in {1, 2, 3}}\n")
        )


class TestWallClock:
    def test_clock_near_serialization_flagged(self):
        code = """
        import json
        import time

        def stamp(payload, fh):
            payload["at"] = time.time()
            json.dump(payload, fh, sort_keys=True)
        """
        assert "D203" in rules_of(findings_for(code))

    def test_clock_without_sink_is_fine(self):
        code = """
        import time

        def elapsed(start):
            return time.time() - start
        """
        assert "D203" not in rules_of(findings_for(code))

    def test_clock_in_sibling_function_is_fine(self):
        code = """
        import json
        import time

        def now():
            return time.time()

        def save(payload, fh):
            json.dump(payload, fh, sort_keys=True)
        """
        assert "D203" not in rules_of(findings_for(code))


class TestDirectWrites:
    def test_open_for_write_flagged(self):
        assert "D204" in rules_of(
            findings_for('fh = open("out.txt", "w")\n')
        )

    def test_open_for_read_is_fine(self):
        assert "D204" not in rules_of(findings_for('fh = open("in.txt")\n'))

    def test_path_write_text_flagged(self):
        code = 'from pathlib import Path\nPath("o.txt").write_text("hi")\n'
        assert "D204" in rules_of(findings_for(code))

    def test_numpy_save_to_path_flagged_buffer_is_fine(self):
        bad = 'import numpy as np\nnp.savez("o.npz", a=1)\n'
        good = (
            "import io\nimport numpy as np\n"
            "buf = io.BytesIO()\nnp.savez(buf, a=1)\n"
        )
        assert "D204" in rules_of(findings_for(bad))
        assert "D204" not in rules_of(findings_for(good))


class TestJsonKeyOrder:
    def test_dumps_without_sort_keys_flagged(self):
        assert "D205" in rules_of(
            findings_for('import json\ns = json.dumps({"b": 1, "a": 2})\n')
        )

    def test_dumps_with_sort_keys_is_fine(self):
        assert "D205" not in rules_of(
            findings_for("import json\ns = json.dumps({}, sort_keys=True)\n")
        )


class TestFilesystemListing:
    def test_unsorted_glob_iteration_flagged(self):
        code = (
            "from pathlib import Path\n"
            'for p in Path(".").glob("*.json"):\n    print(p)\n'
        )
        assert "D206" in rules_of(findings_for(code))

    def test_sorted_glob_is_fine(self):
        code = (
            "from pathlib import Path\n"
            'for p in sorted(Path(".").glob("*.json")):\n    print(p)\n'
        )
        assert "D206" not in rules_of(findings_for(code))


class TestSuppression:
    def test_matching_ignore_comment_suppresses(self):
        code = (
            "import json\n"
            "s = json.dumps({})  # repro-check: ignore[D205]\n"
        )
        assert findings_for(code) == []

    def test_ignore_for_a_different_rule_does_not_suppress(self):
        code = (
            "import json\n"
            "s = json.dumps({})  # repro-check: ignore[D201]\n"
        )
        assert "D205" in rules_of(findings_for(code))


class TestBaseline:
    def test_round_trip_and_new_finding_detection(self, tmp_path):
        source = tmp_path / "mod.py"
        source.write_text("import json\ns = json.dumps({})\n")
        findings = lint_paths([source])
        assert rules_of(findings) == {"D205"}

        baseline_path = tmp_path / "baseline.json"
        save_baseline(baseline_path, findings, root=tmp_path)
        baseline = load_baseline(baseline_path)
        assert new_findings(findings, baseline, root=tmp_path) == []

        source.write_text(
            "import json\ns = json.dumps({})\nt = json.dumps([])\n"
        )
        grown = lint_paths([source])
        fresh = new_findings(grown, baseline, root=tmp_path)
        assert len(fresh) == 1
        assert fresh[0].rule == "D205"


class TestSelfAudit:
    def test_src_repro_lints_clean(self):
        assert lint_paths([SRC]) == []

    def test_committed_baseline_is_empty(self):
        baseline = load_baseline(REPO / "check-baseline.json")
        assert sum(baseline.values()) == 0

    def test_runtime_package_has_zero_suppressions(self):
        hits = [
            path
            for path in sorted((SRC / "runtime").rglob("*.py"))
            if "repro-check: ignore" in path.read_text()
        ]
        assert hits == []

    def test_catalog_documents_every_rule(self):
        catalog = rule_catalog()
        assert set(LINT_RULES) <= set(catalog)
