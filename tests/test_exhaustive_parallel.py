"""Parallel and resumable exhaustive campaigns.

The unit of work is one (layer, bit) cell; these tests pin down the two
engineering guarantees the campaign engine makes:

- fan-out over a process pool changes nothing about the result, and
- a campaign killed mid-run resumes from its checkpoint to a table
  bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import FaultSpace, InferenceEngine, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR


@pytest.fixture(scope="module")
def campaign_setup():
    """A tiny model + eval set + float16 space (fast exhaustive runs)."""
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


@pytest.fixture(scope="module")
def serial_table(campaign_setup):
    engine, space = campaign_setup
    return OutcomeTable.from_exhaustive(engine, space, workers=1)


def assert_tables_identical(a: OutcomeTable, b: OutcomeTable) -> None:
    assert a.num_layers == b.num_layers
    for left, right in zip(a.outcomes, b.outcomes):
        assert left.dtype == right.dtype == np.uint8
        assert np.array_equal(left, right)


class TestParallelExhaustive:
    def test_parallel_matches_serial_bit_for_bit(
        self, campaign_setup, serial_table
    ):
        engine, space = campaign_setup
        parallel = OutcomeTable.from_exhaustive(engine, space, workers=2)
        assert_tables_identical(serial_table, parallel)
        assert parallel.metadata["inference_count"] == (
            serial_table.metadata["inference_count"]
        )

    def test_progress_reaches_total(self, campaign_setup):
        engine, space = campaign_setup
        calls = []
        OutcomeTable.from_exhaustive(
            engine,
            space,
            workers=2,
            progress=lambda done, total: calls.append((done, total)),
            progress_every=1,
        )
        assert calls, "progress callback never fired"
        dones = [done for done, _ in calls]
        assert dones == sorted(dones)
        assert calls[-1] == (space.total_population, space.total_population)

    @pytest.mark.skipif(
        (os.cpu_count() or 1) < 2,
        reason="speedup is only observable with >= 2 cores",
    )
    def test_parallel_is_faster_on_multicore(self, campaign_setup):
        import time

        engine, space = campaign_setup
        start = time.perf_counter()
        OutcomeTable.from_exhaustive(engine, space, workers=1)
        serial_elapsed = time.perf_counter() - start
        start = time.perf_counter()
        OutcomeTable.from_exhaustive(engine, space, workers=os.cpu_count())
        parallel_elapsed = time.perf_counter() - start
        assert parallel_elapsed < serial_elapsed / 1.5


class _KillAfter:
    """Progress callback that simulates a crash after *n* reports."""

    def __init__(self, n: int) -> None:
        self.remaining = n

    def __call__(self, done: int, total: int) -> None:
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt("simulated kill")


class TestCheckpointResume:
    def test_kill_and_resume_is_bit_identical(
        self, campaign_setup, serial_table, tmp_path
    ):
        engine, space = campaign_setup
        checkpoint = tmp_path / "campaign.ckpt"
        with pytest.raises(KeyboardInterrupt):
            OutcomeTable.from_exhaustive(
                engine,
                space,
                checkpoint=checkpoint,
                progress=_KillAfter(3),
                progress_every=1,
            )
        persisted = {p.stem for p in checkpoint.glob("*.npy")}
        assert persisted, "kill happened before any chunk was persisted"
        total_cells = len(space.layers) * space.bits
        assert len(persisted) < total_cells, "campaign finished before kill"

        calls = []
        resumed = OutcomeTable.from_exhaustive(
            engine,
            space,
            checkpoint=checkpoint,
            progress=lambda done, total: calls.append(done),
            progress_every=1,
        )
        assert_tables_identical(serial_table, resumed)
        # The resumed run skipped the persisted cells: its first progress
        # report already covers their population.
        cell_pop = space.layers[0].size * len(space.fault_models)
        assert calls[0] >= len(persisted) * cell_pop

    def test_checkpointed_run_matches_plain_run(
        self, campaign_setup, serial_table, tmp_path
    ):
        engine, space = campaign_setup
        table = OutcomeTable.from_exhaustive(
            engine, space, checkpoint=tmp_path / "clean.ckpt"
        )
        assert_tables_identical(serial_table, table)

    def test_stale_checkpoint_from_other_config_is_discarded(
        self, campaign_setup, tmp_path
    ):
        engine, space = campaign_setup
        checkpoint = tmp_path / "campaign.ckpt"
        with pytest.raises(KeyboardInterrupt):
            OutcomeTable.from_exhaustive(
                engine,
                space,
                checkpoint=checkpoint,
                progress=_KillAfter(2),
                progress_every=1,
            )
        # Same checkpoint path, different policy: chunks must not be reused.
        other_engine = InferenceEngine(
            engine.model,
            engine.images,
            engine.labels,
            fmt=space.fmt,
            policy="any_mismatch",
        )
        other_space = FaultSpace(other_engine.layers, fmt=space.fmt)
        table = OutcomeTable.from_exhaustive(
            other_engine, other_space, checkpoint=checkpoint
        )
        expected = OutcomeTable.from_exhaustive(other_engine, other_space)
        assert_tables_identical(expected, table)
