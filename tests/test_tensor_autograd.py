"""Numeric gradient checks for every autograd op."""

import numpy as np
import pytest

from repro.tensor import Tensor, no_grad, ops
from tests.helpers import check_gradient

rng = np.random.default_rng(42)


class TestTensorBasics:
    def test_scalar_backward(self):
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = ops.add(x, x)
        y.backward(np.array([1.0], dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0])

    def test_backward_requires_scalar_without_grad(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(ValueError, match="scalar"):
            ops.relu(x).backward()

    def test_grad_accumulates(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        for _ in range(3):
            loss = ops.cross_entropy(
                ops.linear(
                    Tensor(np.ones((1, 1))), Tensor(np.ones((2, 1))), None
                ),
                np.array([0]),
            )
        y = ops.add(x, x)
        y.backward(np.ones(1, dtype=np.float32))
        y2 = ops.add(x, x)
        y2.backward(np.ones(1, dtype=np.float32))
        np.testing.assert_allclose(x.grad, [4.0])

    def test_no_grad_blocks_graph(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            y = ops.add(x, x)
        assert y._parents == ()
        y2 = ops.add(x, x)
        assert y2._parents != ()

    def test_detach(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        d = x.detach()
        assert not d.requires_grad
        assert d.data is x.data

    def test_diamond_graph_gradients(self):
        # y = relu(x) + relu(x): grad should be 2 where x > 0.
        x = Tensor(np.array([1.0, -1.0]), requires_grad=True)
        y = ops.add(ops.relu(x), ops.relu(x))
        y.backward(np.ones(2, dtype=np.float32))
        np.testing.assert_allclose(x.grad, [2.0, 0.0])

    def test_float32_coercion(self):
        x = Tensor(np.ones(3, dtype=np.float64))
        assert x.dtype == np.float32

    def test_item_and_repr(self):
        x = Tensor(np.array([2.5]), requires_grad=True, name="w")
        assert x.item() == 2.5
        assert "w" in repr(x)
        with pytest.raises(ValueError):
            Tensor(np.ones(3)).item()


class TestGradients:
    def test_add_broadcast(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(ops.add(t["a"], t["b"]), (2, 6)), np.array([0, 3])
            ),
            {
                "a": rng.normal(size=(2, 6)).astype(np.float32),
                "b": rng.normal(size=(6,)).astype(np.float32),
            },
        )

    def test_relu(self):
        check_gradient(
            lambda t: ops.cross_entropy(ops.relu(t["x"]), np.array([1, 2])),
            {"x": rng.normal(size=(2, 4)).astype(np.float32) + 0.1},
        )

    def test_relu6(self):
        x = rng.normal(size=(2, 4)).astype(np.float32) * 4
        # Keep values away from the kinks at 0 and 6.
        x = np.where(np.abs(x) < 0.2, 0.5, x)
        x = np.where(np.abs(x - 6) < 0.2, 5.0, x)
        check_gradient(
            lambda t: ops.cross_entropy(ops.relu6(t["x"]), np.array([1, 2])),
            {"x": x},
        )

    def test_linear(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.linear(t["x"], t["w"], t["b"]), np.array([0, 2])
            ),
            {
                "x": rng.normal(size=(2, 5)).astype(np.float32),
                "w": rng.normal(size=(3, 5)).astype(np.float32),
                "b": rng.normal(size=(3,)).astype(np.float32),
            },
        )

    def test_conv2d_basic(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(
                    ops.conv2d(t["x"], t["w"], t["b"], stride=1, padding=1),
                    (1, -1),
                ),
                np.array([5]),
            ),
            {
                "x": rng.normal(size=(1, 2, 4, 4)).astype(np.float32),
                "w": rng.normal(size=(2, 2, 3, 3)).astype(np.float32) * 0.5,
                "b": rng.normal(size=(2,)).astype(np.float32),
            },
        )

    def test_conv2d_strided(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(
                    ops.conv2d(t["x"], t["w"], None, stride=2, padding=1),
                    (1, -1),
                ),
                np.array([3]),
            ),
            {
                "x": rng.normal(size=(1, 2, 6, 6)).astype(np.float32),
                "w": rng.normal(size=(2, 2, 3, 3)).astype(np.float32) * 0.5,
            },
        )

    def test_conv2d_grouped(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(
                    ops.conv2d(t["x"], t["w"], None, stride=1, padding=1, groups=2),
                    (1, -1),
                ),
                np.array([1]),
            ),
            {
                "x": rng.normal(size=(1, 4, 3, 3)).astype(np.float32),
                "w": rng.normal(size=(4, 2, 3, 3)).astype(np.float32) * 0.5,
            },
        )

    def test_conv2d_depthwise(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(
                    ops.conv2d(t["x"], t["w"], None, stride=1, padding=1, groups=3),
                    (1, -1),
                ),
                np.array([2]),
            ),
            {
                "x": rng.normal(size=(1, 3, 3, 3)).astype(np.float32),
                "w": rng.normal(size=(3, 1, 3, 3)).astype(np.float32) * 0.5,
            },
        )

    def test_batchnorm_training(self):
        def loss(t):
            out = ops.batchnorm2d(
                t["x"],
                t["gamma"],
                t["beta"],
                np.zeros(2, dtype=np.float32),
                np.ones(2, dtype=np.float32),
                training=True,
            )
            return ops.cross_entropy(ops.reshape(out, (2, -1)), np.array([0, 5]))

        check_gradient(
            loss,
            {
                "x": rng.normal(size=(2, 2, 2, 2)).astype(np.float32),
                "gamma": np.array([1.2, 0.8], dtype=np.float32),
                "beta": np.array([0.1, -0.2], dtype=np.float32),
            },
            atol=5e-2,
        )

    def test_batchnorm_eval(self):
        running_mean = np.array([0.3, -0.1], dtype=np.float32)
        running_var = np.array([1.5, 0.7], dtype=np.float32)

        def loss(t):
            out = ops.batchnorm2d(
                t["x"],
                t["gamma"],
                t["beta"],
                running_mean.copy(),
                running_var.copy(),
                training=False,
            )
            return ops.cross_entropy(ops.reshape(out, (2, -1)), np.array([0, 5]))

        check_gradient(
            loss,
            {
                "x": rng.normal(size=(2, 2, 2, 2)).astype(np.float32),
                "gamma": np.array([1.2, 0.8], dtype=np.float32),
                "beta": np.array([0.1, -0.2], dtype=np.float32),
            },
        )

    def test_avg_pool(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(ops.avg_pool2d(t["x"], 2), (1, -1)), np.array([1])
            ),
            {"x": rng.normal(size=(1, 2, 4, 4)).astype(np.float32)},
        )

    def test_global_avg_pool(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.global_avg_pool2d(t["x"]), np.array([1])
            ),
            {"x": rng.normal(size=(1, 3, 4, 4)).astype(np.float32)},
        )

    def test_subsample(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(ops.subsample2d(t["x"], 2), (1, -1)), np.array([2])
            ),
            {"x": rng.normal(size=(1, 2, 4, 4)).astype(np.float32)},
        )

    def test_pad_channels(self):
        check_gradient(
            lambda t: ops.cross_entropy(
                ops.reshape(ops.pad_channels(t["x"], 1, 1), (1, -1)),
                np.array([0]),
            ),
            {"x": rng.normal(size=(1, 2, 2, 2)).astype(np.float32)},
        )

    def test_cross_entropy_gradient(self):
        check_gradient(
            lambda t: ops.cross_entropy(t["logits"], np.array([0, 1, 2])),
            {"logits": rng.normal(size=(3, 4)).astype(np.float32)},
        )

    def test_cross_entropy_validation(self):
        logits = Tensor(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            ops.cross_entropy(logits, np.array([0]))
        with pytest.raises(ValueError):
            ops.cross_entropy(logits, np.array([0, 3]))


class TestOpSemantics:
    def test_batchnorm_updates_running_stats_in_training(self):
        running_mean = np.zeros(2, dtype=np.float32)
        running_var = np.ones(2, dtype=np.float32)
        x = Tensor(rng.normal(2.0, 1.0, size=(8, 2, 4, 4)).astype(np.float32))
        ops.batchnorm2d(
            x,
            Tensor(np.ones(2, dtype=np.float32)),
            Tensor(np.zeros(2, dtype=np.float32)),
            running_mean,
            running_var,
            training=True,
        )
        assert running_mean[0] != 0.0

    def test_batchnorm_eval_keeps_running_stats(self):
        running_mean = np.zeros(2, dtype=np.float32)
        running_var = np.ones(2, dtype=np.float32)
        x = Tensor(rng.normal(size=(4, 2, 3, 3)).astype(np.float32))
        ops.batchnorm2d(
            x,
            Tensor(np.ones(2, dtype=np.float32)),
            Tensor(np.zeros(2, dtype=np.float32)),
            running_mean,
            running_var,
            training=False,
        )
        np.testing.assert_array_equal(running_mean, 0.0)

    def test_relu6_clips(self):
        x = Tensor(np.array([-1.0, 3.0, 8.0]))
        np.testing.assert_allclose(ops.relu6(x).data, [0.0, 3.0, 6.0])

    def test_conv_shape_validation(self):
        x = Tensor(np.zeros((1, 4, 4, 4)))
        w = Tensor(np.zeros((4, 3, 3, 3)))
        with pytest.raises(ValueError):
            ops.conv2d(x, w)

    def test_avg_pool_divisibility(self):
        with pytest.raises(ValueError):
            ops.avg_pool2d(Tensor(np.zeros((1, 1, 5, 5))), 2)
