"""Tests for repro.analysis.reports."""

import csv
import json

import numpy as np
import pytest

from repro.analysis import (
    campaign_to_dict,
    validation_to_dict,
    write_comparison_csv,
    write_json,
    write_layer_csv,
)
from repro.faults import FaultOutcome, FaultSpace, OutcomeTable, TableOracle
from repro.models import ResNetCIFAR
from repro.sfi import (
    CampaignRunner,
    LayerWiseSFI,
    NetworkWiseSFI,
    validate_campaign,
)
from repro.sfi.validation import MethodComparison


@pytest.fixture(scope="module")
def setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    space = FaultSpace(model)
    outcomes = []
    for layer in space.layers:
        arr = np.full(
            (layer.size, space.bits, 2), FaultOutcome.NON_CRITICAL, dtype=np.uint8
        )
        arr[:, 30, 1] = FaultOutcome.CRITICAL
        outcomes.append(arr)
    table = OutcomeTable(outcomes)
    runner = CampaignRunner(TableOracle(table, space), space)
    result = runner.run(LayerWiseSFI().plan(space), seed=0)
    report = validate_campaign(result, table)
    return space, table, result, report


class TestCampaignToDict:
    def test_round_trips_through_json(self, setup):
        _, _, result, _ = setup
        data = campaign_to_dict(result)
        encoded = json.dumps(data)
        decoded = json.loads(encoded)
        assert decoded["method"] == "layer-wise"
        assert decoded["total_injections"] == result.total_injections

    def test_layers_cover_model(self, setup):
        space, _, result, _ = setup
        data = campaign_to_dict(result)
        assert len(data["layers"]) == len(space.layers)
        assert all("p_hat" in row for row in data["layers"])

    def test_cells_sum_to_total(self, setup):
        _, _, result, _ = setup
        data = campaign_to_dict(result)
        assert (
            sum(cell["injections"] for cell in data["cells"])
            == result.total_injections
        )


class TestValidationToDict:
    def test_fields(self, setup):
        _, _, _, report = setup
        data = validation_to_dict(report)
        assert data["method"] == "layer-wise"
        assert 0 <= data["contained_fraction"] <= 1
        assert data["network"]["contained"] in (True, False)
        assert len(data["layers"]) == len(report.layers)


class TestWriters:
    def test_write_json(self, setup, tmp_path):
        _, _, result, _ = setup
        path = tmp_path / "sub" / "campaign.json"
        write_json(campaign_to_dict(result), path)
        loaded = json.loads(path.read_text())
        assert loaded["method"] == "layer-wise"

    def test_write_layer_csv(self, setup, tmp_path):
        space, table, result, report = setup
        runner = CampaignRunner(TableOracle(table, space), space)
        other = validate_campaign(
            runner.run(NetworkWiseSFI().plan(space), seed=0), table
        )
        path = tmp_path / "layers.csv"
        write_layer_csv([report, other], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2 * len(space.layers)
        methods = {row["method"] for row in rows}
        assert methods == {"layer-wise", "network-wise"}
        first = rows[0]
        assert float(first["estimate"]) >= 0.0

    def test_write_comparison_csv(self, setup, tmp_path):
        _, _, _, report = setup
        comp = MethodComparison.from_report(report)
        path = tmp_path / "table3.csv"
        write_comparison_csv([comp], path)
        with open(path) as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["method"] == "layer-wise"
        assert int(rows[0]["injections"]) == report.total_injections

    def test_empty_margin_serialised_as_blank(self, setup, tmp_path):
        space, table, _, _ = setup
        runner = CampaignRunner(TableOracle(table, space), space)
        sparse = runner.run(
            NetworkWiseSFI(error_margin=0.3).plan(space), seed=0
        )
        report = validate_campaign(sparse, table)
        path = tmp_path / "sparse.csv"
        write_layer_csv([report], path)
        content = path.read_text()
        assert "layer-wise" not in content  # sanity: only network-wise rows
