"""Shard identity: stable ids, partitioning and serialisation."""

from __future__ import annotations

import pytest

from repro.data import SynthCIFAR
from repro.dist import (
    ShardSpec,
    config_hash,
    make_exhaustive_shards,
    make_sampled_shards,
    plan_hash,
)
from repro.dist.spec import _partition
from repro.faults import FaultSpace, InferenceEngine
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.sfi import DataUnawareSFI


@pytest.fixture(scope="module")
def setup():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


class TestConfigHash:
    def test_stable_across_key_order(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_sensitive_to_values(self):
        assert config_hash({"a": 1}) != config_hash({"a": 2})

    def test_plan_hash_covers_seed_and_margin(self, setup):
        _engine, space = setup
        plan = DataUnawareSFI(0.05, 0.95).plan(space)
        assert plan_hash(plan, seed=0) != plan_hash(plan, seed=1)
        other = DataUnawareSFI(0.1, 0.95).plan(space)
        assert plan_hash(plan, seed=0) != plan_hash(other, seed=0)


class TestPartition:
    def test_round_robin_covers_everything_once(self):
        units = list(range(17))
        parts = _partition(units, 4)
        flat = sorted(u for part in parts for u in part)
        assert flat == units
        assert max(len(p) for p in parts) - min(len(p) for p in parts) <= 1

    def test_rejects_nonpositive_shards(self):
        with pytest.raises(ValueError):
            _partition([1, 2, 3], 0)


class TestShardSpecs:
    def test_exhaustive_shards_cover_every_cell(self, setup):
        engine, space = setup
        _config, specs = make_exhaustive_shards(engine, space, shards=4)
        cells = sorted(
            (int(u[0]), int(u[1])) for spec in specs for u in spec.units
        )
        expected = sorted(
            (layer, bit)
            for layer in range(len(space.layers))
            for bit in range(space.bits)
        )
        assert cells == expected

    def test_shard_ids_are_stable_across_submitters(self, setup):
        engine, space = setup
        _c1, first = make_exhaustive_shards(engine, space, shards=4)
        _c2, second = make_exhaustive_shards(engine, space, shards=4)
        assert [s.shard_id for s in first] == [s.shard_id for s in second]

    def test_shard_ids_differ_across_shard_counts(self, setup):
        engine, space = setup
        _c1, four = make_exhaustive_shards(engine, space, shards=4)
        _c2, eight = make_exhaustive_shards(engine, space, shards=8)
        assert set(s.shard_id for s in four).isdisjoint(
            s.shard_id for s in eight
        )

    def test_sampled_shards_cover_every_plan_item(self, setup):
        engine, space = setup
        plan = DataUnawareSFI(0.05, 0.95).plan(space)
        _config, specs = make_sampled_shards(
            plan, space, seed=3, shards=4, golden_sha256=engine.fingerprint()
        )
        items = sorted(int(u) for spec in specs for u in spec.units)
        assert items == list(range(len(plan.items)))
        assert all(spec.seed == 3 for spec in specs)

    def test_json_round_trip(self, setup):
        engine, space = setup
        _config, specs = make_exhaustive_shards(engine, space, shards=4)
        spec = specs[0].with_failure("boom", not_before=123.5)
        restored = ShardSpec.from_json(spec.to_json())
        assert restored == spec
        assert restored.attempts == 1
        assert restored.history == ("boom",)
        assert restored.not_before == 123.5
