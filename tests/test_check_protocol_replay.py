"""Model-checker counterexamples replayed against a real tmpdir queue.

Every counterexample class the protocol checker produced during
development — the five mutation classes plus the requeue race it found
in the real ``fail()``/``release_expired()`` — is replayed here as a
concrete schedule against a real :class:`ShardQueue`.  A crash is
simulated by truncating the operation sequence at the model's crash
point and running only the recovery path (``recover_splits`` /
``release_expired`` / re-claim) afterwards.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.dist import DistError, ShardQueue, ShardSpec, config_hash
from repro.dist.spec import _shard_id, split_shard
from repro.store import atomic_write_bytes, save_verified_npz

CONFIG = {"kind": "exhaustive", "fmt": "float16", "layer_sizes": [4, 8]}
CFG_HASH = config_hash(CONFIG)
FUTURE = time.time() + 3600.0


def make_specs(n: int = 2, units_per_shard: int = 4) -> list[ShardSpec]:
    specs = []
    for index in range(n):
        units = tuple((index, j) for j in range(units_per_shard))
        specs.append(
            ShardSpec(
                shard_id=_shard_id(
                    CFG_HASH, "exhaustive", index, n, units, None
                ),
                kind="exhaustive",
                index=index,
                total=n,
                config_hash=CFG_HASH,
                units=units,
            )
        )
    return specs


@pytest.fixture
def queue(tmp_path):
    queue = ShardQueue(tmp_path / "q")
    queue.submit(make_specs(), config=CONFIG)
    return queue


def drain(queue: ShardQueue, *, now: float = FUTURE + 3600.0) -> list[str]:
    """The model checker's recovery drain against the real queue."""
    queue.recover_splits()
    queue.release_expired(
        lease_seconds=0.0, max_attempts=99, backoff_base=0.0, now=now
    )
    completed = []
    for _ in range(32):
        claimed = queue.claim(worker="drain", lease_seconds=60.0, now=now)
        if claimed is None:
            break
        spec, lease = claimed
        queue.complete(spec, {"tallies": np.ones(3)}, lease=lease)
        completed.append(spec.shard_id)
    return completed


class TestClaimCrashWindow:
    """Crash between the claim rename and the lease write (Q310 class)."""

    def test_release_expired_recovers_via_mtime_fallback(self, queue):
        sid = queue.status().pending[0]
        # Truncated claim: the rename happened, the lease write did not.
        os.rename(
            queue.pending_dir / f"{sid}.json",
            queue.leased_dir / f"{sid}.json",
        )
        assert queue.status().pending.count(sid) == 0
        released = queue.release_expired(lease_seconds=0.0, now=FUTURE)
        assert (sid, "requeued") in released
        assert sorted(drain(queue)) == sorted(queue.campaign()["shards"])
        assert queue.is_complete()


class TestCompleteCrashWindow:
    """Crash inside ``complete`` — result first means nothing is lost,
    and the redundant requeue is dropped at claim time (Q310/Q311)."""

    def test_crash_after_result_write_duplicates_nothing(self, queue):
        spec, _lease = queue.claim(worker="w0", lease_seconds=0.0)
        # Truncated complete: result durable, spec retirement lost.
        save_verified_npz(
            queue.result_path(spec.shard_id), {"tallies": np.ones(3)}
        )
        assert (queue.leased_dir / f"{spec.shard_id}.json").exists()
        drain(queue)
        assert queue.is_complete()
        # Exactly one result per campaign shard: no double merge input.
        done = sorted(p.stem for p in queue.done_dir.glob("*.npz"))
        assert done == sorted(queue.campaign()["shards"])
        assert not list(queue.pending_dir.glob("*.json"))
        assert not list(queue.leased_dir.glob("*.json"))


class TestRecoverSplitWindows:
    """Both PR 7 ``recover_splits`` crash windows, plus idempotence
    (Q312/Q313 classes)."""

    def _split_target(self, queue):
        campaign = queue.campaign()
        by_id = {s.shard_id: s for s in make_specs()}
        sid = campaign["shards"][0]
        return by_id[sid]

    def test_window_before_commit_restores_parent(self, queue):
        spec = self._split_target(queue)
        taken = queue.begin_split(spec.shard_id)
        assert taken is not None
        assert queue.splitting_path(spec.shard_id).exists()
        # Crash before commit_split: no record exists — recovery must
        # rename the parent straight back (the exact rename the
        # dropped-recovery-rename mutant deletes).
        recovered = queue.recover_splits()
        assert spec.shard_id in recovered
        assert not queue.splitting_path(spec.shard_id).exists()
        assert (queue.pending_dir / f"{spec.shard_id}.json").exists()
        drain(queue)
        assert queue.is_complete()

    def test_window_after_commit_rederives_children(self, queue, monkeypatch):
        spec = self._split_target(queue)
        taken = queue.begin_split(spec.shard_id)
        children = split_shard(taken, 2)

        def boom(_children):
            raise RuntimeError("crash between commit and enqueue")

        monkeypatch.setattr(queue, "_enqueue_children", boom)
        with pytest.raises(RuntimeError):
            queue.commit_split(taken, children)
        monkeypatch.undo()
        # The record is durable but no child was enqueued.
        record = queue.campaign()["splits"][spec.shard_id]
        assert record["parts"] == 2
        for child in children:
            assert not (queue.pending_dir / f"{child.shard_id}.json").exists()
        recovered = queue.recover_splits()
        assert spec.shard_id in recovered
        for child in children:
            assert (queue.pending_dir / f"{child.shard_id}.json").exists()
        drain(queue)
        assert queue.is_complete()

    def test_recovery_is_idempotent_after_full_commit(self, queue):
        spec = self._split_target(queue)
        taken = queue.begin_split(spec.shard_id)
        children = split_shard(taken, 2)
        queue.commit_split(taken, children)
        # Resurrect the .splitting file (crash replay of a stale pass).
        atomic_write_bytes(
            queue.splitting_path(spec.shard_id),
            (taken.to_json() + "\n").encode("utf-8"),
        )
        before = sorted(p.name for p in queue.pending_dir.glob("*.json"))
        queue.recover_splits()
        after = sorted(p.name for p in queue.pending_dir.glob("*.json"))
        assert before == after  # no duplicate children
        assert not queue.splitting_path(spec.shard_id).exists()

    def test_split_partition_is_disjoint_and_complete(self):
        # The Q311 mutant corrupts exactly this property.
        spec = make_specs()[0]
        children = split_shard(spec, 3)
        got = [tuple(u) for child in children for u in child.units]
        assert sorted(got) == sorted(tuple(u) for u in spec.units)

    def test_corrupt_split_record_is_refused_on_resume(self, queue):
        # The Q313 mutant records a part count that does not re-derive
        # the recorded children; the real resume path must refuse it.
        spec = self._split_target(queue)
        taken = queue.begin_split(spec.shard_id)
        queue.commit_split(taken, split_shard(taken, 2))
        campaign = queue.campaign()
        campaign["splits"][spec.shard_id]["parts"] = 3
        atomic_write_bytes(
            queue.campaign_path,
            (__import__("json").dumps(campaign) + "\n").encode("utf-8"),
        )
        with pytest.raises(DistError, match="does not reproduce"):
            queue.submit(make_specs(), config=CONFIG)


class TestRequeueRace:
    """The lost-shard race ``repro-check protocol`` found in the real
    ``fail()``: requeue must be one atomic rename so a concurrent claim
    of the requeued copy can never be clobbered (Q310 class)."""

    def test_crash_between_rewrite_and_rename_is_recoverable(self, queue):
        spec, _lease = queue.claim(worker="w0", lease_seconds=0.0)
        # Truncated fail(): the leased copy was rewritten with the
        # bumped attempt count, the requeue rename never happened.
        updated = spec.with_failure("boom", not_before=0.0)
        atomic_write_bytes(
            queue.leased_dir / f"{spec.shard_id}.json",
            (updated.to_json() + "\n").encode("utf-8"),
        )
        drain(queue)
        assert queue.is_complete()

    def test_concurrent_claim_is_never_clobbered(self, queue):
        spec, lease0 = queue.claim(worker="w0", lease_seconds=0.0)
        # w0's fail() runs its first two effects: rewrite + rename.
        updated = spec.with_failure("boom", not_before=0.0)
        leased = queue.leased_dir / f"{spec.shard_id}.json"
        atomic_write_bytes(leased, (updated.to_json() + "\n").encode("utf-8"))
        os.rename(leased, queue.pending_dir / f"{spec.shard_id}.json")
        # A peer claims the requeued copy before w0 finishes its fail().
        reclaimed = queue.claim(worker="w1", lease_seconds=60.0, now=FUTURE)
        assert reclaimed is not None and reclaimed[0].shard_id == spec.shard_id
        # w0's trailing lease release must not destroy the peer's spec —
        # under the old write-pending-then-unlink-leased ordering this
        # step unlinked leased/<id>.json and lost the shard.
        lease0.release()
        assert (queue.leased_dir / f"{spec.shard_id}.json").exists()
        drain(queue)
        assert queue.is_complete()

    def test_fail_leaves_no_leased_copy_behind(self, queue):
        spec, lease = queue.claim(worker="w0", lease_seconds=60.0)
        outcome = queue.fail(spec, "boom", lease=lease)
        assert outcome == "requeued"
        assert not (queue.leased_dir / f"{spec.shard_id}.json").exists()
        requeued = queue._read_spec(
            queue.pending_dir / f"{spec.shard_id}.json"
        )
        assert requeued is not None and requeued.attempts == 1


class TestScheduleIndependentMerge:
    """Q314 class: the merged table must not depend on attempt history."""

    def test_result_after_retry_matches_first_try_result(self, tmp_path):
        arrays = {"tallies": np.arange(6, dtype=np.float64)}
        results = {}
        for name, with_retry in (("a", False), ("b", True)):
            queue = ShardQueue(tmp_path / name)
            queue.submit(make_specs(1), config=CONFIG)
            spec, lease = queue.claim(worker="w0", lease_seconds=60.0)
            if with_retry:
                queue.fail(spec, "transient", lease=lease)
                spec, lease = queue.claim(
                    worker="w1", lease_seconds=60.0, now=FUTURE
                )
                assert spec.attempts == 1
            queue.complete(spec, arrays, lease=lease)
            meta, loaded = queue.load_result(spec.shard_id)
            results[name] = (meta, loaded)
        meta_a, arrays_a = results["a"]
        meta_b, arrays_b = results["b"]
        np.testing.assert_array_equal(arrays_a["tallies"], arrays_b["tallies"])
        # Identity metadata (what the merge validates) is attempt-free.
        for key in ("shard_id", "kind", "config_hash", "units"):
            assert meta_a[key] == meta_b[key]
