"""Tests for repro.sfi.runner and repro.sfi.results on synthetic truth."""

import numpy as np
import pytest

from repro.faults import FaultOutcome, FaultSpace, OutcomeTable, TableOracle
from repro.models import ResNetCIFAR
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    DataUnawareSFI,
    Granularity,
    LayerWiseSFI,
    NetworkWiseSFI,
)


@pytest.fixture(scope="module")
def space():
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=7)
    return FaultSpace(model)


@pytest.fixture(scope="module")
def synthetic_truth(space):
    """A deterministic OutcomeTable: a fault is critical iff it is the
    stuck-at-1 of bit 30 or 29 — giving exact per-cell rates of 0.5 in
    those cells (SA1 half of the cell) and 0 elsewhere."""
    outcomes = []
    for layer in space.layers:
        arr = np.full(
            (layer.size, space.bits, 2), FaultOutcome.NON_CRITICAL, dtype=np.uint8
        )
        arr[:, 30, 1] = FaultOutcome.CRITICAL
        arr[:, 29, 1] = FaultOutcome.CRITICAL
        outcomes.append(arr)
    return OutcomeTable(outcomes)


@pytest.fixture(scope="module")
def oracle(synthetic_truth, space):
    return TableOracle(synthetic_truth, space)


TRUE_RATE = 2.0 / 64.0  # two critical faults per weight out of 64


class TestRunner:
    def test_exhaustive_replay_recovers_exact_rate(self, oracle, space):
        """Sampling 100% of every cell reproduces the true rate exactly."""
        plan = DataUnawareSFI(error_margin=0.0001).plan(space)
        # With a 0.01% margin on tiny cells, the plan is a census.
        assert all(
            i.sample_size == i.subpopulation.population for i in plan.items
        )
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        net = result.network_estimate()
        assert net.p_hat == pytest.approx(TRUE_RATE)
        assert net.margin == pytest.approx(0.0)

    def test_determinism_across_runs(self, oracle, space):
        runner = CampaignRunner(oracle, space)
        plan = LayerWiseSFI().plan(space)
        a = runner.run(plan, seed=5)
        b = runner.run(plan, seed=5)
        assert a.cell_tallies == b.cell_tallies

    def test_seeds_vary_samples(self, oracle, space):
        runner = CampaignRunner(oracle, space)
        plan = NetworkWiseSFI().plan(space)
        a = runner.run(plan, seed=1)
        b = runner.run(plan, seed=2)
        assert a.cell_tallies != b.cell_tallies

    def test_run_many(self, oracle, space):
        runner = CampaignRunner(oracle, space)
        plan = NetworkWiseSFI().plan(space)
        results = runner.run_many(plan, seeds=[0, 1, 2])
        assert len(results) == 3
        assert results[0].seed == 0

    def test_total_injections_matches_plan(self, oracle, space):
        for planner in (NetworkWiseSFI(), LayerWiseSFI(), DataUnawareSFI()):
            plan = planner.plan(space)
            result = CampaignRunner(oracle, space).run(plan, seed=0)
            assert result.total_injections == plan.total_injections

    def test_assumed_p_recorded_for_skipped_cells(self, oracle, space):
        p = np.zeros(32)
        p[30] = 0.5
        plan = DataAwareSFI(p=p).plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        assert result.assumed_p[(0, 0)] == 0.0
        assert (0, 30) not in result.assumed_p


class TestEstimates:
    def test_network_estimates_near_truth(self, oracle, space):
        for planner in (NetworkWiseSFI(), LayerWiseSFI(), DataUnawareSFI()):
            plan = planner.plan(space)
            result = CampaignRunner(oracle, space).run(plan, seed=3)
            net = result.network_estimate()
            assert net.p_hat == pytest.approx(TRUE_RATE, abs=0.01)
            # 99%-confidence margins occasionally miss on a single seed;
            # require containment within a slightly widened interval.
            assert abs(net.p_hat - TRUE_RATE) <= 1.5 * net.margin

    def test_layer_estimates_contain_truth(self, oracle, space):
        """At 99% confidence, the vast majority of (seed, layer) pairs
        must contain the truth; Wald margins at small p undercover
        slightly, so demand >=90% across 5 seeds x 8 layers."""
        plan = LayerWiseSFI().plan(space)
        runner = CampaignRunner(oracle, space)
        contained = 0
        total = 0
        for seed in range(5):
            result = runner.run(plan, seed=seed)
            for layer in range(len(space.layers)):
                contained += result.layer_estimate(layer).contains(TRUE_RATE)
                total += 1
        assert contained / total >= 0.9

    def test_cell_estimates_exact_when_censused(self, oracle, space):
        plan = DataUnawareSFI(error_margin=0.001).plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        assert result.cell_estimate(0, 30).p_hat == pytest.approx(0.5)
        assert result.cell_estimate(0, 29).p_hat == pytest.approx(0.5)
        assert result.cell_estimate(0, 5).p_hat == pytest.approx(0.0)

    def test_stratified_layer_estimate_combines_cells(self, oracle, space):
        plan = DataUnawareSFI().plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        est = result.layer_estimate(1)
        assert est.key == ("layer", 1)
        assert est.p_hat == pytest.approx(TRUE_RATE, abs=0.02)
        assert est.margin is not None and est.margin < 0.05

    def test_data_aware_uses_assumed_p_for_skipped_cells(self, oracle, space):
        p = np.zeros(32)
        p[30] = 0.5
        p[29] = 0.5
        plan = DataAwareSFI(p=p).plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        net = result.network_estimate()
        # Unsampled cells contribute their assumed p (0): the estimate is
        # driven by the censused bit-30/29 cells.
        assert net.p_hat == pytest.approx(TRUE_RATE, abs=0.005)

    def test_empty_layer_estimate_has_no_margin(self, space, synthetic_truth):
        oracle = TableOracle(synthetic_truth, space)
        result = CampaignRunner(oracle, space).run(
            NetworkWiseSFI(error_margin=0.25).plan(space), seed=0
        )
        # A coarse campaign may leave small layers unsampled.
        injected_layers = {l for (l, _) in result.cell_tallies}
        for layer in range(len(space.layers)):
            est = result.layer_estimate(layer)
            if layer not in injected_layers:
                assert est.margin is None
                assert est.injections == 0
                assert not est.contains(TRUE_RATE)

    def test_estimate_interval(self, oracle, space):
        plan = LayerWiseSFI().plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        est = result.layer_estimate(0)
        low, high = est.interval()
        assert 0.0 <= low <= est.p_hat <= high <= 1.0

    def test_interval_requires_margin(self, space, synthetic_truth):
        from repro.sfi.results import Estimate

        est = Estimate(
            key=("layer", 0),
            population=10,
            injections=0,
            criticals=0,
            p_hat=0.0,
            margin=None,
        )
        with pytest.raises(ValueError):
            est.interval()

    def test_masked_counted_as_trials(self, oracle, space):
        plan = LayerWiseSFI().plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        # Our synthetic truth has no MASKED entries; inject some by hand.
        result.record(0, 0, critical=False, masked=True)
        assert result.total_masked == 1
        assert result.total_injections == plan.total_injections + 1

    def test_summary_text(self, oracle, space):
        plan = NetworkWiseSFI().plan(space)
        result = CampaignRunner(oracle, space).run(plan, seed=0)
        text = result.summary()
        assert "network-wise" in text and "injections" in text


@pytest.fixture(scope="module")
def random_truth(space):
    """A randomised OutcomeTable: ~10% of faults critical, i.i.d.

    Unlike ``synthetic_truth`` (where every fault in a cell shares an
    outcome, so *any* sample of a cell tallies identically), here the
    tallies depend on exactly which faults were drawn — which is what
    makes seed determinism observable.
    """
    rng = np.random.default_rng(1234)
    outcomes = []
    for layer in space.layers:
        critical = rng.random((layer.size, space.bits, 2)) < 0.1
        arr = np.where(
            critical, FaultOutcome.CRITICAL, FaultOutcome.NON_CRITICAL
        ).astype(np.uint8)
        outcomes.append(arr)
    return OutcomeTable(outcomes)


class TestRunManySeedDeterminism:
    """run_many results are a pure function of (plan, seed)."""

    @pytest.fixture(scope="class")
    def random_oracle(self, random_truth, space):
        return TableOracle(random_truth, space)

    def test_same_seeds_give_identical_results(self, random_oracle, space):
        runner = CampaignRunner(random_oracle, space)
        plan = DataAwareSFI().plan(space)
        seeds = [0, 1, 2]
        first = runner.run_many(plan, seeds=seeds)
        second = runner.run_many(plan, seeds=seeds)
        for a, b in zip(first, second):
            assert a.seed == b.seed
            assert a.cell_tallies == b.cell_tallies
            assert a.assumed_p == b.assumed_p
            assert a.network_estimate() == b.network_estimate()

    def test_runs_are_independent_of_batch_position(self, random_oracle, space):
        """Seed k yields the same result whether run alone or mid-batch:
        no RNG state leaks between the runs of one run_many call."""
        runner = CampaignRunner(random_oracle, space)
        plan = NetworkWiseSFI().plan(space)
        batched = runner.run_many(plan, seeds=[7, 8, 9])
        solo = runner.run(plan, seed=8)
        assert batched[1].cell_tallies == solo.cell_tallies

    def test_distinct_seeds_draw_distinct_samples(self, random_oracle, space):
        runner = CampaignRunner(random_oracle, space)
        plan = NetworkWiseSFI().plan(space)
        results = runner.run_many(plan, seeds=[0, 1, 2, 3])
        assert [r.seed for r in results] == [0, 1, 2, 3]
        tallies = [r.cell_tallies for r in results]
        # With ~10% i.i.d. criticality, two independent samples of
        # hundreds of faults agreeing cell-for-cell is vanishingly
        # unlikely; all four must differ pairwise.
        for i in range(len(tallies)):
            for j in range(i + 1, len(tallies)):
                assert tallies[i] != tallies[j]


class TestStratumSubstreams:
    """Per-stratum RNG substreams make draws order- and shard-independent."""

    @pytest.fixture(scope="class")
    def random_oracle(self, random_truth, space):
        return TableOracle(random_truth, space)

    def test_stratum_rng_matches_seedsequence_spawn(self):
        from repro.sfi.runner import stratum_rng

        children = np.random.SeedSequence(42).spawn(5)
        for index, child in enumerate(children):
            ours = stratum_rng(42, index).random(8)
            spawned = np.random.default_rng(child).random(8)
            assert np.array_equal(ours, spawned)

    def test_item_execution_order_does_not_change_tallies(
        self, random_oracle, space
    ):
        """Running the plan's items in any permutation tallies identically
        — each stratum draws from its own substream, so no stratum's
        sample depends on which strata ran before it."""
        from repro.sfi.runner import execute_plan_items

        plan = DataUnawareSFI(0.05).plan(space)
        indices = list(range(len(plan.items)))
        forward, assumed_f = execute_plan_items(
            plan, random_oracle, indices, seed=3
        )
        backward, assumed_b = execute_plan_items(
            plan, random_oracle, list(reversed(indices)), seed=3
        )
        assert forward == backward
        assert assumed_f == assumed_b

    def test_partitioned_execution_sums_to_serial(
        self, random_oracle, space
    ):
        """Any partition of the items (the distributed sharding case)
        folds back into exactly the serial tallies."""
        from repro.sfi.runner import execute_plan_items

        plan = DataUnawareSFI(0.05).plan(space)
        indices = list(range(len(plan.items)))
        serial, serial_assumed = execute_plan_items(
            plan, random_oracle, indices, seed=9
        )
        merged: dict = {}
        merged_assumed: dict = {}
        for shard in (indices[0::3], indices[1::3], indices[2::3]):
            tallies, assumed = execute_plan_items(
                plan, random_oracle, shard, seed=9
            )
            for key, counts in tallies.items():
                tally = merged.setdefault(key, [0, 0, 0])
                for slot in range(3):
                    tally[slot] += counts[slot]
            merged_assumed.update(assumed)
        assert merged == serial
        assert merged_assumed == serial_assumed

    def test_pool_workers_match_serial_run(self, random_oracle, space):
        """CampaignRunner.run(workers=2) equals the serial run exactly."""
        runner = CampaignRunner(random_oracle, space)
        plan = DataUnawareSFI(0.05).plan(space)
        serial = runner.run(plan, seed=11, workers=1)
        pooled = runner.run(plan, seed=11, workers=2)
        assert pooled.cell_tallies == serial.cell_tallies
        assert pooled.assumed_p == serial.assumed_p
        assert pooled.network_estimate() == serial.network_estimate()
