"""Tests for repro.faults.table and oracle."""

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import (
    Fault,
    FaultModel,
    FaultOutcome,
    FaultSpace,
    InferenceEngine,
    InferenceOracle,
    OutcomeTable,
    TableOracle,
)
from repro.models import ResNetCIFAR


@pytest.fixture(scope="module")
def tiny_exhaustive():
    """Exhaustive table over a minuscule model (fast enough for tests)."""
    model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=3).eval()
    data = SynthCIFAR("test", size=8, seed=5, image_size=16)
    engine = InferenceEngine(model, data.images, data.labels)
    space = FaultSpace(engine.layers)
    # Restrict to two bits via a narrowed space? No — run the true
    # exhaustive on this ~1.4k-weight model (~90k faults would be slow);
    # instead build the table only over the classifier layer by hand.
    return engine, space


def build_partial_table(engine, space, layer_idx):
    """Exhaustively classify a single layer and zero-fill the others."""
    outcomes = []
    for l, layer in enumerate(space.layers):
        shape = (layer.size, space.bits, 2)
        if l != layer_idx:
            outcomes.append(np.zeros(shape, dtype=np.uint8))
            continue
        table = np.empty(shape, dtype=np.uint8)
        for fault in space.iter_layer(l):
            model_idx = space.fault_models.index(fault.model)
            table[fault.index, fault.bit, model_idx] = engine.classify(fault)
        outcomes.append(table)
    return OutcomeTable(outcomes, metadata={"partial": layer_idx})


class TestOutcomeTable:
    def test_partial_layer_agrees_with_engine(self, tiny_exhaustive):
        engine, space = tiny_exhaustive
        layer_idx = len(space.layers) - 1  # linear layer (40 weights)
        table = build_partial_table(engine, space, layer_idx)
        rng = np.random.default_rng(0)
        for _ in range(50):
            local = int(rng.integers(space.layer_population(layer_idx)))
            fault = space.layer_fault(layer_idx, local)
            model_idx = space.fault_models.index(fault.model)
            assert table.outcome(fault, model_idx) == engine.classify(fault)

    def test_masked_structure(self, tiny_exhaustive):
        """Exactly one of (SA0, SA1) per weight-bit must be masked."""
        engine, space = tiny_exhaustive
        layer_idx = len(space.layers) - 1
        table = build_partial_table(engine, space, layer_idx)
        arr = table.outcomes[layer_idx]
        masked_per_pair = (arr == FaultOutcome.MASKED).sum(axis=2)
        np.testing.assert_array_equal(masked_per_pair, 1)

    def test_counts_and_rates(self):
        # Fill with NON_CRITICAL (masked has code 0, the array default).
        outcomes = [
            np.full((4, 2, 2), FaultOutcome.NON_CRITICAL, dtype=np.uint8)
        ]
        outcomes[0][0, 0, 0] = FaultOutcome.CRITICAL
        outcomes[0][1, 1, 1] = FaultOutcome.CRITICAL
        outcomes[0][2, 0, 0] = FaultOutcome.MASKED
        table = OutcomeTable(outcomes)
        assert table.layer_counts(0) == (2, 16)
        assert table.cell_counts(0, 0) == (1, 8)
        assert table.total_counts() == (2, 16)
        assert table.total_rate() == pytest.approx(2 / 16)
        assert table.cell_rate(0, 1) == pytest.approx(1 / 8)
        assert table.masked_fraction() == pytest.approx(1 / 16)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            OutcomeTable([np.zeros((4, 2), dtype=np.uint8)])

    def test_save_load_round_trip(self, tmp_path):
        outcomes = [
            np.random.default_rng(0).integers(0, 3, size=(5, 4, 2)).astype(np.uint8),
            np.random.default_rng(1).integers(0, 3, size=(3, 4, 2)).astype(np.uint8),
        ]
        table = OutcomeTable(outcomes, metadata={"model": "test", "n": 5})
        path = tmp_path / "table.npz"
        table.save(path)
        loaded = OutcomeTable.load(path)
        assert loaded.metadata == {"model": "test", "n": 5}
        assert loaded.num_layers == 2
        for a, b in zip(table.outcomes, loaded.outcomes):
            np.testing.assert_array_equal(a, b)

    def test_from_exhaustive_small(self):
        """End-to-end exhaustive build over a single-layer toy space."""
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=3).eval()
        data = SynthCIFAR("test", size=4, seed=5, image_size=16)
        engine = InferenceEngine(model, data.images, data.labels)
        space = FaultSpace(engine.layers[-1:])  # classifier only: 40 weights
        # Re-target the injector at the classifier layer only.
        engine_small = InferenceEngine(model, data.images, data.labels)
        progress_calls = []
        table = OutcomeTable.from_exhaustive(
            _RetargetedEngine(engine_small, len(engine_small.layers) - 1),
            space,
            progress=lambda done, total: progress_calls.append((done, total)),
            progress_every=500,
        )
        assert table.num_layers == 1
        criticals, population = table.total_counts()
        assert population == 40 * 64
        assert table.metadata["eval_images"] == 4
        assert progress_calls  # progress was reported
        # Half of all stuck-at faults are masked by construction.
        assert table.masked_fraction() == pytest.approx(0.5)


class _RetargetedEngine:
    """Adapter presenting a single-layer view of an InferenceEngine."""

    def __init__(self, engine, layer_idx):
        self._engine = engine
        self._offset = layer_idx
        self.policy = engine.policy
        self.threshold = engine.threshold
        self.golden_predictions = engine.golden_predictions
        self.golden_accuracy = engine.golden_accuracy
        self.labels = engine.labels
        self.images = engine.images
        self.inference_count = 0

    def predictions_with_fault(self, fault):
        shifted = Fault(
            layer=fault.layer + self._offset,
            index=fault.index,
            bit=fault.bit,
            model=fault.model,
        )
        self.inference_count += 1
        return self._engine.predictions_with_fault(shifted)


class TestOracles:
    def test_table_oracle_replays(self):
        outcomes = [np.zeros((2, 32, 2), dtype=np.uint8)]
        outcomes[0][1, 30, 1] = FaultOutcome.CRITICAL
        table = OutcomeTable(outcomes)
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=3)
        from repro.faults import enumerate_weight_layers

        space = FaultSpace(enumerate_weight_layers(model)[:1])
        # Shrink the layer to 2 weights conceptually: only index 0/1 used.
        oracle = TableOracle(table, space)
        critical = Fault(layer=0, index=1, bit=30, model=FaultModel.STUCK_AT_1)
        benign = Fault(layer=0, index=0, bit=30, model=FaultModel.STUCK_AT_0)
        assert oracle.classify(critical) is FaultOutcome.CRITICAL
        assert oracle.classify(benign) is FaultOutcome.MASKED

    def test_table_oracle_layer_mismatch(self):
        table = OutcomeTable([np.zeros((2, 32, 2), dtype=np.uint8)])
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=3)
        space = FaultSpace(model)
        with pytest.raises(ValueError, match="layers"):
            TableOracle(table, space)

    def test_table_oracle_unknown_model(self):
        table = OutcomeTable([np.zeros((2, 32, 1), dtype=np.uint8)])
        model = ResNetCIFAR(blocks_per_stage=1, widths=(4, 4, 4), seed=3)
        from repro.faults import enumerate_weight_layers

        space = FaultSpace(
            enumerate_weight_layers(model)[:1],
            fault_models=(FaultModel.STUCK_AT_0,),
        )
        oracle = TableOracle(table, space)
        flip = Fault(layer=0, index=0, bit=0, model=FaultModel.BIT_FLIP)
        with pytest.raises(ValueError, match="not covered"):
            oracle.classify(flip)

    def test_inference_oracle_delegates(self, tiny_exhaustive):
        engine, _ = tiny_exhaustive
        oracle = InferenceOracle(engine)
        fault = Fault(layer=0, index=0, bit=30, model=FaultModel.STUCK_AT_1)
        assert oracle.classify(fault) == engine.classify(fault)


class TestResolveWorkers:
    """Worker-count resolution: explicit value, env override, CPU count."""

    def test_explicit_value_wins(self, monkeypatch):
        from repro.faults.table import resolve_workers

        monkeypatch.setenv("REPRO_WORKERS", "7")
        assert resolve_workers(3) == 3

    def test_env_override_applies_when_unset(self, monkeypatch):
        from repro.faults.table import resolve_workers

        monkeypatch.setenv("REPRO_WORKERS", "5")
        assert resolve_workers(None) == 5

    def test_env_override_is_clamped_to_one(self, monkeypatch):
        from repro.faults.table import resolve_workers

        monkeypatch.setenv("REPRO_WORKERS", "0")
        assert resolve_workers(None) == 1
        monkeypatch.setenv("REPRO_WORKERS", "-4")
        assert resolve_workers(None) == 1

    def test_blank_env_falls_back_to_cpu_count(self, monkeypatch):
        import os

        from repro.faults.table import resolve_workers

        monkeypatch.setenv("REPRO_WORKERS", "  ")
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)

    def test_non_integer_env_is_an_error(self, monkeypatch):
        from repro.faults.table import resolve_workers

        monkeypatch.setenv("REPRO_WORKERS", "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers(None)

    def test_default_without_env(self, monkeypatch):
        import os

        from repro.faults.table import resolve_workers

        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(None) == max(1, os.cpu_count() or 1)
        assert resolve_workers(0) == 1
