"""Test helpers: numeric gradient checking."""

from __future__ import annotations

import numpy as np

from repro.tensor import Tensor


def numeric_gradient(fn, value: np.ndarray, epsilon: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar-valued *fn* at *value*.

    ``fn`` receives an ndarray and returns a Python float.
    """
    value = value.astype(np.float64)
    grad = np.zeros_like(value)
    it = np.nditer(value, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        original = value[idx]
        value[idx] = original + epsilon
        plus = fn(value.astype(np.float32))
        value[idx] = original - epsilon
        minus = fn(value.astype(np.float32))
        value[idx] = original
        grad[idx] = (plus - minus) / (2 * epsilon)
        it.iternext()
    return grad


def check_gradient(
    build_loss,
    arrays: dict[str, np.ndarray],
    *,
    epsilon: float = 1e-3,
    atol: float = 2e-2,
    rtol: float = 5e-2,
) -> None:
    """Compare autograd gradients against numeric ones.

    ``build_loss`` maps a dict of :class:`Tensor` (same keys as *arrays*)
    to a scalar Tensor.  Each array's autograd gradient is checked against
    the central-difference estimate.
    """
    tensors = {
        name: Tensor(value.copy(), requires_grad=True)
        for name, value in arrays.items()
    }
    loss = build_loss(tensors)
    loss.backward()
    for name, value in arrays.items():
        def scalar_fn(perturbed, _name=name):
            local = {
                k: Tensor(perturbed if k == _name else arrays[k].copy())
                for k in arrays
            }
            return float(build_loss(local).data)

        expected = numeric_gradient(scalar_fn, value, epsilon=epsilon)
        actual = tensors[name].grad
        assert actual is not None, f"no gradient for {name}"
        np.testing.assert_allclose(
            actual,
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for {name}",
        )
