"""The ``repro-check`` command line front end."""

from __future__ import annotations

import json

import pytest

from repro.cli.check import main


class TestPlanCommand:
    def test_single_model_verifies_clean(self, capsys):
        assert main(["plan", "--model", "resnet8_mini"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out
        assert "fused=True" in out and "fused=False" in out

    def test_no_models_is_usage_error(self, capsys):
        assert main(["plan"]) == 2
        assert "--all-models" in capsys.readouterr().err

    def test_timings_out_records_wall_time(self, tmp_path, capsys):
        target = tmp_path / "timings.json"
        code = main(
            [
                "plan",
                "--model",
                "resnet8_mini",
                "--fuse",
                "unfused",
                "--timings-out",
                str(target),
            ]
        )
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["max_verify_seconds"] > 0
        [entry] = payload["plans"]
        assert entry["model"] == "resnet8_mini"
        assert entry["errors"] == 0


class TestLintCommand:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        source = tmp_path / "ok.py"
        source.write_text("import json\nprint(json.dumps({}, sort_keys=True))\n")
        assert main(["lint", str(source)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one_with_hint(self, tmp_path, capsys):
        source = tmp_path / "bad.py"
        source.write_text("import json\nprint(json.dumps({}))\n")
        assert main(["lint", str(source)]) == 1
        out = capsys.readouterr().out
        assert "D205" in out
        assert "repro-check: ignore[RULE]" in out

    def test_baseline_adoption_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        source = tmp_path / "bad.py"
        source.write_text("import json\nprint(json.dumps({}))\n")
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(source),
                    "--baseline",
                    str(baseline),
                    "--write-baseline",
                ]
            )
            == 0
        )
        assert baseline.is_file()
        assert main(["lint", str(source), "--baseline", str(baseline)]) == 0

    def test_repo_tree_is_clean_against_committed_baseline(
        self, capsys, monkeypatch, repo_root
    ):
        monkeypatch.chdir(repo_root)
        assert main(["lint", "src/repro"]) == 0


class TestRulesCommand:
    def test_catalogue_lists_both_passes(self, capsys):
        assert main(["rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("P101", "P110", "P120", "D201", "D206"):
            assert rule in out


@pytest.fixture
def repo_root():
    from pathlib import Path

    return Path(__file__).resolve().parents[1]
