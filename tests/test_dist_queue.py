"""The file-backed shard queue: claims, leases, retries and poison."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.dist import DistError, ShardQueue, ShardSpec, config_hash
from repro.dist.spec import _shard_id

CONFIG = {"kind": "exhaustive", "fmt": "float16", "layer_sizes": [4, 8]}
CFG_HASH = config_hash(CONFIG)


def make_specs(n: int = 4) -> list[ShardSpec]:
    specs = []
    for index in range(n):
        units = ((index, 0), (index, 1))
        specs.append(
            ShardSpec(
                shard_id=_shard_id(
                    CFG_HASH, "exhaustive", index, n, units, None
                ),
                kind="exhaustive",
                index=index,
                total=n,
                config_hash=CFG_HASH,
                units=units,
            )
        )
    return specs


@pytest.fixture
def queue(tmp_path):
    queue = ShardQueue(tmp_path / "q")
    queue.submit(make_specs(), config=CONFIG, runtime={"model": "tiny"})
    return queue


class TestSubmit:
    def test_submit_enqueues_all_shards(self, queue):
        status = queue.status()
        assert len(status.pending) == 4
        assert not status.leased and not status.done and not status.poisoned
        assert queue.campaign()["config_hash"] == CFG_HASH

    def test_resubmit_same_campaign_is_idempotent(self, queue):
        assert queue.submit(make_specs(), config=CONFIG) == 0
        assert len(queue.status().pending) == 4

    def test_resubmit_different_config_is_refused(self, queue):
        other = dict(CONFIG, fmt="float32")
        other_hash = config_hash(other)
        spec = ShardSpec(
            shard_id="deadbeef00000000",
            kind="exhaustive",
            index=0,
            total=1,
            config_hash=other_hash,
            units=((0, 0),),
        )
        with pytest.raises(DistError, match="different config fingerprint"):
            queue.submit([spec], config=other)

    def test_submit_refuses_mismatched_spec(self, tmp_path):
        queue = ShardQueue(tmp_path / "q2")
        spec = ShardSpec(
            shard_id="deadbeef00000000",
            kind="exhaustive",
            index=0,
            total=1,
            config_hash="0" * 64,
            units=((0, 0),),
        )
        with pytest.raises(DistError, match="was built for config"):
            queue.submit([spec], config=CONFIG)

    def test_unsubmitted_root_has_no_campaign(self, tmp_path):
        with pytest.raises(DistError, match="no submitted campaign"):
            ShardQueue(tmp_path / "empty").campaign()


class TestClaimComplete:
    def test_claim_moves_spec_to_leased(self, queue):
        claimed = queue.claim(worker="w1", lease_seconds=30.0)
        assert claimed is not None
        spec, lease = claimed
        status = queue.status()
        assert len(status.pending) == 3
        assert [entry["shard_id"] for entry in status.leased] == [spec.shard_id]
        assert status.leased[0]["worker"] == "w1"
        assert lease.deadline > time.time()

    def test_each_shard_claimed_once(self, queue):
        seen = set()
        while (claimed := queue.claim(worker="w1", lease_seconds=30.0)):
            spec, lease = claimed
            assert spec.shard_id not in seen
            seen.add(spec.shard_id)
            lease.release()
        assert len(seen) == 4

    def test_complete_retires_the_shard(self, queue):
        spec, lease = queue.claim(worker="w1", lease_seconds=30.0)
        queue.complete(spec, {"x": np.arange(3)}, lease=lease)
        status = queue.status()
        assert status.done == [spec.shard_id]
        assert not status.leased
        meta, arrays = queue.load_result(spec.shard_id)
        assert meta["shard_id"] == spec.shard_id
        assert meta["config_hash"] == CFG_HASH
        assert np.array_equal(arrays["x"], np.arange(3))

    def test_is_complete_after_all_done(self, queue):
        while (claimed := queue.claim(worker="w1", lease_seconds=30.0)):
            spec, lease = claimed
            queue.complete(spec, {"x": np.zeros(1)}, lease=lease)
        assert queue.is_complete()
        assert queue.status().complete


class TestFailureHandling:
    @pytest.fixture
    def queue(self, tmp_path):
        # A single-shard queue: the failed shard is the only claimable
        # one, so backoff windows are observable through claim().
        queue = ShardQueue(tmp_path / "q1")
        queue.submit(make_specs(1), config=CONFIG)
        return queue

    def test_fail_requeues_with_backoff(self, queue):
        spec, lease = queue.claim(worker="w1", lease_seconds=30.0)
        now = time.time()
        outcome = queue.fail(
            spec, "boom", lease=lease, backoff_base=0.5, now=now
        )
        assert outcome == "requeued"
        # Inside the backoff window the shard is not claimable ...
        assert queue.claim(worker="w2", lease_seconds=30.0, now=now) is None
        # ... but it is once the window passes, carrying its history.
        retry, _lease = queue.claim(
            worker="w2", lease_seconds=30.0, now=now + 1.0
        )
        assert retry.shard_id == spec.shard_id
        assert retry.attempts == 1
        assert retry.history == ("boom",)

    def test_backoff_doubles_and_caps(self, queue):
        spec, lease = queue.claim(worker="w1", lease_seconds=30.0)
        now = time.time()
        queue.fail(
            spec,
            "boom",
            lease=lease,
            max_attempts=10,
            backoff_base=0.5,
            backoff_cap=1.0,
            now=now,
        )
        first = queue._read_spec(
            queue.pending_dir / f"{spec.shard_id}.json"
        )
        assert first.not_before == pytest.approx(now + 0.5)
        queue.fail(
            first,
            "boom again",
            max_attempts=10,
            backoff_base=0.5,
            backoff_cap=1.0,
            now=now,
        )
        second = queue._read_spec(
            queue.pending_dir / f"{spec.shard_id}.json"
        )
        # 0.5 * 2**1 = 1.0 hits the cap; further failures stay capped.
        assert second.not_before == pytest.approx(now + 1.0)

    def test_poison_after_max_attempts(self, queue):
        spec, lease = queue.claim(worker="w1", lease_seconds=30.0)
        outcome = queue.fail(spec, "first", lease=lease, max_attempts=2)
        assert outcome == "requeued"
        retry, lease = queue.claim(
            worker="w1", lease_seconds=30.0, now=time.time() + 5
        )
        outcome = queue.fail(retry, "second", lease=lease, max_attempts=2)
        assert outcome == "poisoned"
        poisoned = queue.poisoned()
        assert [s.shard_id for s in poisoned] == [spec.shard_id]
        assert poisoned[0].history == ("first", "second")
        assert queue.status().poisoned == [spec.shard_id]


class TestLeaseExpiry:
    def test_expired_lease_is_released(self, queue):
        spec, _lease = queue.claim(worker="dead", lease_seconds=0.05)
        time.sleep(0.1)
        released = queue.release_expired(lease_seconds=0.05)
        assert released == [(spec.shard_id, "requeued")]
        # The requeued spec records the expiry as one failed attempt.
        requeued, _ = queue.claim(
            worker="w2", lease_seconds=30.0, now=time.time() + 5
        )
        assert requeued.shard_id == spec.shard_id
        assert requeued.attempts == 1
        assert "lease expired" in requeued.history[0]

    def test_live_lease_is_left_alone(self, queue):
        queue.claim(worker="alive", lease_seconds=30.0)
        assert queue.release_expired(lease_seconds=30.0) == []
        assert len(queue.status().leased) == 1

    def test_heartbeat_renewal_extends_the_lease(self, queue):
        spec, lease = queue.claim(worker="w1", lease_seconds=0.2)
        deadline = lease.deadline
        time.sleep(0.15)
        assert lease.maybe_renew()
        assert lease.deadline > deadline
        assert queue.release_expired(lease_seconds=0.2) == []

    def test_late_completion_after_expiry_is_idempotent(self, queue):
        """A worker whose lease expired may still finish; the redundant
        requeued copy is dropped at the next claim."""
        spec, lease = queue.claim(worker="slow", lease_seconds=0.05)
        time.sleep(0.1)
        queue.release_expired(lease_seconds=0.05)
        queue.complete(spec, {"x": np.zeros(1)}, lease=lease)
        assert queue.claim(
            worker="w2", lease_seconds=30.0, now=time.time() + 5
        ) is not None  # some other shard; the finished one is skipped
        done = queue.done_ids()
        assert spec.shard_id in done
        assert not (queue.pending_dir / f"{spec.shard_id}.json").exists()


class TestResume:
    def test_resubmit_after_partial_run_keeps_done_shards(self, queue):
        spec, lease = queue.claim(worker="w1", lease_seconds=30.0)
        queue.complete(spec, {"x": np.zeros(1)}, lease=lease)
        enqueued = queue.submit(make_specs(), config=CONFIG)
        assert enqueued == 0  # 3 still pending, 1 done, nothing re-added
        status = queue.status()
        assert len(status.pending) == 3
        assert status.done == [spec.shard_id]
