"""Tests for the ``repro-stats`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.cli.stats import main as stats_main
from repro.telemetry import Journal, Telemetry


@pytest.fixture()
def campaign_journal(tmp_path):
    """A journal holding one synthetic (but well-formed) campaign."""
    path = tmp_path / "trace.jsonl"
    tele = Telemetry(journal=Journal(path))
    tele.emit(
        "campaign_start",
        kind="exhaustive",
        total=1000,
        cells_total=4,
        workers=2,
    )
    for layer, bit in ((0, 0), (0, 1), (1, 0), (1, 1)):
        tele.emit("cell_start", layer=layer, bit=bit)
        tele.emit(
            "cell_done",
            layer=layer,
            bit=bit,
            seconds=0.5,
            faults=250,
            inferences=200,
        )
    tele.emit("campaign_end", elapsed_seconds=2.0, faults=1000, masked=100)
    return path, tele.run_id


class TestStatsCLI:
    def test_summarises_campaign(self, campaign_journal, capsys):
        path, run_id = campaign_journal
        assert stats_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert "exhaustive" in out
        assert "faults/sec" in out
        assert "1 campaign(s)" in out

    def test_top_limits_cell_table(self, campaign_journal, capsys):
        path, _ = campaign_journal
        assert stats_main([str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowest cells (top 2):" in out
        # Header line + exactly two cell rows under it.
        block = out.split("slowest cells (top 2):\n", 1)[1]
        rows = [line for line in block.splitlines() if line.strip()]
        assert len(rows) == 1 + 2

    def test_json_output(self, campaign_journal, capsys):
        path, run_id = campaign_journal
        assert stats_main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["predicted_vs_actual"] == []
        assert len(payload["campaigns"]) == 1
        record = payload["campaigns"][0]
        assert record["run_id"] == run_id
        assert record["kind"] == "exhaustive"
        assert record["faults_classified"] == 1000
        assert record["faults_per_second"] == pytest.approx(500.0)
        assert len(record["cells"]) == 4

    def test_run_filter(self, campaign_journal, capsys):
        path, run_id = campaign_journal
        # A second run in the same journal.
        other = Telemetry(journal=Journal(path))
        other.emit("campaign_start", kind="sampled", total=10)
        other.emit("campaign_end", elapsed_seconds=0.1)

        assert stats_main([str(path)]) == 0
        assert "2 campaign(s)" in capsys.readouterr().out

        assert stats_main([str(path), "--run", run_id]) == 0
        out = capsys.readouterr().out
        assert run_id in out
        assert other.run_id not in out

    def test_unknown_run_id_fails(self, campaign_journal, capsys):
        path, _ = campaign_journal
        assert stats_main([str(path), "--run", "deadbeef"]) == 1
        assert "no events for run id" in capsys.readouterr().out

    def test_missing_journal_fails(self, tmp_path, capsys):
        assert stats_main([str(tmp_path / "absent.jsonl")]) == 1
        assert "no journal" in capsys.readouterr().out

    def test_journal_with_only_torn_lines_fails(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"type": "campaign_start", "run\n')
        assert stats_main([str(path)]) == 1
        assert "no intact events" in capsys.readouterr().out


class TestMultiJournalMerge:
    def fleet_journals(self, tmp_path, *, same_t: bool):
        """Two per-worker journals from one synthetic campaign."""
        a, b = tmp_path / "w1.jsonl", tmp_path / "w2.jsonl"
        tele_a = Telemetry(journal=Journal(a, run_id="fleet"))
        tele_b = Telemetry(journal=Journal(b, run_id="fleet"))
        tele_a.emit("campaign_start", kind="exhaustive", total=500)
        tele_a.emit("cell_done", layer=0, bit=0, seconds=1.0, faults=250)
        tele_b.emit("cell_done", layer=1, bit=0, seconds=1.0, faults=250)
        tele_a.emit("campaign_end", elapsed_seconds=2.0, faults=500)
        if same_t:
            # Force identical timestamps (coarse clocks do this for
            # real): only the (path, line) tie-break orders them now.
            for path in (a, b):
                lines = [
                    json.loads(line)
                    for line in path.read_text().splitlines()
                ]
                for record in lines:
                    record["t"] = 1000.0
                path.write_text(
                    "".join(json.dumps(r) + "\n" for r in lines)
                )
        return a, b

    def test_argument_order_does_not_change_output(self, tmp_path, capsys):
        a, b = self.fleet_journals(tmp_path, same_t=False)
        assert stats_main([str(a), str(b), "--json"]) == 0
        forward = capsys.readouterr().out
        assert stats_main([str(b), str(a), "--json"]) == 0
        backward = capsys.readouterr().out
        assert json.loads(forward) == json.loads(backward)

    def test_equal_timestamps_tie_break_deterministically(
        self, tmp_path, capsys
    ):
        a, b = self.fleet_journals(tmp_path, same_t=True)
        assert stats_main([str(a), str(b), "--json"]) == 0
        forward = json.loads(capsys.readouterr().out)
        assert stats_main([str(b), str(a), "--json"]) == 0
        backward = json.loads(capsys.readouterr().out)
        assert forward == backward
        assert forward["campaigns"][0]["faults_classified"] == 500


class TestPredictedVsActualSection:
    def test_prediction_followed_by_work_is_reported(self, tmp_path, capsys):
        path = tmp_path / "j.jsonl"
        tele = Telemetry(journal=Journal(path))
        tele.emit(
            "campaign_predicted",
            kind="exhaustive",
            engine="plan",
            batch_size=16,
            workers=2,
            shards=4,
            fault_evals=1000,
            wall_seconds=2.0,
            serial_seconds=4.0,
            utilisation=1.0,
            engine_scale=1.0,
        )
        worker = Telemetry(journal=Journal(path))
        worker.emit("campaign_start", kind="exhaustive", total=1000)
        worker.emit("cell_done", layer=0, bit=0, seconds=1.5, faults=1000)
        worker.emit("campaign_end", elapsed_seconds=1.5, faults=1000)

        assert stats_main([str(path)]) == 0
        out = capsys.readouterr().out
        assert "predicted vs actual:" in out
        assert "error: wall" in out
        assert "1,000 fault-evals" in out

        assert stats_main([str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["predicted_vs_actual"]) == 1
        comparison = payload["predicted_vs_actual"][0]
        assert comparison["actual_fault_evals"] == 1000
        assert comparison["evals_ratio"] == pytest.approx(1.0)
