"""Annotation-completeness gate for the strictly-typed trees.

CI runs ``mypy --strict`` over ``src/repro/check`` and ``src/repro/dist``
(see ``[tool.mypy]`` in pyproject.toml and the static-checks job).  mypy
is a dev-extra and not part of the runtime environment, so this test
enforces the cheap, high-value slice of the contract everywhere pytest
runs: every function in the strict trees fully annotates its parameters
and return type, and ``repro.dist`` carries no ``# type: ignore``
escapes at all.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).resolve().parent.parent / "src"
STRICT_TREES = ("repro/check", "repro/dist")


def _strict_files() -> list[Path]:
    files = []
    for tree in STRICT_TREES:
        files.extend(sorted((SRC / tree).rglob("*.py")))
    assert files, "strict trees missing — did the package move?"
    return files


def _missing_annotations(tree: ast.Module) -> list[str]:
    gaps = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        missing = []
        if node.returns is None:
            missing.append("return")
        args = node.args
        for arg in args.posonlyargs + args.args + args.kwonlyargs:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                missing.append(arg.arg)
        if args.vararg is not None and args.vararg.annotation is None:
            missing.append(f"*{args.vararg.arg}")
        if args.kwarg is not None and args.kwarg.annotation is None:
            missing.append(f"**{args.kwarg.arg}")
        if missing:
            gaps.append(f"{node.name}:{node.lineno} ({', '.join(missing)})")
    return gaps


@pytest.mark.parametrize(
    "path", _strict_files(), ids=lambda p: str(p.relative_to(SRC))
)
def test_every_function_is_fully_annotated(path: Path) -> None:
    gaps = _missing_annotations(ast.parse(path.read_text()))
    assert gaps == [], f"unannotated functions in {path.name}: {gaps}"


def test_dist_has_no_type_ignores() -> None:
    offenders = [
        f"{path.relative_to(SRC)}:{lineno}"
        for path in sorted((SRC / "repro/dist").rglob("*.py"))
        for lineno, line in enumerate(path.read_text().splitlines(), start=1)
        if "type: ignore" in line
    ]
    assert offenders == []


def test_mypy_strict_config_covers_the_trees() -> None:
    pyproject = (SRC.parent / "pyproject.toml").read_text()
    assert "[tool.mypy]" in pyproject
    assert "strict = true" in pyproject
    for tree in STRICT_TREES:
        assert f"src/{tree}" in pyproject
