"""Telemetry wired through real exhaustive campaigns.

These are the acceptance tests for the observability PR: a mini campaign
run with a journal must yield per-(layer, bit) cell wall times, overall
faults/sec, and worker utilisation via ``summarize_journal``; a killed +
resumed campaign must journal a ``checkpoint_resume`` event while the
output table stays bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import FaultSpace, InferenceEngine, OutcomeTable
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.telemetry import (
    Journal,
    Telemetry,
    read_journal,
    summarize_journal,
)


@pytest.fixture(scope="module")
def campaign_setup():
    """A tiny model + eval set + float16 space (fast exhaustive runs)."""
    model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
    model.eval()
    data = SynthCIFAR("test", size=8, seed=42)
    engine = InferenceEngine(model, data.images, data.labels, fmt=FLOAT16)
    space = FaultSpace(engine.layers, fmt=FLOAT16)
    return engine, space


@pytest.fixture(scope="module")
def serial_table(campaign_setup):
    engine, space = campaign_setup
    return OutcomeTable.from_exhaustive(engine, space, workers=1)


def assert_tables_identical(a: OutcomeTable, b: OutcomeTable) -> None:
    assert a.num_layers == b.num_layers
    for left, right in zip(a.outcomes, b.outcomes):
        assert np.array_equal(left, right)


def run_with_journal(engine, space, path, *, workers=1, **kwargs):
    telemetry = Telemetry(journal=Journal(path))
    table = OutcomeTable.from_exhaustive(
        engine, space, workers=workers, telemetry=telemetry, **kwargs
    )
    return table, telemetry, read_journal(path)


class TestSerialCampaignJournal:
    def test_journal_covers_every_cell(
        self, campaign_setup, serial_table, tmp_path
    ):
        engine, space = campaign_setup
        table, telemetry, events = run_with_journal(
            engine, space, tmp_path / "serial.jsonl"
        )
        assert_tables_identical(serial_table, table)

        types = [e.type for e in events]
        assert types[0] == "campaign_start"
        assert types[-1] == "campaign_end"
        cells_total = len(space.layers) * space.bits
        assert types.count("cell_start") == cells_total
        assert types.count("cell_done") == cells_total

        start = events[0]
        assert start.fields["kind"] == "exhaustive"
        assert start.fields["total"] == space.total_population
        assert start.fields["cells_total"] == cells_total
        end = events[-1]
        assert end.fields["elapsed_seconds"] > 0
        assert end.fields["faults"] == space.total_population

        # Every (layer, bit) cell appears exactly once, with its own
        # wall time and population.
        done = {
            (e.fields["layer"], e.fields["bit"]): e.fields for e in events
            if e.type == "cell_done"
        }
        assert len(done) == cells_total
        for layer_idx, layer in enumerate(space.layers):
            for bit in range(space.bits):
                fields = done[(layer_idx, bit)]
                assert fields["seconds"] >= 0
                assert fields["faults"] == layer.size * len(space.fault_models)
                assert fields["inferences"] > 0

        # The parent-side registry aggregates the same cells.
        assert telemetry.metrics.counter("campaign.cells_computed").value == (
            cells_total
        )
        assert telemetry.metrics.counter("campaign.faults_classified").value == (
            space.total_population
        )
        assert telemetry.metrics.timer("campaign.cell_seconds").count == (
            cells_total
        )

    def test_progress_events_reach_total(self, campaign_setup, tmp_path):
        engine, space = campaign_setup
        _, _, events = run_with_journal(
            engine, space, tmp_path / "progress.jsonl", progress_every=1
        )
        dones = [e.fields["done"] for e in events if e.type == "progress"]
        assert dones == sorted(dones)
        assert dones[-1] == space.total_population

    def test_legacy_progress_callback_still_works_but_warns(
        self, campaign_setup, tmp_path
    ):
        engine, space = campaign_setup
        calls = []
        with pytest.warns(DeprecationWarning, match="progress"):
            OutcomeTable.from_exhaustive(
                engine,
                space,
                progress=lambda done, total: calls.append((done, total)),
                progress_every=1,
            )
        assert calls[-1] == (space.total_population, space.total_population)


class TestParallelCampaignJournal:
    def test_workers_share_the_journal(
        self, campaign_setup, serial_table, tmp_path
    ):
        engine, space = campaign_setup
        path = tmp_path / "parallel.jsonl"
        table, _, events = run_with_journal(engine, space, path, workers=2)
        assert_tables_identical(serial_table, table)

        cells_total = len(space.layers) * space.bits
        done = [e for e in events if e.type == "cell_done"]
        assert len(done) == cells_total
        assert {(e.fields["layer"], e.fields["bit"]) for e in done} == {
            (layer, bit)
            for layer in range(len(space.layers))
            for bit in range(space.bits)
        }
        heartbeats = [e for e in events if e.type == "worker_heartbeat"]
        assert heartbeats, "workers never heartbeat"
        # cell_done events were written by the worker processes.
        parent_pid = events[0].pid
        worker_pids = {e.pid for e in done}
        assert parent_pid not in worker_pids

    def test_summary_reconstructs_campaign(self, campaign_setup, tmp_path):
        engine, space = campaign_setup
        path = tmp_path / "summary.jsonl"
        run_with_journal(engine, space, path, workers=2)

        summaries = summarize_journal(path)
        assert len(summaries) == 1
        summary = summaries[0]
        assert summary.kind == "exhaustive"
        assert summary.finished
        cells_total = len(space.layers) * space.bits
        assert len(summary.cells) == cells_total
        assert len(summary.cell_seconds()) == cells_total
        assert summary.faults_classified == space.total_population
        assert summary.faults_per_second > 0
        assert summary.inferences_per_second > 0
        assert summary.checkpoint_writes == 0

        assert summary.workers, "no per-worker stats reconstructed"
        for worker in summary.workers:
            assert worker.cells > 0
            assert worker.busy_seconds > 0
            assert 0 < worker.utilisation <= 1.0
        assert sum(w.cells for w in summary.workers) == cells_total

        slowest = summary.slowest_cells(5)
        assert len(slowest) == 5
        seconds = [cell.seconds for cell in slowest]
        assert seconds == sorted(seconds, reverse=True)


class _KillAfter:
    """on_event hook that simulates a crash after *n* progress events."""

    def __init__(self, n: int) -> None:
        self.remaining = n

    def __call__(self, event) -> None:
        if event.type != "progress":
            return
        self.remaining -= 1
        if self.remaining <= 0:
            raise KeyboardInterrupt("simulated kill")


class TestResumeJournal:
    def test_resume_event_recorded_and_table_bit_identical(
        self, campaign_setup, serial_table, tmp_path
    ):
        engine, space = campaign_setup
        checkpoint = tmp_path / "campaign.ckpt"
        path = tmp_path / "resume.jsonl"

        first = Telemetry(
            journal=Journal(path), on_event=_KillAfter(3)
        )
        with pytest.raises(KeyboardInterrupt):
            OutcomeTable.from_exhaustive(
                engine,
                space,
                checkpoint=checkpoint,
                telemetry=first,
                progress_every=1,
            )
        killed_events = read_journal(path)
        written = [e for e in killed_events if e.type == "checkpoint_write"]
        assert written, "kill happened before any chunk was persisted"
        assert all(e.fields["bytes"] > 0 for e in written)
        # Killed run: campaign_start but no campaign_end.
        first_run = [e for e in killed_events if e.run_id == first.run_id]
        assert first_run[0].type == "campaign_start"
        assert "campaign_end" not in {e.type for e in first_run}

        second = Telemetry(journal=Journal(path))
        resumed = OutcomeTable.from_exhaustive(
            engine, space, checkpoint=checkpoint, telemetry=second
        )
        assert_tables_identical(serial_table, resumed)

        events = [
            e for e in read_journal(path) if e.run_id == second.run_id
        ]
        resume = [e for e in events if e.type == "checkpoint_resume"]
        assert len(resume) == 1
        cells_total = len(space.layers) * space.bits
        assert resume[0].fields["cells_resumed"] == len(written)
        assert resume[0].fields["cells_total"] == cells_total
        assert 0 < resume[0].fields["cells_resumed"] < cells_total
        # Only the remaining cells were recomputed.
        done = [e for e in events if e.type == "cell_done"]
        assert len(done) == cells_total - len(written)
        end = [e for e in events if e.type == "campaign_end"]
        assert end and end[0].fields["cells_resumed"] == len(written)

        summary = next(
            s
            for s in summarize_journal(path)
            if s.run_id == second.run_id
        )
        assert summary.resumed
        assert summary.cells_resumed == len(written)
        assert summary.resume_hit_rate == pytest.approx(
            len(written) / cells_total
        )


class TestEngineTelemetry:
    def test_classify_many_counts_and_spans(self, campaign_setup, tmp_path):
        _, space = campaign_setup
        model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 4, 6), seed=3)
        model.eval()
        data = SynthCIFAR("test", size=8, seed=42)
        telemetry = Telemetry(journal=Journal(tmp_path / "engine.jsonl"))
        engine = InferenceEngine(
            model, data.images, data.labels, fmt=FLOAT16, telemetry=telemetry
        )
        faults = list(space.iter_layer(0))[:4]
        engine.classify_many(faults)
        assert telemetry.metrics.counter("engine.faults_classified").value == 4
        # Masked faults short-circuit before inference, so the span count
        # tracks actual inferences, not the batch size.
        inference_spans = telemetry.metrics.timer("span.engine.inference")
        assert inference_spans.count == engine.inference_count > 0
        events = read_journal(tmp_path / "engine.jsonl")
        spans = [e for e in events if e.type == "span"]
        assert len(spans) == 1
        assert spans[0].fields["name"] == "engine.classify_many"
        assert spans[0].fields["faults"] == 4

    def test_no_telemetry_emits_no_warning(self, campaign_setup):
        engine, space = campaign_setup
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            OutcomeTable.from_exhaustive(engine, space)
