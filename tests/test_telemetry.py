"""Unit tests for the repro.telemetry building blocks."""

from __future__ import annotations

import json

import pytest

from repro.store import atomic_append_line
from repro.telemetry import (
    NULL_SPAN,
    NULL_TELEMETRY,
    Event,
    Journal,
    MetricsRegistry,
    NullTelemetry,
    Telemetry,
    progress_printer,
    read_journal,
    resolve_telemetry,
    summarize_journal,
)


class TestEvents:
    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            Event.now("campain_start", "r1")  # typo must fail loudly

    def test_json_roundtrip_preserves_fields(self):
        event = Event.now("cell_done", "r1", layer=3, bit=17, seconds=0.25)
        back = Event.from_json(event.to_json())
        assert back == event
        assert back.fields == {"layer": 3, "bit": 17, "seconds": 0.25}

    def test_monotonic_and_wall_clocks_present(self):
        a = Event.now("progress", "r1", done=1, total=2)
        b = Event.now("progress", "r1", done=2, total=2)
        assert b.t >= a.t
        assert a.wall > 1e9  # unix epoch, not monotonic


class TestAtomicAppend:
    def test_appends_whole_lines(self, tmp_path):
        path = tmp_path / "sub" / "log.jsonl"
        atomic_append_line(path, "one")
        atomic_append_line(path, "two\n")
        assert path.read_text() == "one\ntwo\n"


class TestJournal:
    def test_emit_and_read_roundtrip(self, tmp_path):
        journal = Journal(tmp_path / "j.jsonl", run_id="abc")
        journal.emit("campaign_start", kind="exhaustive", total=10)
        journal.emit("campaign_end", elapsed_seconds=1.0)
        events = journal.read()
        assert [e.type for e in events] == ["campaign_start", "campaign_end"]
        assert all(e.run_id == "abc" for e in events)
        assert events[0].fields["total"] == 10

    def test_torn_final_line_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = Journal(path, run_id="abc")
        journal.emit("campaign_start", kind="exhaustive")
        intact = path.read_text()
        # Simulate a crash mid-append: a truncated JSON record.
        path.write_text(intact + '{"type": "campaign_end", "run')
        events = read_journal(path)
        assert [e.type for e in events] == ["campaign_start"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_journal(tmp_path / "absent.jsonl") == []

    def test_two_journals_interleave_without_corruption(self, tmp_path):
        # Same file, two writers (what parent + fork workers do).
        path = tmp_path / "shared.jsonl"
        a = Journal(path, run_id="run-a")
        b = Journal(path, run_id="run-b")
        for i in range(10):
            a.emit("progress", done=i, total=10)
            b.emit("worker_heartbeat", cells_done=i)
        events = read_journal(path)
        assert len(events) == 20
        assert {e.run_id for e in events} == {"run-a", "run-b"}


class TestMetricsRegistry:
    def test_counter_gauge_timer_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("faults").add(5)
        registry.counter("faults").add(2)
        registry.gauge("workers").set(4)
        registry.timer("cell").observe(0.5)
        registry.timer("cell").observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"]["faults"] == 7
        assert snap["gauges"]["workers"] == 4.0
        timer = snap["timers"]["cell"]
        assert timer["count"] == 2
        assert timer["total_seconds"] == pytest.approx(2.0)
        assert timer["mean_seconds"] == pytest.approx(1.0)
        assert timer["min_seconds"] == pytest.approx(0.5)
        assert timer["max_seconds"] == pytest.approx(1.5)

    def test_timer_context_manager_observes(self):
        registry = MetricsRegistry()
        with registry.timer("t").time():
            pass
        assert registry.timer("t").count == 1

    def test_save_writes_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").add(3)
        out = tmp_path / "metrics.json"
        registry.save(out)
        assert json.loads(out.read_text())["counters"]["n"] == 3


class TestTelemetry:
    def test_span_lands_in_registry(self):
        tele = Telemetry()
        with tele.span("work"):
            pass
        assert tele.metrics.timer("span.work").count == 1

    def test_span_emit_journals_event(self, tmp_path):
        tele = Telemetry(journal=Journal(tmp_path / "j.jsonl"))
        with tele.span("phase", emit=True, layer=2):
            pass
        events = read_journal(tmp_path / "j.jsonl")
        assert len(events) == 1
        assert events[0].type == "span"
        assert events[0].fields["name"] == "phase"
        assert events[0].fields["layer"] == 2
        assert events[0].fields["seconds"] >= 0

    def test_span_records_when_body_raises(self):
        tele = Telemetry()
        with pytest.raises(RuntimeError):
            with tele.span("broken"):
                raise RuntimeError("boom")
        assert tele.metrics.timer("span.broken").count == 1

    def test_on_event_hook_fires(self):
        seen = []
        tele = Telemetry(on_event=seen.append)
        tele.emit("progress", done=1, total=2)
        assert [e.type for e in seen] == ["progress"]

    def test_progress_printer_prints_progress_only(self, capsys):
        hook = progress_printer("  exhaustive")
        tele = Telemetry(on_event=hook)
        tele.emit("progress", done=1000, total=2000)
        tele.emit("worker_heartbeat", cells_done=1)
        out = capsys.readouterr().out
        assert out == "  exhaustive: 1,000/2,000\n"

    def test_save_metrics(self, tmp_path):
        tele = Telemetry()
        tele.counter("x").add(1)
        tele.save_metrics(tmp_path / "m.json")
        assert (tmp_path / "m.json").is_file()


class TestNullTelemetry:
    def test_resolve_none_returns_shared_null(self):
        assert resolve_telemetry(None) is NULL_TELEMETRY
        tele = Telemetry()
        assert resolve_telemetry(tele) is tele

    def test_disabled_and_inert(self, tmp_path):
        null = NullTelemetry()
        assert null.enabled is False
        assert null.emit("campaign_start") is None
        assert null.span("anything") is NULL_SPAN
        with null.span("anything"):
            pass
        null.save_metrics(tmp_path / "never.json")
        assert not (tmp_path / "never.json").exists()

    def test_null_span_is_shared_not_allocated(self):
        null = NullTelemetry()
        assert null.span("a") is null.span("b")


class TestSummarizeMultiCampaignRun:
    def test_one_run_id_two_campaigns_split(self, tmp_path):
        # One CLI invocation = one run id, but e.g. an exhaustive
        # ground-truth run followed by the sampled campaign.  Merging
        # them would blend both throughputs into nonsense.
        tele = Telemetry(journal=Journal(tmp_path / "j.jsonl"))
        with tele.span("plan.compute", emit=True):
            pass  # pre-campaign work rides with the first campaign
        tele.emit("campaign_start", kind="exhaustive", total=100)
        tele.emit("cell_done", layer=0, bit=0, seconds=1.0, faults=100)
        tele.emit("campaign_end", elapsed_seconds=1.0, faults=100)
        tele.emit("campaign_start", kind="sampled", total=10)
        tele.emit("campaign_end", elapsed_seconds=0.5, injections=10)

        summaries = summarize_journal(tmp_path / "j.jsonl")
        assert len(summaries) == 2
        exhaustive, sampled = summaries
        assert exhaustive.run_id == sampled.run_id == tele.run_id
        assert exhaustive.kind == "exhaustive"
        assert exhaustive.faults_classified == 100
        assert exhaustive.spans and exhaustive.spans[0].name == "plan.compute"
        assert sampled.kind == "sampled"
        assert sampled.faults_classified == 0
        assert sampled.elapsed_seconds == 0.5
        assert not sampled.cells


class TestSummarizePathologicalJournals:
    """Damaged journals are a summarising problem, never a crash."""

    def test_empty_journal_summarises_to_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert summarize_journal(path) == []
        assert summarize_journal([]) == []

    def test_torn_only_journal_summarises_to_nothing(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            '{"type": "campaign_start", "run\n'
            '{"type": "cell_done", "layer": 0, \n'
            "not json at all\n"
        )
        assert summarize_journal(path) == []

    def test_campaign_without_end_event_summarises(self, tmp_path):
        # A crashed campaign never writes campaign_end; its journal must
        # still summarise (that is exactly when the numbers matter).
        tele = Telemetry(journal=Journal(tmp_path / "j.jsonl"))
        tele.emit("campaign_start", kind="exhaustive", total=100)
        tele.emit("cell_start", layer=0, bit=0)
        tele.emit("cell_done", layer=0, bit=0, seconds=1.0, faults=100)
        summaries = summarize_journal(tmp_path / "j.jsonl")
        assert len(summaries) == 1
        summary = summaries[0]
        assert not summary.finished
        assert summary.faults_classified == 100

    def test_cell_start_without_done_summarises(self, tmp_path):
        tele = Telemetry(journal=Journal(tmp_path / "j.jsonl"))
        tele.emit("campaign_start", kind="exhaustive", total=100)
        tele.emit("cell_start", layer=0, bit=0)
        tele.emit("cell_start", layer=0, bit=1)
        summaries = summarize_journal(tmp_path / "j.jsonl")
        assert len(summaries) == 1
        assert summaries[0].faults_classified == 0

    def test_work_events_without_campaign_start_summarise(self, tmp_path):
        # A worker journal whose campaign_start record was torn away.
        tele = Telemetry(journal=Journal(tmp_path / "j.jsonl"))
        tele.emit("cell_done", layer=1, bit=3, seconds=0.5, faults=50)
        tele.emit("worker_heartbeat", cells_done=1)
        summaries = summarize_journal(tmp_path / "j.jsonl")
        assert len(summaries) == 1
        assert summaries[0].faults_classified == 50

    def test_span_missing_fields_summarises(self, tmp_path):
        tele = Telemetry(journal=Journal(tmp_path / "j.jsonl"))
        tele.emit("campaign_start", kind="exhaustive", total=10)
        tele.emit("span")  # neither name nor seconds
        tele.emit("cell_done", layer=0, bit=0)  # no seconds/faults
        summaries = summarize_journal(tmp_path / "j.jsonl")
        assert len(summaries) == 1


class TestSummarizeTrainJournal:
    def test_trainer_epochs_journaled(self, tmp_path):
        import numpy as np

        from repro.models import ResNetCIFAR
        from repro.train.trainer import TrainConfig, Trainer

        rng = np.random.default_rng(0)
        images = rng.standard_normal((24, 3, 8, 8)).astype(np.float32)
        labels = rng.integers(0, 10, size=24)
        model = ResNetCIFAR(blocks_per_stage=1, widths=(2, 2, 2), seed=0)
        tele = Telemetry(journal=Journal(tmp_path / "train.jsonl"))
        trainer = Trainer(
            model, TrainConfig(epochs=2, batch_size=8, seed=0), telemetry=tele
        )
        trainer.fit(images, labels)
        events = read_journal(tmp_path / "train.jsonl")
        types = [e.type for e in events]
        assert types.count("epoch_done") == 2
        assert types[0] == "campaign_start"
        assert types[-1] == "campaign_end"
        assert tele.metrics.counter("train.samples").value == 48
        summary = summarize_journal(events)[0]
        assert summary.kind == "train"
        assert summary.finished
        span_names = {s.name for s in summary.spans}
        assert "train.epoch" in span_names
