"""Tests for repro.ieee754.bits (incl. property-based)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ieee754 import (
    FLOAT16,
    FLOAT32,
    apply_stuck_at,
    clear_bit,
    corrupt_value,
    flip_bit,
    get_bit,
    set_bit,
)

finite_floats = st.floats(allow_nan=False, allow_infinity=False, width=32)


class TestBasics:
    def test_get_bit_of_one(self):
        bits = FLOAT32.encode(np.array([1.0]))  # 0x3F800000
        assert get_bit(FLOAT32, bits, 31)[0] == 0
        assert get_bit(FLOAT32, bits, 30)[0] == 0
        for bit in range(23, 30):
            assert get_bit(FLOAT32, bits, bit)[0] == 1
        for bit in range(0, 23):
            assert get_bit(FLOAT32, bits, bit)[0] == 0

    def test_set_clear_flip_sign(self):
        bits = FLOAT32.encode(np.array([2.5]))
        negated = set_bit(FLOAT32, bits, 31)
        assert FLOAT32.decode(negated)[0] == -2.5
        assert FLOAT32.decode(clear_bit(FLOAT32, negated, 31))[0] == 2.5
        assert FLOAT32.decode(flip_bit(FLOAT32, bits, 31))[0] == -2.5

    def test_stuck_at(self):
        bits = FLOAT32.encode(np.array([1.0]))
        sa1 = apply_stuck_at(FLOAT32, bits, 30, 1)
        assert FLOAT32.decode(sa1)[0] > 1e30  # exponent explodes
        sa0 = apply_stuck_at(FLOAT32, bits, 30, 0)
        assert sa0[0] == bits[0]  # bit already 0 -> masked

    def test_stuck_value_validation(self):
        bits = FLOAT32.encode(np.array([1.0]))
        with pytest.raises(ValueError, match="stuck_value"):
            apply_stuck_at(FLOAT32, bits, 0, 2)

    def test_bit_range_validation(self):
        bits = FLOAT32.encode(np.array([1.0]))
        with pytest.raises(ValueError):
            flip_bit(FLOAT32, bits, 32)
        with pytest.raises(ValueError):
            get_bit(FLOAT32, bits, -1)

    def test_vectorised_over_words_and_bits(self):
        bits = FLOAT32.encode(np.array([1.0, 2.0, 3.0, 4.0]))
        flipped = flip_bit(FLOAT32, bits, np.array([0, 1, 2, 3]))
        assert flipped.shape == (4,)
        assert all(flipped != bits)

    def test_float16_operations(self):
        bits = FLOAT16.encode(np.array([1.0]))
        assert FLOAT16.decode(flip_bit(FLOAT16, bits, 15))[0] == -1.0

    def test_corrupt_value_scalar(self):
        assert corrupt_value(FLOAT32, 1.0, 31, stuck_value=1) == -1.0
        assert corrupt_value(FLOAT32, 1.0, 31, stuck_value=0) == 1.0
        assert corrupt_value(FLOAT32, -1.0, 31) == 1.0  # transient flip

    def test_corrupt_value_mantissa_lsb_is_tiny(self):
        faulty = corrupt_value(FLOAT32, 1.0, 0, stuck_value=1)
        assert faulty != 1.0
        assert abs(faulty - 1.0) < 1e-6


class TestProperties:
    @given(value=finite_floats, bit=st.integers(0, 31))
    @settings(max_examples=200, deadline=None)
    def test_flip_is_involution(self, value, bit):
        bits = FLOAT32.encode(np.array([value]))
        twice = flip_bit(FLOAT32, flip_bit(FLOAT32, bits, bit), bit)
        assert twice[0] == bits[0]

    @given(value=finite_floats, bit=st.integers(0, 31), stuck=st.integers(0, 1))
    @settings(max_examples=200, deadline=None)
    def test_stuck_at_is_idempotent(self, value, bit, stuck):
        bits = FLOAT32.encode(np.array([value]))
        once = apply_stuck_at(FLOAT32, bits, bit, stuck)
        twice = apply_stuck_at(FLOAT32, once, bit, stuck)
        assert once[0] == twice[0]
        assert get_bit(FLOAT32, once, bit)[0] == stuck

    @given(value=finite_floats, bit=st.integers(0, 31))
    @settings(max_examples=200, deadline=None)
    def test_flip_changes_exactly_one_bit(self, value, bit):
        bits = FLOAT32.encode(np.array([value]))
        flipped = flip_bit(FLOAT32, bits, bit)
        xor = int(bits[0]) ^ int(flipped[0])
        assert xor == 1 << bit

    @given(value=finite_floats, bit=st.integers(0, 31))
    @settings(max_examples=200, deadline=None)
    def test_exactly_one_stuck_at_is_masked(self, value, bit):
        bits = FLOAT32.encode(np.array([value]))
        sa0 = apply_stuck_at(FLOAT32, bits, bit, 0)
        sa1 = apply_stuck_at(FLOAT32, bits, bit, 1)
        masked = (sa0[0] == bits[0]) + (sa1[0] == bits[0])
        assert masked == 1

    @given(value=finite_floats, bit=st.integers(0, 30))
    @settings(max_examples=200, deadline=None)
    def test_flip_preserves_sign_for_non_sign_bits(self, value, bit):
        bits = FLOAT32.encode(np.array([value]))
        flipped = flip_bit(FLOAT32, bits, bit)
        original = FLOAT32.decode(bits)[0]
        corrupted = FLOAT32.decode(flipped)[0]
        if not np.isnan(corrupted) and original != 0.0 and corrupted != 0.0:
            assert np.sign(corrupted) == np.sign(original)
