"""Tests for repro.ieee754.formats."""

import numpy as np
import pytest

from repro.ieee754 import BFLOAT16, FLOAT16, FLOAT32, BitRole, FloatFormat, format_by_name


class TestLayout:
    def test_float32_layout(self):
        assert FLOAT32.total_bits == 32
        assert FLOAT32.sign_bit == 31
        assert list(FLOAT32.exponent_slice) == list(range(23, 31))
        assert list(FLOAT32.mantissa_slice) == list(range(0, 23))
        assert FLOAT32.bias == 127

    def test_float16_layout(self):
        assert FLOAT16.total_bits == 16
        assert FLOAT16.sign_bit == 15
        assert FLOAT16.bias == 15
        assert len(list(FLOAT16.exponent_slice)) == 5

    def test_bfloat16_layout(self):
        assert BFLOAT16.total_bits == 16
        assert BFLOAT16.bias == 127  # same exponent range as float32
        assert len(list(BFLOAT16.exponent_slice)) == 8

    def test_inconsistent_layout_rejected(self):
        with pytest.raises(ValueError):
            FloatFormat(name="bad", total_bits=32, exponent_bits=8, mantissa_bits=22)

    def test_bit_roles(self):
        assert FLOAT32.bit_role(31) is BitRole.SIGN
        assert FLOAT32.bit_role(30) is BitRole.EXPONENT
        assert FLOAT32.bit_role(23) is BitRole.EXPONENT
        assert FLOAT32.bit_role(22) is BitRole.MANTISSA
        assert FLOAT32.bit_role(0) is BitRole.MANTISSA

    def test_bit_role_out_of_range(self):
        with pytest.raises(ValueError):
            FLOAT32.bit_role(32)
        with pytest.raises(ValueError):
            FLOAT32.bit_role(-1)

    def test_max_finite(self):
        assert FLOAT32.max_finite == pytest.approx(3.4028235e38, rel=1e-6)
        assert FLOAT16.max_finite == pytest.approx(65504.0)

    def test_uint_dtype(self):
        assert FLOAT32.uint_dtype == np.dtype("uint32")
        assert FLOAT16.uint_dtype == np.dtype("uint16")
        assert BFLOAT16.uint_dtype == np.dtype("uint16")


class TestCodec:
    @pytest.mark.parametrize("fmt", [FLOAT32, FLOAT16, BFLOAT16])
    def test_roundtrip_simple_values(self, fmt):
        values = np.array([0.0, 1.0, -1.0, 0.5, -2.0, 1024.0])
        decoded = fmt.decode(fmt.encode(values))
        np.testing.assert_array_equal(decoded, values)

    def test_float32_bit_pattern_of_one(self):
        bits = FLOAT32.encode(np.array([1.0]))
        assert bits[0] == 0x3F800000

    def test_float16_bit_pattern_of_one(self):
        bits = FLOAT16.encode(np.array([1.0]))
        assert bits[0] == 0x3C00

    def test_bfloat16_bit_pattern_of_one(self):
        bits = BFLOAT16.encode(np.array([1.0]))
        assert bits[0] == 0x3F80

    def test_bfloat16_round_to_nearest_even(self):
        # 1.0 + 2^-8 is exactly halfway between two bfloat16 values; RNE
        # rounds to the even mantissa (i.e. back down to 1.0).
        value = np.array([1.0 + 2.0**-8])
        assert BFLOAT16.decode(BFLOAT16.encode(value))[0] == 1.0
        # Slightly above the midpoint rounds up.
        value = np.array([1.0 + 2.0**-8 + 2.0**-12])
        assert BFLOAT16.decode(BFLOAT16.encode(value))[0] == pytest.approx(
            1.0078125
        )

    def test_decode_preserves_shape(self):
        values = np.ones((2, 3, 4), dtype=np.float32)
        assert FLOAT32.encode(values).shape == (2, 3, 4)
        assert FLOAT32.decode(FLOAT32.encode(values)).shape == (2, 3, 4)

    def test_decode_native_dtypes(self):
        bits32 = FLOAT32.encode(np.array([1.5]))
        assert FLOAT32.decode_native(bits32).dtype == np.float32
        bits16 = FLOAT16.encode(np.array([1.5]))
        assert FLOAT16.decode_native(bits16).dtype == np.float16
        bitsbf = BFLOAT16.encode(np.array([1.5]))
        assert BFLOAT16.decode_native(bitsbf).dtype == np.float32

    def test_nan_and_inf_decode(self):
        inf_bits = np.array([0x7F800000], dtype=np.uint32)
        assert np.isinf(FLOAT32.decode(inf_bits)[0])
        nan_bits = np.array([0x7FC00000], dtype=np.uint32)
        assert np.isnan(FLOAT32.decode(nan_bits)[0])


class TestRegistry:
    def test_lookup(self):
        assert format_by_name("float32") is FLOAT32
        assert format_by_name("bfloat16") is BFLOAT16

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown float format"):
            format_by_name("float8")
