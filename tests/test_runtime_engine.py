"""PlanEngine: bit-identical outcomes, batching accounting, fingerprints."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    Fault,
    FaultModel,
    FaultInjectionEngine,
    FaultOutcome,
    InferenceEngine,
)
from repro.ieee754 import FLOAT16
from repro.models import ResNetCIFAR
from repro.runtime import DEFAULT_BATCH_SIZE, PlanEngine, create_engine
from repro.telemetry import Telemetry


@pytest.fixture(scope="module")
def engines(tiny_model, tiny_eval_set):
    images, labels = tiny_eval_set
    return (
        InferenceEngine(tiny_model, images, labels),
        PlanEngine(tiny_model, images, labels, batch_size=8),
    )


def _random_faults(engine, count, seed, models=tuple(FaultModel)):
    rng = np.random.default_rng(seed)
    faults = []
    for model in models:
        for _ in range(count):
            layer = int(rng.integers(len(engine.layers)))
            faults.append(
                Fault(
                    layer=layer,
                    index=int(rng.integers(engine.layers[layer].size)),
                    bit=int(rng.integers(32)),
                    model=model,
                )
            )
    return faults


class TestPlanMatchesModule:
    def test_golden_state_identical(self, engines):
        module_engine, plan_engine = engines
        np.testing.assert_array_equal(
            module_engine.golden_predictions, plan_engine.golden_predictions
        )
        assert module_engine.golden_accuracy == plan_engine.golden_accuracy

    def test_outcomes_identical_across_fault_models(self, engines):
        module_engine, plan_engine = engines
        faults = _random_faults(module_engine, 30, seed=5)
        assert plan_engine.classify_many(faults) == (
            module_engine.classify_many(faults)
        )

    def test_batched_predictions_bitwise_equal(self, engines):
        """Stacked tail passes return exactly the unbatched predictions."""
        module_engine, plan_engine = engines
        rng = np.random.default_rng(9)
        for layer in range(len(module_engine.layers)):
            faults = [
                Fault(
                    layer=layer,
                    index=int(rng.integers(module_engine.layers[layer].size)),
                    bit=int(rng.integers(20, 32)),
                    model=FaultModel.BIT_FLIP,
                )
                for _ in range(6)
            ]
            batched = plan_engine.predictions_for_faults(faults)
            reference = np.stack(
                [module_engine.predictions_with_fault(f) for f in faults]
            )
            np.testing.assert_array_equal(batched, reference)

    def test_single_fault_path(self, engines):
        module_engine, plan_engine = engines
        fault = Fault(layer=0, index=0, bit=30, model=FaultModel.BIT_FLIP)
        np.testing.assert_array_equal(
            plan_engine.predictions_with_fault(fault),
            module_engine.predictions_with_fault(fault),
        )

    def test_empty_batch(self, engines):
        _, plan_engine = engines
        assert plan_engine.predictions_for_faults([]).shape == (
            0,
            len(plan_engine.images),
        )


class TestInferenceAccounting:
    def test_batched_pass_counts_logical_inferences(
        self, tiny_model, tiny_eval_set
    ):
        """A tail pass covering K faults counts K inferences (satellite:
        faults/sec stays comparable across engines)."""
        images, labels = tiny_eval_set
        engine = PlanEngine(tiny_model, images, labels, batch_size=8)
        faults = [
            Fault(layer=1, index=i, bit=24, model=FaultModel.BIT_FLIP)
            for i in range(8)
        ]
        engine.classify_many(faults)
        assert engine.inference_count == 8
        assert engine.tail_passes == 1

    def test_op_cache_accounting(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        engine = PlanEngine(tiny_model, images, labels, batch_size=4)
        last_layer = len(engine.layers) - 1
        fault = Fault(
            layer=last_layer, index=0, bit=30, model=FaultModel.BIT_FLIP
        )
        engine.classify(fault)
        # The classifier is the last op: nothing downstream to recompute,
        # every other op served from the golden cache.
        assert engine.tail_passes == 1
        assert engine.ops_executed == 0
        assert engine.ops_cached == len(engine.plan.ops) - 1

    def test_telemetry_counts_inferences_and_spans(
        self, tiny_model, tiny_eval_set
    ):
        images, labels = tiny_eval_set
        tele = Telemetry(run_id="test-plan-engine")
        engine = PlanEngine(
            tiny_model, images, labels, batch_size=8, telemetry=tele
        )
        faults = [
            Fault(layer=1, index=i, bit=24, model=FaultModel.BIT_FLIP)
            for i in range(5)
        ]
        engine.classify_many(faults)
        assert tele.metrics.counter("engine.inferences").value == 5
        assert tele.metrics.counter("engine.faults_classified").value == 5
        timers = tele.metrics.snapshot()["timers"]
        assert any(name.startswith("span.plan.op.") for name in timers)

    def test_module_engine_counts_via_shared_counter(
        self, tiny_model, tiny_eval_set
    ):
        images, labels = tiny_eval_set
        tele = Telemetry(run_id="test-module-engine")
        engine = InferenceEngine(tiny_model, images, labels, telemetry=tele)
        fault = Fault(layer=0, index=0, bit=30, model=FaultModel.BIT_FLIP)
        engine.classify(fault)
        assert tele.metrics.counter("engine.inferences").value == 1
        assert engine.inference_count == 1


class TestFingerprint:
    def test_fingerprint_covers_engine_identity(self, tiny_model, tiny_eval_set):
        """Same weights/images, different classification config -> different
        fingerprints (satellite: fmt/policy/threshold/kind/fusions are in
        the hash)."""
        images, labels = tiny_eval_set
        base = InferenceEngine(tiny_model, images, labels)
        variants = [
            InferenceEngine(tiny_model, images, labels, policy="any_mismatch"),
            InferenceEngine(
                tiny_model,
                images,
                labels,
                policy="accuracy_threshold",
                threshold=0.25,
            ),
            InferenceEngine(tiny_model, images, labels, fmt=FLOAT16),
            PlanEngine(tiny_model, images, labels),
            PlanEngine(tiny_model, images, labels, fuse=True),
        ]
        prints = [base.fingerprint()] + [v.fingerprint() for v in variants]
        assert len(set(prints)) == len(prints), "fingerprint collision"

    def test_fingerprint_stable_across_instances(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        a = PlanEngine(tiny_model, images, labels)
        b = PlanEngine(tiny_model, images, labels, batch_size=4)
        # batch_size is an execution detail, not an outcome-changing one.
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_tracks_weights(self, tiny_eval_set):
        images, labels = tiny_eval_set
        model_a = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=1)
        model_b = ResNetCIFAR(blocks_per_stage=1, widths=(4, 6, 8), seed=2)
        a = PlanEngine(model_a.eval(), images, labels)
        b = PlanEngine(model_b.eval(), images, labels)
        assert a.fingerprint() != b.fingerprint()


class TestCreateEngine:
    def test_default_is_plan(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        engine = create_engine(tiny_model, images, labels)
        assert isinstance(engine, PlanEngine)
        assert engine.kind == "plan"
        assert engine.batch_size == DEFAULT_BATCH_SIZE
        assert isinstance(engine, FaultInjectionEngine)

    def test_module_kind(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        engine = create_engine(tiny_model, images, labels, kind="module")
        assert isinstance(engine, InferenceEngine)
        assert engine.kind == "module"
        assert engine.batch_size == 1

    def test_fused_plan(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        engine = create_engine(tiny_model, images, labels, fuse=True)
        assert engine.fusions == ("bn_fold", "im2col_workspace")

    def test_module_refuses_fusion(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError, match="plan-engine feature"):
            create_engine(tiny_model, images, labels, kind="module", fuse=True)

    def test_module_refuses_batch_size(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError, match="one at a time"):
            create_engine(
                tiny_model, images, labels, kind="module", batch_size=8
            )

    def test_unknown_kind(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError, match="unknown engine kind"):
            create_engine(tiny_model, images, labels, kind="jit")

    def test_plan_engine_rejects_bad_batch_size(self, tiny_model, tiny_eval_set):
        images, labels = tiny_eval_set
        with pytest.raises(ValueError, match="batch_size"):
            PlanEngine(tiny_model, images, labels, batch_size=0)


class TestFusedOutcomes:
    def test_fused_engine_classifies_all_faults(self, tiny_model, tiny_eval_set):
        """Fused outcomes may legitimately differ; they must still be
        complete and well-formed."""
        images, labels = tiny_eval_set
        engine = PlanEngine(tiny_model, images, labels, fuse=True, batch_size=8)
        faults = _random_faults(engine, 10, seed=3)
        outcomes = engine.classify_many(faults)
        assert len(outcomes) == len(faults)
        assert all(isinstance(o, FaultOutcome) for o in outcomes)
