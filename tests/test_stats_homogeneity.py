"""Tests for repro.stats.homogeneity (the 4th-Bernoulli-assumption check)."""

import numpy as np
import pytest

from repro.stats import chi_square_homogeneity


class TestChiSquareHomogeneity:
    def test_identical_rates_not_rejected(self):
        result = chi_square_homogeneity([1000, 1000], [100, 100])
        assert result.p_value > 0.9
        assert not result.rejects_homogeneity()

    def test_wildly_different_rates_rejected(self):
        result = chi_square_homogeneity([1000, 1000], [10, 500])
        assert result.p_value < 1e-6
        assert result.rejects_homogeneity()

    def test_pooled_rate(self):
        result = chi_square_homogeneity([100, 300], [10, 30])
        assert result.pooled_rate == pytest.approx(0.1)

    def test_degrees_of_freedom(self):
        result = chi_square_homogeneity([50, 50, 50, 50], [5, 6, 4, 5])
        assert result.dof == 3

    def test_degenerate_all_success(self):
        result = chi_square_homogeneity([10, 10], [10, 10])
        assert result.p_value == 1.0
        assert result.statistic == 0.0

    def test_degenerate_no_success(self):
        result = chi_square_homogeneity([10, 10], [0, 0])
        assert result.p_value == 1.0

    def test_sampled_homogeneous_groups_usually_pass(self):
        rng = np.random.default_rng(0)
        trials = [2000] * 5
        successes = [int(rng.binomial(2000, 0.05)) for _ in range(5)]
        result = chi_square_homogeneity(trials, successes)
        assert not result.rejects_homogeneity(alpha=0.001)

    def test_layer_like_heterogeneity_is_detected(self):
        """Mimics the paper's motivation: per-layer criticality differs,
        so pooled (network-wise) Bernoulli sampling is invalid."""
        trials = [5000, 5000, 5000]
        successes = [50, 150, 300]  # 1%, 3%, 6%
        result = chi_square_homogeneity(trials, successes)
        assert result.rejects_homogeneity(alpha=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_homogeneity([100], [10])
        with pytest.raises(ValueError):
            chi_square_homogeneity([100, 0], [10, 0])
        with pytest.raises(ValueError):
            chi_square_homogeneity([100, 100], [10, 200])
        with pytest.raises(ValueError):
            chi_square_homogeneity([100, 100], [10, -1])

    def test_alpha_validation(self):
        result = chi_square_homogeneity([100, 100], [10, 12])
        with pytest.raises(ValueError):
            result.rejects_homogeneity(alpha=0.0)
