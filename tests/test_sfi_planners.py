"""Tests for repro.sfi.planners — including the paper's Table I/II columns."""

import numpy as np
import pytest

from repro.faults import FaultSpace
from repro.models import mobilenetv2, resnet20, resnet8_mini
from repro.paperdata import (
    MOBILENETV2_TOTALS,
    RESNET20_DATA_UNAWARE,
    RESNET20_LAYER_WISE,
    RESNET20_STANDARD_LAYER_PARAMS,
    RESNET20_TOTALS,
)
from repro.sfi import (
    DataAwareSFI,
    DataUnawareSFI,
    Granularity,
    LayerWiseSFI,
    NetworkWiseSFI,
    bit_criticality,
)


@pytest.fixture(scope="module")
def resnet20_space():
    return FaultSpace(resnet20(seed=0))


@pytest.fixture(scope="module")
def mini_space():
    return FaultSpace(resnet8_mini(seed=0))


class TestNetworkWise:
    def test_single_stratum(self, mini_space):
        plan = NetworkWiseSFI().plan(mini_space)
        assert len(plan.items) == 1
        assert plan.granularity is Granularity.NETWORK

    def test_resnet20_total_nearly_paper(self, resnet20_space):
        """Our topology has 10 fewer weights than the paper's table; the
        network-wise n is identical anyway (the FPC washes it out)."""
        plan = NetworkWiseSFI().plan(resnet20_space)
        assert plan.total_injections == RESNET20_TOTALS["network-wise"]


class TestLayerWise:
    def test_one_stratum_per_layer(self, mini_space):
        plan = LayerWiseSFI().plan(mini_space)
        assert len(plan.items) == len(mini_space.layers)

    def test_resnet20_per_layer_matches_paper(self, resnet20_space):
        plan = LayerWiseSFI().plan(resnet20_space)
        for layer, expected in enumerate(RESNET20_LAYER_WISE):
            if RESNET20_STANDARD_LAYER_PARAMS[layer] == 9216 and expected == 16185:
                # Paper's layer-11 anomaly (9,226 vs 9,216 params).
                expected = 16184
            assert plan.layer_injections(layer) == expected

    def test_resnet20_total(self, resnet20_space):
        plan = LayerWiseSFI().plan(resnet20_space)
        # One fewer than the paper's 307,650 due to its layer-11 anomaly.
        assert plan.total_injections == RESNET20_TOTALS["layer-wise"] - 1


class TestDataUnaware:
    def test_strata_count(self, mini_space):
        plan = DataUnawareSFI().plan(mini_space)
        assert len(plan.items) == len(mini_space.layers) * 32

    def test_resnet20_per_layer_matches_paper(self, resnet20_space):
        plan = DataUnawareSFI().plan(resnet20_space)
        for layer, expected in enumerate(RESNET20_DATA_UNAWARE):
            if RESNET20_STANDARD_LAYER_PARAMS[layer] == 9216 and expected == 280_000:
                expected = 279_872  # paper's layer-11 anomaly
            assert plan.layer_injections(layer) == expected

    def test_equal_bits_get_equal_samples(self, resnet20_space):
        plan = DataUnawareSFI().plan(resnet20_space)
        layer0_items = [
            i for i in plan.items if i.subpopulation.layer == 0
        ]
        sizes = {i.sample_size for i in layer0_items}
        assert len(sizes) == 1  # p=0.5 for every bit -> identical n


class TestDataAware:
    def test_smaller_than_data_unaware(self, resnet20_space):
        unaware = DataUnawareSFI().plan(resnet20_space)
        aware = DataAwareSFI().plan(resnet20_space)
        assert aware.total_injections < unaware.total_injections * 0.25

    def test_mantissa_bits_barely_sampled(self, resnet20_space):
        plan = DataAwareSFI().plan(resnet20_space)
        lsb_items = [i for i in plan.items if i.subpopulation.bit == 0]
        assert all(i.sample_size == 0 for i in lsb_items)

    def test_outlier_bit_sampled_at_full_p(self, resnet20_space):
        plan = DataAwareSFI().plan(resnet20_space)
        unaware = DataUnawareSFI().plan(resnet20_space)
        aware_bit30 = sum(
            i.sample_size for i in plan.items if i.subpopulation.bit == 30
        )
        unaware_bit30 = sum(
            i.sample_size for i in unaware.items if i.subpopulation.bit == 30
        )
        assert aware_bit30 == unaware_bit30  # p(30) = 0.5 (outlier)

    def test_explicit_p_vector(self, mini_space):
        p = np.zeros(32)
        p[30] = 0.5
        plan = DataAwareSFI(p=p).plan(mini_space)
        sampled_bits = {
            i.subpopulation.bit for i in plan.items if i.sample_size > 0
        }
        assert sampled_bits == {30}

    def test_p_shape_validated(self, mini_space):
        with pytest.raises(ValueError, match="shape"):
            DataAwareSFI(p=np.zeros(16)).plan(mini_space)

    def test_profile_and_p_mutually_exclusive(self):
        profile = bit_criticality(np.random.default_rng(0).normal(size=100))
        with pytest.raises(ValueError):
            DataAwareSFI(profile=profile, p=np.zeros(32))

    def test_min_samples(self, mini_space):
        plan = DataAwareSFI(min_samples=3).plan(mini_space)
        assert all(
            i.sample_size >= min(3, i.subpopulation.population)
            for i in plan.items
        )

    def test_mobilenet_scale(self):
        """Full-size MobileNetV2 totals: exhaustive matches the paper
        exactly; data-aware lands in the same order of magnitude (the
        prior depends on trained weights we do not have)."""
        space = FaultSpace(mobilenetv2(seed=0))
        assert space.total_population == MOBILENETV2_TOTALS["exhaustive"]
        plan = DataAwareSFI().plan(space)
        assert plan.total_injections < MOBILENETV2_TOTALS["data-unaware"] * 0.3


class TestPlanInvariants:
    def test_sample_never_exceeds_population(self, mini_space):
        for planner in (
            NetworkWiseSFI(),
            LayerWiseSFI(),
            DataUnawareSFI(),
            DataAwareSFI(),
        ):
            plan = planner.plan(mini_space)
            for item in plan.items:
                assert 0 <= item.sample_size <= item.subpopulation.population

    def test_describe(self, mini_space):
        text = NetworkWiseSFI().plan(mini_space).describe()
        assert "network-wise" in text and "n_TOT" in text

    def test_error_margin_validation(self):
        with pytest.raises(ValueError):
            NetworkWiseSFI(error_margin=0.0)
        with pytest.raises(ValueError):
            NetworkWiseSFI(error_margin=1.0)

    def test_tighter_margin_means_more_samples(self, mini_space):
        loose = LayerWiseSFI(error_margin=0.05).plan(mini_space)
        tight = LayerWiseSFI(error_margin=0.01).plan(mini_space)
        assert tight.total_injections > loose.total_injections


class TestPerLayerDataAware:
    def test_priors_vary_by_layer(self, mini_space):
        planner = DataAwareSFI(per_layer=True)
        profiles = planner.layer_priors(mini_space)
        assert len(profiles) == len(mini_space.layers)
        # The classifier layer's weight scale differs from the stem's, so
        # at least one bit prior must differ between their profiles.
        assert any(
            abs(float(profiles[0][b]) - float(profiles[-1][b])) > 1e-6
            for b in range(32)
        )

    def test_plan_uses_layer_specific_priors(self, mini_space):
        global_plan = DataAwareSFI().plan(mini_space)
        local_plan = DataAwareSFI(per_layer=True).plan(mini_space)
        assert local_plan.total_injections != global_plan.total_injections
        # Both shrink far below the safe baseline.
        unaware = DataUnawareSFI().plan(mini_space)
        assert local_plan.total_injections < unaware.total_injections

    def test_per_layer_exclusive_with_explicit_priors(self):
        profile = bit_criticality(np.random.default_rng(0).normal(size=100))
        with pytest.raises(ValueError, match="per_layer"):
            DataAwareSFI(profile=profile, per_layer=True)
        with pytest.raises(ValueError, match="per_layer"):
            DataAwareSFI(p=np.zeros(32), per_layer=True)

    def test_exponent_msb_sampled_fully_everywhere(self, mini_space):
        plan = DataAwareSFI(per_layer=True).plan(mini_space)
        for item in plan.items:
            if item.subpopulation.bit == 30:
                assert item.p_assumed == pytest.approx(0.5)
