"""Fig. 7 — MobileNetV2: network-wise vs data-aware per-layer readouts.

The paper's closing figure: a data-aware SFI correctly estimates every
layer's critical rate (exhaustive inside the margin), while the
network-wise readout — statistically invalid at layer granularity — shows
much larger margins and deviations on the thinly-sampled layers.
"""

import statistics

from benchmarks.conftest import emit
from repro.analysis import render_per_layer_figure
from repro.faults import TableOracle
from repro.sfi import CampaignRunner, DataAwareSFI, NetworkWiseSFI

SEEDS = list(range(10))


def test_fig7_mobilenet_per_layer(benchmark, mobilenet_truth):
    table, space, _ = mobilenet_truth
    runner = CampaignRunner(TableOracle(table, space), space)

    def build():
        network_plan = NetworkWiseSFI().plan(space)
        aware_plan = DataAwareSFI().plan(space)
        return (
            [runner.run(network_plan, seed=s) for s in SEEDS],
            [runner.run(aware_plan, seed=s) for s in SEEDS],
        )

    network_runs, aware_runs = benchmark.pedantic(build, rounds=1, iterations=1)

    rates = [table.layer_rate(l) for l in range(table.num_layers)]
    emit(
        "Fig. 7 — MobileNetV2-mini per-layer (seed 0 shown)",
        render_per_layer_figure(
            rates,
            {
                "network-wise": network_runs[0].layer_estimates(),
                "data-aware": aware_runs[0].layer_estimates(),
            },
        ),
    )

    num_layers = table.num_layers

    def margin_and_error(runs):
        margins, errors, contained = [], [], 0
        for run in runs:
            for layer in range(num_layers):
                est = run.layer_estimate(layer)
                margins.append(est.margin if est.margin is not None else 1.0)
                errors.append(abs(est.p_hat - rates[layer]))
                contained += est.contains(rates[layer])
        return (
            statistics.mean(margins),
            statistics.mean(errors),
            contained / (len(runs) * num_layers),
        )

    net_margin, net_error, _ = margin_and_error(network_runs)
    aware_margin, aware_error, aware_contained = margin_and_error(aware_runs)

    # Data-aware: small margins, small errors, high containment.
    assert aware_margin < 0.01
    assert aware_contained > 0.9
    # Network-wise per-layer readouts are far worse on both axes.
    assert net_margin > 3 * aware_margin
    assert net_error > aware_error
    # And data-aware achieves this with a fraction of the population.  At
    # mini scale the finite-population correction keeps every method's
    # fraction high (the paper's 0.55% needs a 141M population); what is
    # scale-free is the *relative* saving over the safe p=0.5 prior.
    from repro.sfi import DataUnawareSFI

    unaware_n = DataUnawareSFI().plan(space).total_injections
    injected = aware_runs[0].total_injections / space.total_population
    assert injected < 0.6
    assert aware_runs[0].total_injections < unaware_n * 0.45
