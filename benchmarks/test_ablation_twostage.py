"""Ablation — measured priors (two-stage) vs distribution priors (data-aware).

The paper derives p(i) from the weight distribution alone; the two-stage
extension *measures* per-cell priors with a pilot sample instead.  This
bench runs both against the exhaustive ResNet-14 ground truth, plus the
data-unaware baseline, and reports the cost/validity trade-off.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.faults import TableOracle
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    DataUnawareSFI,
    TwoStageSFI,
    validate_campaign,
)

SEEDS = list(range(5))


def test_twostage_vs_dataaware(benchmark, resnet_truth):
    table, space, _ = resnet_truth
    oracle = TableOracle(table, space)
    runner = CampaignRunner(oracle, space)

    def build():
        rows = {}
        unaware_plan = DataUnawareSFI().plan(space)
        rows["data-unaware"] = [
            validate_campaign(runner.run(unaware_plan, seed=s), table)
            for s in SEEDS
        ]
        aware_plan = DataAwareSFI().plan(space)
        rows["data-aware"] = [
            validate_campaign(runner.run(aware_plan, seed=s), table)
            for s in SEEDS
        ]
        rows["two-stage"] = [
            validate_campaign(
                TwoStageSFI(pilot_per_cell=30).run(oracle, space, seed=s), table
            )
            for s in SEEDS
        ]
        return rows

    reports = benchmark.pedantic(build, rounds=1, iterations=1)

    def mean(values):
        return sum(values) / len(values)

    rows = []
    for method, reps in reports.items():
        rows.append(
            [
                method,
                round(mean([r.total_injections for r in reps])),
                round(mean([r.injected_fraction for r in reps]) * 100, 1),
                round(mean([r.average_margin for r in reps]) * 100, 4),
                round(mean([r.contained_fraction for r in reps]) * 100),
            ]
        )
    emit(
        "Ablation — priors: distribution (data-aware) vs measured (two-stage)",
        render_table(
            ["method", "n", "injected %", "avg margin %", "contained %"], rows
        ),
    )

    n = {method: mean([r.total_injections for r in reps]) for method, reps in reports.items()}
    margin = {
        method: mean([r.average_margin for r in reps])
        for method, reps in reports.items()
    }
    # Both prior-driven methods are cheaper than the safe baseline.
    assert n["data-aware"] < n["data-unaware"]
    assert n["two-stage"] < n["data-unaware"]
    # At this (mini) scale the distribution prior is the cheaper of the
    # two: a 30-per-cell pilot is a large fraction of tiny cells.
    assert n["data-aware"] < n["two-stage"]
    # All three respect the 1% margin target on average.
    for method in reports:
        assert margin[method] < 0.01, method
