"""Ablation — weight (stuck-at) vs activation (transient flip) criticality.

Extends the paper's weight-fault study to the datapath fault model
PyTorchFI users pair it with: transient single-bit flips in stage
activations.  Uses the same statistical machinery (data-unaware sizing on
the activation fault space) and compares per-bit criticality signatures.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.data import SynthCIFAR
from repro.faults import (
    ActivationFaultSpace,
    ActivationInferenceEngine,
    FaultOutcome,
    TableOracle,
)
from repro.models import create_model
from repro.sfi import CampaignRunner, DataUnawareSFI


class _ActivationOracle:
    def __init__(self, engine):
        self.engine = engine

    def classify(self, fault):
        return self.engine.classify(fault)


def test_activation_vs_weight_criticality(benchmark, resnet8_truth):
    weight_table, weight_space, _ = resnet8_truth
    model = create_model("resnet8_mini", pretrained=True)
    data = SynthCIFAR("test", size=48, seed=1234)
    engine = ActivationInferenceEngine(model, data.images, data.labels)
    act_space = ActivationFaultSpace(engine)

    def build():
        plan = DataUnawareSFI(error_margin=0.1, confidence=0.9).plan(act_space)
        return CampaignRunner(_ActivationOracle(engine), act_space).run(
            plan, seed=0
        )

    result = benchmark.pedantic(build, rounds=1, iterations=1)

    # Per-bit critical rates for both fault models.
    weight_bits = {}
    for bit in range(32):
        criticals = population = 0
        for layer in range(weight_table.num_layers):
            c, p = weight_table.cell_counts(layer, bit)
            criticals += c
            population += p
        weight_bits[bit] = criticals / population
    act_bits = {}
    for bit in range(32):
        n = criticals = 0
        for (site, b), tally in result.cell_tallies.items():
            if b == bit:
                n += tally[0]
                criticals += tally[1]
        act_bits[bit] = criticals / n if n else 0.0

    rows = [
        [bit, round(weight_bits[bit] * 100, 3), round(act_bits[bit] * 100, 3)]
        for bit in range(31, -1, -1)
    ]
    emit(
        "Ablation — per-bit critical rate: weight stuck-at vs activation flip",
        render_table(["bit", "weight faults [%]", "activation flips [%]"], rows),
    )

    net = result.network_estimate()
    # Activation flips are substantially more critical than weight
    # stuck-at faults overall (no masking, direct datapath impact).
    assert net.p_hat > weight_table.total_rate()
    # High exponent bits dominate both signatures.
    assert max(act_bits, key=act_bits.get) in (29, 30)
    assert max(weight_bits, key=weight_bits.get) == 30
    # Low mantissa flips are benign in both models.
    assert act_bits[0] < 0.01
    assert weight_bits[0] == 0.0
