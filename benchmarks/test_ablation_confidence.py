"""Ablation — the paper's rounded t = 2.58 vs the exact normal quantile.

Tables I/II only reproduce digit-for-digit with the textbook constant
2.58; this bench quantifies how much the exact quantile (2.5758...) moves
the sample sizes, and sweeps the confidence level.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.paperdata import RESNET20_TOTALS
from repro.stats import confidence_to_t, sample_size


def test_paper_vs_exact_quantile(benchmark):
    population = RESNET20_TOTALS["exhaustive"]

    def build():
        rows = []
        for confidence in (0.90, 0.95, 0.99, 0.999):
            t_paper = confidence_to_t(confidence, mode="paper")
            t_exact = confidence_to_t(confidence, mode="exact")
            n_paper = sample_size(population, 0.01, t_paper)
            n_exact = sample_size(population, 0.01, t_exact)
            rows.append(
                [
                    f"{confidence:.1%}",
                    t_paper,
                    round(t_exact, 5),
                    n_paper,
                    n_exact,
                    n_paper - n_exact,
                ]
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)
    emit(
        "Ablation — rounded vs exact t (network-wise n on ResNet-20's N)",
        render_table(
            ["confidence", "t paper", "t exact", "n paper", "n exact", "delta"],
            rows,
        ),
    )

    # At 99% the rounded constant is what reproduces the published 16,625.
    by_conf = {row[0]: row for row in rows}
    assert by_conf["99.0%"][3] == 16_625
    assert by_conf["99.0%"][4] != 16_625
    # The discrepancy stays tiny (<1% of n) at every level.
    for row in rows:
        assert abs(row[5]) <= 0.01 * row[3]
    # n grows monotonically with confidence.
    ns = [row[3] for row in rows]
    assert ns == sorted(ns)
