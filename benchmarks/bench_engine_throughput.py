"""Engine throughput trajectory: module vs plan vs vectorized plan.

Times the four execution strategies on the same deterministic,
campaign-representative fault sample from ``resnet14_mini`` (layers drawn
proportionally to their weight count, all 32 bit positions, both stuck-at
models — the population the committed exhaustive artifact enumerates) and
writes ``BENCH_engine.json`` so CI can track faults/sec across commits:

- ``module``          — stage-granular prefix caching, one fault at a
                        time,
- ``plan``            — op-granular prefix caching, one fault at a time,
- ``plan_batched``    — op-granular caching plus K same-layer faults per
                        stacked tail pass,
- ``plan_vectorized`` — certified variant-axis stacking: no-flip
                        certification retires most rows, survivors run
                        cache-blocked stacked kernels.

Unfused outcomes are bit-identical across all four (asserted here); the
run aborts if they ever diverge, so a throughput number never ships for
an engine that changed the science.  The run also aborts if the plan
engine at batch_size=1 falls below the module engine — the regression
this trajectory exists to keep fixed.

Usage::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py \
        [--out BENCH_engine.json] [--faults 192] [--batch-size 16]
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

from repro.data import SynthCIFAR
from repro.faults import Fault, FaultModel
from repro.models import create_model, pretrained_path
from repro.runtime import DEFAULT_VEC_BATCH_SIZE, create_engine
from repro.store import atomic_write_bytes
from repro.train import train_reference_model

MODEL = "resnet14_mini"
EVAL_SIZE = 64


def sample_faults(engine, count: int, seed: int = 0) -> list[Fault]:
    """A deterministic, non-masked sample mirroring the exhaustive campaign.

    Layers are drawn proportionally to their weight count, bits uniformly
    over all 32 positions, and models over the two stuck-at variants —
    the same population the committed exhaustive artifact enumerates — so
    the reported faults/sec predicts real campaign wall-clock rather than
    flattering the layers an engine happens to be fastest on.  Masked
    faults short-circuit without inference in every engine and are
    excluded (the campaign tallies them for free).
    """
    rng = np.random.default_rng(seed)
    faults: list[Fault] = []
    layers = engine.layers
    sizes = np.array([layer.size for layer in layers], dtype=np.float64)
    weights = sizes / sizes.sum()
    models = [FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1]
    while len(faults) < count:
        layer = int(rng.choice(len(layers), p=weights))
        fault = Fault(
            layer=layer,
            index=int(rng.integers(layers[layer].size)),
            bit=int(rng.integers(0, 32)),
            model=models[int(rng.integers(2))],
        )
        if not engine.injector.is_masked(fault):
            faults.append(fault)
    return faults


def time_engine(engine, faults: list[Fault]) -> tuple[float, list]:
    # Warm prefix caches and workspaces with one full batch so the timed
    # run measures steady-state throughput.
    engine.classify_many(faults[: max(8, engine.batch_size)])
    start = time.perf_counter()
    outcomes = engine.classify_many(faults)
    return time.perf_counter() - start, outcomes


def _appended_history(out: Path, payload: dict) -> list[dict]:
    """Prior runs' engine rates plus this one, oldest first.

    The bench file carries its own trajectory instead of being
    overwritten, so engine-throughput drift is visible across commits.
    Entries are keyed by run order, not wall time — the repo's
    determinism lint forbids clock reads next to serialization, and the
    git history already dates each entry.
    """
    history: list[dict] = []
    if out.is_file():
        try:
            with open(out, encoding="utf-8") as stream:
                previous = json.load(stream)
        except (OSError, json.JSONDecodeError):
            previous = {}
        history = list(previous.get("history", []))
        if not history and "engines" in previous:
            # Upgrade a pre-history file: its latest block becomes the
            # first trajectory entry.
            history = [
                {
                    "engines": previous["engines"],
                    "faults": previous.get("faults"),
                    "speedup_vs_module": previous.get("speedup_vs_module"),
                }
            ]
    history.append(
        {
            "engines": payload["engines"],
            "faults": payload["faults"],
            "speedup_vs_module": payload["speedup_vs_module"],
            "backend": payload["backend"],
        }
    )
    return history


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=Path("BENCH_engine.json"))
    parser.add_argument("--faults", type=int, default=768)
    parser.add_argument("--batch-size", type=int, default=16)
    args = parser.parse_args(argv)

    if not pretrained_path(MODEL).is_file():
        train_reference_model(MODEL)
    model = create_model(MODEL, pretrained=True)
    data = SynthCIFAR("test", size=EVAL_SIZE, seed=1234)

    engines = {
        "module": create_engine(
            model, data.images, data.labels, kind="module"
        ),
        "plan": create_engine(
            model, data.images, data.labels, kind="plan", batch_size=1
        ),
        "plan_batched": create_engine(
            model,
            data.images,
            data.labels,
            kind="plan",
            batch_size=args.batch_size,
        ),
        "plan_vectorized": create_engine(
            model,
            data.images,
            data.labels,
            kind="plan_vectorized",
            batch_size=DEFAULT_VEC_BATCH_SIZE,
        ),
    }
    faults = sample_faults(engines["module"], args.faults)

    results: dict[str, dict] = {}
    reference = None
    for name, engine in engines.items():
        seconds, outcomes = time_engine(engine, faults)
        if reference is None:
            reference = outcomes
        elif outcomes != reference:
            raise SystemExit(
                f"engine {name!r} diverged from the module outcomes — "
                "refusing to report throughput for broken numerics"
            )
        results[name] = {
            "seconds": round(seconds, 4),
            "faults_per_sec": round(len(faults) / seconds, 2),
            "batch_size": engine.batch_size,
        }
        print(
            f"{name:13s} {seconds:7.2f} s  "
            f"{len(faults) / seconds:8.1f} faults/s"
        )

    module_rate = results["module"]["faults_per_sec"]
    # All four engines run the reference backend here (bit-identity is
    # asserted above, and only the reference attests it); the stamp keeps
    # cost-model engine ratios from ever mixing backends.
    backend = engines["plan"].backend
    payload = {
        "benchmark": "engine_throughput",
        "model": MODEL,
        "eval_size": EVAL_SIZE,
        "faults": len(faults),
        "backend": {"name": backend.name, "version": backend.version},
        "engines": results,
        "speedup_vs_module": {
            name: round(row["faults_per_sec"] / module_rate, 2)
            for name, row in results.items()
        },
        "outcomes_identical": True,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    payload["history"] = _appended_history(args.out, payload)
    serialized = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(args.out, serialized.encode("utf-8"))
    print(
        f"wrote {args.out} "
        f"({len(payload['history'])} history entr"
        f"{'y' if len(payload['history']) == 1 else 'ies'})"
    )

    unbatched = payload["speedup_vs_module"]["plan"]
    if unbatched < 1.0:
        raise SystemExit(
            f"plan engine at batch_size=1 is {unbatched:.2f}x the module "
            "engine — the unbatched throughput regression is back"
        )
    batched = payload["speedup_vs_module"]["plan_batched"]
    vectorized = payload["speedup_vs_module"]["plan_vectorized"]
    print(f"plan (bs=1) speedup vs module:  {unbatched:.2f}x")
    print(f"plan_batched speedup vs module: {batched:.2f}x")
    print(f"plan_vectorized speedup vs module: {vectorized:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
