"""Engine throughput — what makes laptop-scale exhaustive FI possible.

Times the two optimisations that turn the paper's 37-day campaign into a
minutes-scale one at mini size:

- masked-fault short-circuiting (no inference for bit-identical faults),
- prefix-cached inference (recompute only from the faulted stage onward).
"""

import numpy as np
import pytest

from repro.data import SynthCIFAR
from repro.faults import Fault, FaultModel, InferenceEngine
from repro.models import resnet14_mini


@pytest.fixture(scope="module")
def engine():
    model = resnet14_mini(seed=0).eval()
    data = SynthCIFAR("test", size=64, seed=1234)
    return InferenceEngine(model, data.images, data.labels)


@pytest.mark.benchmark(group="engine")
def test_full_forward_baseline(benchmark, engine):
    """Cost of a from-scratch forward pass (what naive FI pays per fault)."""
    images = engine.images

    def forward():
        return engine.model.forward_fast(images)

    benchmark(forward)


@pytest.mark.benchmark(group="engine")
def test_prefix_cached_late_fault(benchmark, engine):
    """A fault in the last stage only recomputes the classifier head."""
    last_layer = len(engine.layers) - 1
    fault = Fault(layer=last_layer, index=0, bit=30, model=FaultModel.STUCK_AT_1)
    benchmark(engine.predictions_with_fault, fault)


@pytest.mark.benchmark(group="engine")
def test_prefix_cached_early_fault(benchmark, engine):
    """A stem fault recomputes everything — the engine's worst case."""
    fault = Fault(layer=0, index=0, bit=30, model=FaultModel.STUCK_AT_1)
    benchmark(engine.predictions_with_fault, fault)


@pytest.mark.benchmark(group="engine")
def test_masked_short_circuit(benchmark, engine):
    """Masked faults cost no inference at all (half the population)."""
    flat = engine.layers[0].flat_weights()
    flat[0] = np.float32(1.0)  # bit 30 of 1.0 is 0 -> SA0 masked
    fault = Fault(layer=0, index=0, bit=30, model=FaultModel.STUCK_AT_0)
    assert engine.injector.is_masked(fault)
    benchmark(engine.classify, fault)


def test_speedup_claims(engine):
    """The late-fault path must be much cheaper than a full forward."""
    import time

    images = engine.images
    last_layer = len(engine.layers) - 1
    late = Fault(layer=last_layer, index=0, bit=30, model=FaultModel.STUCK_AT_1)
    early = Fault(layer=0, index=0, bit=30, model=FaultModel.STUCK_AT_1)

    def timeit(fn, repeats=20):
        fn()
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats

    full = timeit(lambda: engine.model.forward_fast(images))
    late_cost = timeit(lambda: engine.predictions_with_fault(late))
    early_cost = timeit(lambda: engine.predictions_with_fault(early))
    assert late_cost < full * 0.6  # classifier-only recompute
    assert early_cost < full * 1.8  # full recompute + bookkeeping
