"""Fig. 5 — per-layer critical rates with margins: layer-wise vs data-aware.

For every layer of the ResNet-14 mini, compares the exhaustive critical
rate (dark-blue bar in the paper) with the layer-wise and data-aware
statistical estimates and their error margins (black bars), asserting the
paper's reading: both methods bracket the exhaustive result layer by
layer, and the data-aware margins are competitive while injecting fewer
faults.
"""

from benchmarks.conftest import emit
from repro.analysis import render_per_layer_figure
from repro.faults import TableOracle
from repro.sfi import CampaignRunner, DataAwareSFI, LayerWiseSFI

SEEDS = list(range(10))


def test_fig5_per_layer_margins(benchmark, resnet_truth):
    table, space, _ = resnet_truth
    runner = CampaignRunner(TableOracle(table, space), space)

    def build():
        layer_plan = LayerWiseSFI().plan(space)
        aware_plan = DataAwareSFI().plan(space)
        return (
            [runner.run(layer_plan, seed=s) for s in SEEDS],
            [runner.run(aware_plan, seed=s) for s in SEEDS],
        )

    layer_runs, aware_runs = benchmark.pedantic(build, rounds=1, iterations=1)

    rates = [table.layer_rate(l) for l in range(table.num_layers)]
    emit(
        "Fig. 5 — per-layer exhaustive vs statistical (seed 0 shown)",
        render_per_layer_figure(
            rates,
            {
                "layer-wise": layer_runs[0].layer_estimates(),
                "data-aware": aware_runs[0].layer_estimates(),
            },
        ),
    )

    num_layers = table.num_layers
    for method_runs in (layer_runs, aware_runs):
        contained = 0
        margins = []
        for run in method_runs:
            for layer in range(num_layers):
                est = run.layer_estimate(layer)
                contained += est.contains(rates[layer])
                margins.append(est.margin)
        # Across 10 samples x all layers: containment near the 99% level.
        assert contained / (len(method_runs) * num_layers) > 0.9
        # Every margin respects the paper's 1% requirement.
        assert max(margins) < 0.01 or sum(
            m < 0.01 for m in margins
        ) / len(margins) > 0.95

    # Data-aware injects fewer faults for comparable margins.
    assert aware_runs[0].total_injections < layer_runs[0].total_injections
