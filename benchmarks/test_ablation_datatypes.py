"""Ablation (paper future work) — data-aware SFI across data representations.

The paper closes by proposing to apply the data-aware methodology to
different data representations.  This bench regenerates the p(i) profile
and the campaign size for float32, float16 and bfloat16 weight encodings
of the same ResNet-20 weights.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.faults import FaultSpace
from repro.ieee754 import BFLOAT16, FLOAT16, FLOAT32
from repro.models import resnet20
from repro.sfi import DataAwareSFI, DataUnawareSFI, bit_criticality, model_weight_vector


def test_datatype_ablation(benchmark):
    weights = model_weight_vector(resnet20(seed=0))
    model = resnet20(seed=0)

    def build():
        out = {}
        for fmt in (FLOAT32, FLOAT16, BFLOAT16):
            profile = bit_criticality(weights, fmt=fmt)
            space = FaultSpace(model, fmt=fmt)
            aware = DataAwareSFI(profile=profile).plan(space)
            unaware = DataUnawareSFI().plan(space)
            out[fmt.name] = (profile, space, aware, unaware)
        return out

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = []
    for name, (profile, space, aware, unaware) in results.items():
        rows.append(
            [
                name,
                space.total_population,
                unaware.total_injections,
                aware.total_injections,
                round(aware.total_injections / unaware.total_injections * 100, 1),
                round(float(profile.p.mean()), 3),
            ]
        )
    emit(
        "Ablation — data representations (ResNet-20 weights)",
        render_table(
            ["format", "N", "data-unaware n", "data-aware n", "aware/unaware %", "mean p"],
            rows,
        ),
    )

    for name, (profile, space, aware, unaware) in results.items():
        fmt = profile.fmt
        # The exponent MSB is the most critical bit in every format.
        msb = fmt.mantissa_bits + fmt.exponent_bits - 1
        assert profile.p[msb] == 0.5, name
        # Data-aware always shrinks the campaign substantially.
        assert aware.total_injections < unaware.total_injections * 0.5, name

    # bfloat16 keeps float32's exponent range: its profile concentrates
    # criticality in the same (fewer) high bits, so the mean prior is
    # higher than float32's (fewer irrelevant mantissa bits to dilute it).
    assert results["bfloat16"][0].p.mean() > results["float32"][0].p.mean()
    # 16-bit formats halve the population per weight.
    assert (
        results["float16"][1].total_population
        == results["float32"][1].total_population // 2
    )
