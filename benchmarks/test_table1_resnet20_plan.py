"""Table I — ResNet-20: exhaustive vs statistical sample sizes per layer.

Regenerates the paper's Table I on the full-size ResNet-20 topology.  The
network-wise, layer-wise and data-unaware columns are deterministic
functions of the layer sizes and are asserted digit-for-digit against the
published values (modulo the paper's layer-11 +10-weight anomaly); the
data-aware column uses this repository's weights, so only its shape is
asserted.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_plan_table
from repro.faults import FaultSpace
from repro.models import resnet20
from repro.paperdata import (
    RESNET20_DATA_UNAWARE,
    RESNET20_LAYER_WISE,
    RESNET20_NETWORK_WISE,
    RESNET20_STANDARD_LAYER_PARAMS,
)
from repro.sfi import DataAwareSFI, DataUnawareSFI, LayerWiseSFI, NetworkWiseSFI
from repro.stats import proportional_allocation


@pytest.fixture(scope="module")
def space():
    return FaultSpace(resnet20(seed=0))


def _paper_expected(layer: int, column: tuple[int, ...]) -> int:
    """Published value, adjusted for the paper's layer-11 anomaly."""
    value = column[layer]
    anomalies = {16185: 16184, 280_000: 279_872, 572: 571}
    if RESNET20_STANDARD_LAYER_PARAMS[layer] == 9216 and value in anomalies:
        return anomalies[value]
    return value


def test_table1_regeneration(benchmark, space):
    def build():
        plans = [
            NetworkWiseSFI().plan(space),
            LayerWiseSFI().plan(space),
            DataUnawareSFI().plan(space),
            DataAwareSFI().plan(space),
        ]
        allocation = proportional_allocation(
            plans[0].total_injections,
            [space.layer_population(l) for l in range(len(space.layers))],
        )
        return plans, allocation

    plans, allocation = benchmark.pedantic(build, rounds=1, iterations=1)
    network, layer_wise, unaware, aware = plans

    emit(
        "Table I — ResNet-20 sample sizes (paper layout)",
        render_plan_table(
            plans,
            [l.size for l in space.layers],
            network_wise_allocation=allocation,
        ),
    )

    # Digit-exact checks against the published columns.
    assert network.total_injections == 16_625
    for l in range(20):
        assert layer_wise.layer_injections(l) == _paper_expected(
            l, RESNET20_LAYER_WISE
        )
        assert unaware.layer_injections(l) == _paper_expected(
            l, RESNET20_DATA_UNAWARE
        )
        # Proportional shares match the published per-layer column ±1.
        assert abs(allocation[l] - RESNET20_NETWORK_WISE[l]) <= 1

    # Data-aware column: shape only (depends on trained weights).
    assert aware.total_injections < unaware.total_injections * 0.25
    for l in range(20):
        assert aware.layer_injections(l) < unaware.layer_injections(l)
