"""Table II — MobileNetV2: total sample sizes for the four SFI methods.

The topology (54 weight layers, 2,203,584 weights) matches the paper
exactly, so the exhaustive population and the network-wise n are asserted
digit-for-digit.  Layer-wise/data-unaware totals depend only on the layer
sizes and are asserted exactly too; data-aware depends on the weights.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.faults import FaultSpace
from repro.models import mobilenetv2
from repro.paperdata import MOBILENETV2_TOTALS
from repro.sfi import DataAwareSFI, DataUnawareSFI, LayerWiseSFI, NetworkWiseSFI
from repro.stats import confidence_to_t, sample_size


def test_table2_regeneration(benchmark):
    space = FaultSpace(mobilenetv2(seed=0))

    def build():
        return {
            "network-wise": NetworkWiseSFI().plan(space),
            "layer-wise": LayerWiseSFI().plan(space),
            "data-unaware": DataUnawareSFI().plan(space),
            "data-aware": DataAwareSFI().plan(space),
        }

    plans = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        ["layers", len(space.layers), MOBILENETV2_TOTALS["layers"]],
        [
            "parameters",
            sum(l.size for l in space.layers),
            MOBILENETV2_TOTALS["parameters"],
        ],
        ["exhaustive", space.total_population, MOBILENETV2_TOTALS["exhaustive"]],
    ]
    for method, plan in plans.items():
        rows.append([method, plan.total_injections, MOBILENETV2_TOTALS[method]])
    emit(
        "Table II — MobileNetV2 totals (ours vs paper)",
        render_table(["quantity", "ours", "paper"], rows),
    )

    # Exact topology + population + network-wise n.
    assert len(space.layers) == 54
    assert space.total_population == MOBILENETV2_TOTALS["exhaustive"]
    assert (
        plans["network-wise"].total_injections
        == MOBILENETV2_TOTALS["network-wise"]
    )
    # Layer-wise and data-unaware are deterministic given the layer sizes;
    # they must equal the published totals exactly.
    assert plans["layer-wise"].total_injections == MOBILENETV2_TOTALS["layer-wise"]
    assert (
        plans["data-unaware"].total_injections
        == MOBILENETV2_TOTALS["data-unaware"]
    )
    # Data-aware: same order of magnitude and far below data-unaware.
    aware = plans["data-aware"].total_injections
    assert aware < MOBILENETV2_TOTALS["data-unaware"] * 0.15
    assert aware / space.total_population < 0.015  # paper: 0.55%


def test_table2_network_wise_closed_form(benchmark):
    """The network-wise n comes straight from Eq. 1."""
    t = confidence_to_t(0.99)

    result = benchmark(
        sample_size, MOBILENETV2_TOTALS["exhaustive"], 0.01, t
    )
    assert result == MOBILENETV2_TOTALS["network-wise"] == 16_639
