"""Fig. 1 (left) — the p(1-p) variance curve that motivates p = 0.5.

The sample size of Eq. 1 grows with p(1-p); the curve peaks at p = 0.5,
which is why the data-unaware method's prior is the safest (largest) and
why every data-aware prior p(i) <= 0.5 can only shrink the sample.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import render_variance_curve
from repro.stats import confidence_to_t, sample_size


def test_fig1_variance_curve(benchmark):
    text = benchmark(render_variance_curve, 21)
    emit("Fig. 1 — p * (1 - p) against p", text)

    ps = np.linspace(0.0, 1.0, 21)
    variance = ps * (1 - ps)
    # Peak at p = 0.5 and symmetry around it.
    assert variance.argmax() == 10
    np.testing.assert_allclose(variance, variance[::-1])

    # The sample-size consequence: n is maximised at p = 0.5.
    t = confidence_to_t(0.99)
    sizes = [sample_size(1_000_000, 0.01, t, p=float(p)) for p in ps]
    assert max(sizes) == sizes[10]
    assert sizes[0] == 0 and sizes[-1] == 0
