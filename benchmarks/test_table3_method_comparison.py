"""Table III — FI methodology comparison against exhaustive ground truth.

Runs the four statistical campaigns (ten random samples each, the paper's
S0-S9) against the cached exhaustive tables of the ResNet-14 and
MobileNetV2 minis and regenerates Table III: injections, injected %, and
the error margin averaged over layers.

The paper's qualitative findings asserted here:

- network-wise breaks the 1% margin target, every finer method meets it;
- data-unaware achieves the lowest margin but injects the most faults;
- data-aware beats layer-wise on *both* cost and margin (the paper's
  "best compromise").
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis import render_method_comparison
from repro.faults import TableOracle
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
    validate_campaign,
)
from repro.sfi.validation import average_reports

SEEDS = list(range(10))  # S0-S9


def run_comparison(truth):
    table, space, _ = truth
    runner = CampaignRunner(TableOracle(table, space), space)
    comparisons = {}
    for planner in (
        NetworkWiseSFI(),
        LayerWiseSFI(),
        DataUnawareSFI(),
        DataAwareSFI(),
    ):
        plan = planner.plan(space)
        reports = [
            validate_campaign(runner.run(plan, seed=seed), table)
            for seed in SEEDS
        ]
        comparisons[plan.method] = average_reports(reports)
    return comparisons


def check_paper_shape(comparisons):
    margins = {m: c.average_margin_percent for m, c in comparisons.items()}
    # Network-wise is the only method breaking the 1% target.
    assert margins["network-wise"] > 1.0
    assert margins["layer-wise"] < 1.0
    assert margins["data-unaware"] < 1.0
    assert margins["data-aware"] < 1.0
    # Ordering: data-unaware best margin; network-wise worst.
    assert margins["data-unaware"] < margins["data-aware"]
    assert margins["data-aware"] < margins["layer-wise"]
    assert margins["layer-wise"] < margins["network-wise"]
    # Data-aware costs less than layer-wise (the paper's best compromise).
    assert (
        comparisons["data-aware"].injections
        < comparisons["layer-wise"].injections
    )
    # Fine-granularity methods contain the exhaustive rate almost always.
    assert comparisons["data-unaware"].contained_fraction > 0.95
    assert comparisons["data-aware"].contained_fraction > 0.85


@pytest.mark.benchmark(group="table3")
def test_table3_resnet(benchmark, resnet_truth):
    comparisons = benchmark.pedantic(
        run_comparison, args=(resnet_truth,), rounds=1, iterations=1
    )
    table, space, _ = resnet_truth
    emit(
        "Table III — ResNet-14-mini (10 samples per method)",
        render_method_comparison(
            list(comparisons.values()), exhaustive_n=space.total_population
        )
        + f"\nexhaustive critical rate: {table.total_rate():.3%}",
    )
    check_paper_shape(comparisons)


@pytest.mark.benchmark(group="table3")
def test_table3_mobilenet(benchmark, mobilenet_truth):
    comparisons = benchmark.pedantic(
        run_comparison, args=(mobilenet_truth,), rounds=1, iterations=1
    )
    table, space, _ = mobilenet_truth
    emit(
        "Table III — MobileNetV2-mini (10 samples per method)",
        render_method_comparison(
            list(comparisons.values()), exhaustive_n=space.total_population
        )
        + f"\nexhaustive critical rate: {table.total_rate():.3%}",
    )
    margins = {m: c.average_margin_percent for m, c in comparisons.items()}
    # MobileNetV2-mini is shallower (12 layers), so network-wise gets more
    # samples per layer; it must still be the worst method by margin and
    # the fine methods must meet the target.
    assert margins["network-wise"] == max(margins.values())
    assert margins["data-unaware"] < 1.0
    assert margins["data-aware"] < 1.0
    assert (
        comparisons["data-aware"].injections
        < comparisons["layer-wise"].injections
    )
