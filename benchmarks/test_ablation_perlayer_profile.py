"""Ablation — global p(i) (the paper) vs per-layer p_l(i) profiles.

The paper derives a single p(i) from all of the network's weights.
Profiling each layer's own distribution instead is the obvious refinement
(layers differ in weight scale, so their bit statistics differ); this
bench quantifies what it buys against the exhaustive ResNet-14 ground
truth.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.faults import TableOracle
from repro.sfi import CampaignRunner, DataAwareSFI, validate_campaign

SEEDS = list(range(5))


def test_per_layer_profile_ablation(benchmark, resnet_truth):
    table, space, _ = resnet_truth
    runner = CampaignRunner(TableOracle(table, space), space)

    def build():
        out = {}
        for label, planner in (
            ("global p(i)", DataAwareSFI()),
            ("per-layer p_l(i)", DataAwareSFI(per_layer=True)),
        ):
            plan = planner.plan(space)
            out[label] = (
                plan,
                [
                    validate_campaign(runner.run(plan, seed=s), table)
                    for s in SEEDS
                ],
            )
        return out

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    def mean(values):
        return sum(values) / len(values)

    rows = []
    for label, (plan, reports) in results.items():
        rows.append(
            [
                label,
                plan.total_injections,
                round(mean([r.average_margin for r in reports]) * 100, 4),
                round(mean([r.contained_fraction for r in reports]) * 100),
            ]
        )
    emit(
        "Ablation — global vs per-layer data-aware profiles (ResNet-14-mini)",
        render_table(["profile", "n", "avg margin %", "contained %"], rows),
    )

    for label, (plan, reports) in results.items():
        assert mean([r.average_margin for r in reports]) < 0.01, label
        assert mean([r.contained_fraction for r in reports]) > 0.85, label

    # The two variants land in the same cost region (within 2x); at full
    # scale per-layer profiling mainly matters for heterogeneous-scale
    # networks, which the minis only mildly exhibit.
    n_global = results["global p(i)"][0].total_injections
    n_local = results["per-layer p_l(i)"][0].total_injections
    assert 0.5 < n_local / n_global < 2.0
