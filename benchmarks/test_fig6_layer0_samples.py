"""Fig. 6 — ten random samples (S0-S9) of each SFI method on layer 0.

The paper's detailed view of the first convolutional layer: for every
method, ten independently seeded samples are drawn and their estimates and
margins compared against the exhaustive layer-0 critical rate.  Asserted
shape: the network-wise per-layer margin is by far the largest (it exceeds
the 1% target), margins shrink through layer-wise and data-unaware, and
data-aware stays under the target with a fraction of the injections.
"""

import statistics

from benchmarks.conftest import emit
from repro.analysis import render_sample_figure
from repro.faults import TableOracle
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
)

SEEDS = list(range(10))
LAYER = 0


def test_fig6_layer0_samples(benchmark, resnet_truth):
    table, space, _ = resnet_truth
    runner = CampaignRunner(TableOracle(table, space), space)

    def build():
        out = {}
        for planner in (
            NetworkWiseSFI(),
            LayerWiseSFI(),
            DataUnawareSFI(),
            DataAwareSFI(),
        ):
            plan = planner.plan(space)
            out[plan.method] = [
                runner.run(plan, seed=seed).layer_estimate(LAYER)
                for seed in SEEDS
            ]
        return out

    samples = benchmark.pedantic(build, rounds=1, iterations=1)

    exhaustive = table.layer_rate(LAYER)
    emit(
        f"Fig. 6 — layer {LAYER}: S0-S9 per method "
        f"(exhaustive = {exhaustive:.3%})",
        render_sample_figure(exhaustive, samples),
    )

    mean_margin = {
        method: statistics.mean(e.margin for e in estimates)
        for method, estimates in samples.items()
    }
    # Margin ordering across methods on this layer.
    assert mean_margin["network-wise"] > mean_margin["layer-wise"]
    assert mean_margin["layer-wise"] > mean_margin["data-unaware"]
    assert mean_margin["data-aware"] < 0.01
    # The paper's headline: the network-wise per-layer margin is NOT
    # acceptable (exceeds the predefined 1%).
    assert mean_margin["network-wise"] > 0.01
    # Fine methods bracket the exhaustive value in almost every sample.
    for method in ("layer-wise", "data-unaware", "data-aware"):
        contained = sum(e.contains(exhaustive) for e in samples[method])
        assert contained >= 8, method
    # Fewer injections for data-aware than data-unaware on this layer.
    assert (
        samples["data-aware"][0].injections
        < samples["data-unaware"][0].injections
    )
