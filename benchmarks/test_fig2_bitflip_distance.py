"""Fig. 2 — the distance a bit-flip introduces into an IEEE-754 weight.

The paper's example: a flip on a high exponent bit (bit 28) moves a weight
by tens of orders of magnitude, while a mantissa-LSB flip is negligible.
Regenerates the per-bit average distance profile over a realistic weight
population.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import ascii_bars
from repro.ieee754 import FLOAT32, bit_flip_distances, corrupt_value


def test_fig2_bitflip_distance(benchmark):
    rng = np.random.default_rng(0)
    weights = rng.normal(0.0, 0.05, size=50_000)

    dists = benchmark.pedantic(
        bit_flip_distances, args=(FLOAT32, weights), rounds=1, iterations=1
    )

    labels = [f"bit {b:2d}" for b in range(31, -1, -1)]
    log_d = [
        float(np.log10(max(dists.d01[b] + dists.d10[b], 1e-30)))
        for b in range(31, -1, -1)
    ]
    emit(
        "Fig. 2 — log10 average bit-flip distance per bit (MSB first)",
        ascii_bars(labels, [v - min(log_d) for v in log_d], fmt="{:+.1f}"),
    )

    # The paper's bit-28 example on a concrete weight: flipping a high
    # exponent bit of w=0.04 (exponent ~122, bit 28 set) collapses or
    # explodes the value by ~2^32.
    w = 0.04
    faulty = corrupt_value(FLOAT32, w, 28)
    assert abs(faulty - w) > 0.9 * abs(w) or abs(faulty) > abs(w) * 1e9

    # Distance grows monotonically from mantissa LSB to exponent MSB
    # (averaged over the population, in log terms).
    assert dists.d01[30] + dists.d10[30] > 1e30
    mantissa_total = dists.d01[:23] + dists.d10[:23]
    assert (np.diff(np.log10(mantissa_total + 1e-30)) > 0).all()
