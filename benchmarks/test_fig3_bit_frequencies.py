"""Fig. 3 — f0(i)/f1(i) over the ResNet-20 weight population.

Counts, for every bit position of the 32-bit words, how many of the
268,336 ResNet-20 weights have that bit at 0 or 1.  The characteristic
IEEE-754 signature asserted below is what drives the data-aware priors:

- the exponent MSB (bit 30) is essentially never 1 (weights are < 2),
- the next exponent bits are almost always 1 (weights cluster in
  [2^-16, 1)),
- the sign bit splits roughly half/half,
- mantissa bits are near-uniform.
"""

from benchmarks.conftest import emit
from repro.analysis import render_bit_frequency_figure
from repro.ieee754 import FLOAT32, bit_frequencies
from repro.models import resnet20
from repro.sfi import model_weight_vector


def test_fig3_bit_frequencies(benchmark):
    weights = model_weight_vector(resnet20(seed=0))

    freqs = benchmark.pedantic(
        bit_frequencies, args=(FLOAT32, weights), rounds=1, iterations=1
    )

    emit(
        "Fig. 3 — f0(i) / f1(i) over ResNet-20 weights (MSB first)",
        render_bit_frequency_figure(freqs),
    )

    total = freqs.total
    assert total == 268_336
    fraction_ones = freqs.fraction_ones()
    # Exponent MSB: |w| < 2 for every sane CNN weight.
    assert fraction_ones[30] < 0.001
    # High exponent bits are nearly always set for |w| in [2^-64, 2).
    assert fraction_ones[29] > 0.99
    assert fraction_ones[28] > 0.99
    # The sign bit splits close to half (symmetric weight distribution).
    assert 0.40 < fraction_ones[31] < 0.60
    # Mantissa bits are roughly uniform.
    for bit in range(0, 16):
        assert 0.40 < fraction_ones[bit] < 0.60
