"""Ablation — Eq. 5 outlier handling for the data-aware prior.

The paper normalises D_avg into [0, 0.5] "without considering the
outliers", pinning outliers at p = 0.5, but does not specify the outlier
detector.  This bench compares three policies against the exhaustive
ResNet-14 ground truth and demonstrates that the choice is *load-bearing*:

- ``iqr`` (default, Tukey fences on log10 D_avg): all exponent bits with
  huge flip distances are pinned at 0.5, and the remaining normalisation
  keeps meaningful priors for the sign and high-mantissa bits — the
  campaign stays valid.
- ``percentile`` / ``none``: the linear-scale normalisation is dominated
  by the astronomically large exponent distances, collapsing every other
  bit's prior to ~0.  Those cells get no samples and their (real)
  critical faults — e.g. sign-bit flips — are silently assumed away: the
  margins look tiny but the estimates systematically undershoot the
  exhaustive rates.  A cautionary result for Eq. 5 implementations.
"""

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.faults import TableOracle
from repro.sfi import CampaignRunner, DataAwareSFI, validate_campaign

POLICIES = ("iqr", "percentile", "none")


def test_outlier_policy_ablation(benchmark, resnet_truth):
    table, space, _ = resnet_truth
    runner = CampaignRunner(TableOracle(table, space), space)

    def build():
        out = {}
        for policy in POLICIES:
            plan = DataAwareSFI(outlier_policy=policy).plan(space)
            report = validate_campaign(runner.run(plan, seed=0), table)
            out[policy] = (plan, report)
        return out

    results = benchmark.pedantic(build, rounds=1, iterations=1)

    rows = [
        [
            policy,
            plan.total_injections,
            round(report.average_margin * 100, 3),
            round(report.contained_fraction * 100),
        ]
        for policy, (plan, report) in results.items()
    ]
    emit(
        "Ablation — Eq. 5 outlier policy (ResNet-14-mini)",
        render_table(["policy", "n", "avg margin %", "contained %"], rows),
    )

    # The scale-aware default stays valid...
    iqr_plan, iqr_report = results["iqr"]
    assert iqr_report.average_margin < 0.01
    assert iqr_report.contained_fraction > 0.85

    # ...while linear-scale policies undercover badly: tiny margins but
    # systematic underestimation (unsampled cells assumed non-critical).
    for policy in ("percentile", "none"):
        plan, report = results[policy]
        assert plan.total_injections < iqr_plan.total_injections
        assert report.contained_fraction < 0.5, policy
        assert (
            report.average_absolute_error > iqr_report.average_absolute_error
        ), policy
