"""Ablation — empirically checking the 4th Bernoulli assumption.

The paper's Section II argues that Eq. 1 is only valid inside
subpopulations with homogeneous fault criticality.  With exhaustive ground
truth available, that claim becomes testable: chi-square homogeneity across
layers (should reject — network-wise sampling is invalid for per-layer
questions) and across weights inside single (bit, layer) cells (should
mostly not reject — the paper's chosen granularity is sound).
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import render_table
from repro.faults import FaultOutcome
from repro.stats import chi_square_homogeneity


def test_bernoulli_assumption_check(benchmark, resnet_truth):
    table, space, _ = resnet_truth

    def build():
        # Across layers: pooled per-layer critical counts.
        trials, successes = [], []
        for layer in range(table.num_layers):
            criticals, population = table.layer_counts(layer)
            trials.append(population)
            successes.append(criticals)
        across_layers = chi_square_homogeneity(trials, successes)

        # Across bit positions within one layer.
        bit_trials, bit_successes = [], []
        for bit in range(space.bits):
            criticals, population = table.cell_counts(1, bit)
            bit_trials.append(population)
            bit_successes.append(criticals)
        across_bits = chi_square_homogeneity(bit_trials, bit_successes)

        # Within single (bit, layer) cells: split each cell's weights into
        # two halves and compare their critical rates.
        cell_pvalues = []
        for layer in range(table.num_layers):
            arr = table.outcomes[layer]
            for bit in (29, 30, 31):
                cell = (arr[:, bit, :] == FaultOutcome.CRITICAL).sum(axis=1)
                half = len(cell) // 2
                if half < 10:
                    continue
                first, second = cell[:half], cell[half : 2 * half]
                result = chi_square_homogeneity(
                    [2 * half, 2 * half],
                    [int(first.sum()), int(second.sum())],
                )
                cell_pvalues.append(result.p_value)
        return across_layers, across_bits, cell_pvalues

    across_layers, across_bits, cell_pvalues = benchmark.pedantic(
        build, rounds=1, iterations=1
    )

    emit(
        "Ablation — Bernoulli assumption 4 at three granularities",
        render_table(
            ["granularity", "chi2", "p-value", "homogeneous?"],
            [
                [
                    "across layers",
                    round(across_layers.statistic, 1),
                    f"{across_layers.p_value:.2e}",
                    not across_layers.rejects_homogeneity(),
                ],
                [
                    "across bits (layer 1)",
                    round(across_bits.statistic, 1),
                    f"{across_bits.p_value:.2e}",
                    not across_bits.rejects_homogeneity(),
                ],
                [
                    "within (bit, layer) cells",
                    "-",
                    f"median {np.median(cell_pvalues):.3f}",
                    float(np.mean([p > 0.01 for p in cell_pvalues])) > 0.8,
                ],
            ],
        ),
    )

    # The paper's argument, now with evidence:
    assert across_layers.rejects_homogeneity(alpha=0.001)
    assert across_bits.rejects_homogeneity(alpha=0.001)
    # ... but within the paper's chosen (bit, layer) subpopulations the
    # equal-p assumption survives in the vast majority of cells.
    assert np.mean([p > 0.01 for p in cell_pvalues]) > 0.8
