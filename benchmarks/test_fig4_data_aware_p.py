"""Fig. 4 — the data-aware prior p(i) for ResNet-20 and MobileNetV2.

Regenerates the per-bit criticality priors (Eq. 4-5) for both full-size
topologies and asserts the published shape: p ~ 0 across the mantissa,
rising over the exponent field, maximal (0.5) at the exponent MSB, and a
moderate sign-bit value — consistently for both networks.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.analysis import render_bit_prior_figure
from repro.models import mobilenetv2, resnet20
from repro.sfi import bit_criticality, model_weight_vector


def test_fig4_data_aware_p(benchmark):
    def build():
        return {
            "resnet20": bit_criticality(model_weight_vector(resnet20(seed=0))),
            "mobilenetv2": bit_criticality(
                model_weight_vector(mobilenetv2(seed=0))
            ),
        }

    profiles = benchmark.pedantic(build, rounds=1, iterations=1)

    emit(
        "Fig. 4 — data-aware p(i), MSB first",
        render_bit_prior_figure({n: p.p for n, p in profiles.items()}),
    )

    for name, profile in profiles.items():
        p = profile.p
        # Bounded in [0, 0.5] by construction (Eq. 5).
        assert p.min() >= 0.0 and p.max() <= 0.5, name
        # Exponent MSB is the most critical bit (outlier pinned at 0.5).
        assert p[30] == 0.5, name
        assert profile.outliers[30], name
        # The low mantissa is statistically irrelevant.
        assert p[:12].max() < 0.01, name
        # Rising trend across the mantissa.
        assert p[22] > p[10] >= p[0], name
        # The mean prior is far below 0.5: the campaign shrinks a lot.
        assert p.mean() < 0.15, name

    # Both networks produce the same qualitative profile (rank-correlated).
    a = profiles["resnet20"].p
    b = profiles["mobilenetv2"].p
    rank_corr = np.corrcoef(np.argsort(np.argsort(a)), np.argsort(np.argsort(b)))[
        0, 1
    ]
    assert rank_corr > 0.8
