"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures.  The
exhaustive ground truths for the mini models are loaded from the artifact
cache (generated on first use; minutes per model on one core); statistical
campaigns replay against them, so the benchmarks themselves are fast.
"""

from __future__ import annotations

import pytest

from repro.models import pretrained_path
from repro.sfi.artifacts import exhaustive_table_path, load_or_run_exhaustive
from repro.telemetry import Telemetry, progress_printer
from repro.train import train_reference_model


def _ensure_artifacts(model: str):
    """Train + run exhaustive FI for *model* if not already cached."""
    if not pretrained_path(model).is_file():
        train_reference_model(model)
    telemetry = Telemetry(
        on_event=progress_printer(f"  exhaustive {model}")
    )
    return load_or_run_exhaustive(model, telemetry=telemetry)


@pytest.fixture(scope="session")
def resnet_truth():
    """(table, space, engine) for the headline ResNet-14 mini."""
    return _ensure_artifacts("resnet14_mini")


@pytest.fixture(scope="session")
def resnet8_truth():
    """(table, space, engine) for the fast ResNet-8 mini."""
    return _ensure_artifacts("resnet8_mini")


@pytest.fixture(scope="session")
def mobilenet_truth():
    """(table, space, engine) for the MobileNetV2 mini."""
    return _ensure_artifacts("mobilenetv2_mini")


def emit(title: str, body: str) -> None:
    """Print a regenerated table/figure block (visible with -s)."""
    bar = "=" * max(20, len(title))
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
