"""Shared utilities: artifact directory resolution and seeding helpers."""

from __future__ import annotations

import os
from pathlib import Path


def artifacts_dir() -> Path:
    """Directory for generated artifacts (weights, cached FI ground truth).

    Resolution order: the ``REPRO_ARTIFACTS`` environment variable, then
    ``<repository root>/artifacts`` when the package is an editable install
    inside the repository, then ``~/.cache/repro``.
    """
    env = os.environ.get("REPRO_ARTIFACTS")
    if env:
        path = Path(env)
        path.mkdir(parents=True, exist_ok=True)
        return path
    package_root = Path(__file__).resolve().parents[2]
    if (package_root / "pyproject.toml").is_file():
        path = package_root / "artifacts"
    else:
        path = Path.home() / ".cache" / "repro"
    path.mkdir(parents=True, exist_ok=True)
    return path
