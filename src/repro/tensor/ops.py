"""Differentiable operators for the tape autograd engine.

Every function takes and returns :class:`~repro.tensor.Tensor` objects and
registers a backward closure mapping the output gradient to parent
gradients.  Shapes follow the PyTorch conventions the paper's stack uses:
images are ``(N, C, H, W)``, linear weights are ``(out, in)``, convolution
weights are ``(out_channels, in_channels // groups, kh, kw)``.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.im2col import col2im, conv_output_size, im2col
from repro.tensor.tensor import Tensor


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* after numpy broadcasting."""
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


def add(a: Tensor, b: Tensor) -> Tensor:
    """Elementwise (broadcasting) addition."""
    out_data = a.data + b.data

    def backward(grad: np.ndarray):
        return _unbroadcast(grad, a.shape), _unbroadcast(grad, b.shape)

    return Tensor(out_data, _parents=(a, b), _backward=backward)


def reshape(x: Tensor, shape: tuple[int, ...]) -> Tensor:
    """Reshape preserving element order."""
    original = x.shape
    out_data = x.data.reshape(shape)

    def backward(grad: np.ndarray):
        return (grad.reshape(original),)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    mask = x.data > 0
    out_data = np.where(mask, x.data, 0.0).astype(np.float32)

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def relu6(x: Tensor) -> Tensor:
    """ReLU clipped at 6 (MobileNetV2's activation)."""
    mask = (x.data > 0) & (x.data < 6.0)
    out_data = np.clip(x.data, 0.0, 6.0).astype(np.float32)

    def backward(grad: np.ndarray):
        return (grad * mask,)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` for ``x`` of shape (N, in)."""
    out_data = x.data @ weight.data.T
    if bias is not None:
        out_data = out_data + bias.data

    def backward(grad: np.ndarray):
        dx = grad @ weight.data
        dw = grad.T @ x.data
        if bias is None:
            return dx, dw
        return dx, dw, grad.sum(axis=0)

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor(out_data, _parents=parents, _backward=backward)


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    *,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
) -> Tensor:
    """Grouped 2-D convolution via im2col.

    ``x``: (N, C, H, W); ``weight``: (OC, C // groups, kh, kw);
    ``bias``: (OC,) or None.  ``groups == C == OC`` gives the depthwise
    convolution MobileNetV2 relies on.
    """
    n, c, h, w = x.shape
    oc, cg, kh, kw = weight.shape
    if c % groups or oc % groups:
        raise ValueError(
            f"channels ({c}) and out_channels ({oc}) must be divisible by "
            f"groups ({groups})"
        )
    if cg != c // groups:
        raise ValueError(
            f"weight in-channels ({cg}) must equal C/groups ({c // groups})"
        )
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    ocg = oc // groups
    k = cg * kh * kw

    cols = im2col(x.data, kh, kw, stride, padding)  # (N, C*kh*kw, P)
    p = out_h * out_w
    cols_g = cols.reshape(n, groups, k, p)
    w_g = weight.data.reshape(groups, ocg, k)
    out = np.einsum("gok,ngkp->ngop", w_g, cols_g, optimize=True)
    out_data = out.reshape(n, oc, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, oc, 1, 1)
    out_data = out_data.astype(np.float32)

    def backward(grad: np.ndarray):
        grad_g = grad.reshape(n, groups, ocg, p)
        dw = np.einsum("ngop,ngkp->gok", grad_g, cols_g, optimize=True)
        dw = dw.reshape(weight.shape)
        dcols = np.einsum("gok,ngop->ngkp", w_g, grad_g, optimize=True)
        dcols = dcols.reshape(n, c * kh * kw, p)
        dx = col2im(dcols, (n, c, h, w), kh, kw, stride, padding)
        if bias is None:
            return dx, dw
        return dx, dw, grad.sum(axis=(0, 2, 3))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor(out_data, _parents=parents, _backward=backward)


def batchnorm2d(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    *,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalisation over (N, H, W) per channel.

    In training mode batch statistics are used and the running buffers are
    updated in place (biased variance, matching a simple exponential moving
    average); in eval mode the running buffers are used.
    """
    c = x.shape[1]
    axes = (0, 2, 3)
    if training:
        mean = x.data.mean(axis=axes)
        var = x.data.var(axis=axes)
        count = x.data.size / c
        running_mean *= 1.0 - momentum
        running_mean += momentum * mean
        running_var *= 1.0 - momentum
        if count > 1:
            running_var += momentum * var * count / (count - 1)
        else:
            running_var += momentum * var
    else:
        mean = running_mean
        var = running_var
    std = np.sqrt(var + eps).astype(np.float32)
    x_hat = (x.data - mean.reshape(1, c, 1, 1)) / std.reshape(1, c, 1, 1)
    out_data = (
        gamma.data.reshape(1, c, 1, 1) * x_hat + beta.data.reshape(1, c, 1, 1)
    ).astype(np.float32)

    def backward(grad: np.ndarray):
        dgamma = (grad * x_hat).sum(axis=axes)
        dbeta = grad.sum(axis=axes)
        g = gamma.data.reshape(1, c, 1, 1)
        if training:
            m = x.data.size / c
            dx_hat = grad * g
            dx = (
                dx_hat
                - dx_hat.mean(axis=axes, keepdims=True)
                - x_hat * (dx_hat * x_hat).mean(axis=axes, keepdims=True)
            ) / std.reshape(1, c, 1, 1)
            del m  # batch size folded into the means above
        else:
            dx = grad * g / std.reshape(1, c, 1, 1)
        return dx.astype(np.float32), dgamma, dbeta

    return Tensor(out_data, _parents=(x, gamma, beta), _backward=backward)


def avg_pool2d(x: Tensor, kernel: int) -> Tensor:
    """Non-overlapping average pooling with stride == kernel.

    Requires H and W divisible by *kernel*.
    """
    n, c, h, w = x.shape
    if h % kernel or w % kernel:
        raise ValueError(
            f"avg_pool2d kernel {kernel} must divide spatial dims ({h}x{w})"
        )
    oh, ow = h // kernel, w // kernel
    view = x.data.reshape(n, c, oh, kernel, ow, kernel)
    out_data = view.mean(axis=(3, 5)).astype(np.float32)

    def backward(grad: np.ndarray):
        scaled = grad / (kernel * kernel)
        dx = np.broadcast_to(
            scaled[:, :, :, None, :, None], (n, c, oh, kernel, ow, kernel)
        ).reshape(n, c, h, w)
        return (dx.astype(np.float32),)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Average over the full spatial extent, returning (N, C)."""
    n, c, h, w = x.shape
    out_data = x.data.mean(axis=(2, 3)).astype(np.float32)

    def backward(grad: np.ndarray):
        dx = np.broadcast_to(grad[:, :, None, None] / (h * w), (n, c, h, w))
        return (dx.astype(np.float32),)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def subsample2d(x: Tensor, stride: int) -> Tensor:
    """Spatial subsampling ``x[:, :, ::stride, ::stride]``.

    Used by the ResNet option-A shortcut on stride-2 stages.
    """
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    out_data = np.ascontiguousarray(x.data[:, :, ::stride, ::stride])

    def backward(grad: np.ndarray):
        dx = np.zeros_like(x.data)
        dx[:, :, ::stride, ::stride] = grad
        return (dx,)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def pad_channels(x: Tensor, before: int, after: int) -> Tensor:
    """Zero-pad the channel dimension (ResNet option-A shortcut)."""
    if before < 0 or after < 0:
        raise ValueError("channel padding must be >= 0")
    out_data = np.pad(
        x.data, ((0, 0), (before, after), (0, 0), (0, 0)), mode="constant"
    )

    def backward(grad: np.ndarray):
        c = x.shape[1]
        return (grad[:, before : before + c],)

    return Tensor(out_data, _parents=(x,), _backward=backward)


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy for integer *labels* of shape (N,)."""
    labels = np.asarray(labels)
    n, k = logits.shape
    if labels.shape != (n,):
        raise ValueError(f"labels shape {labels.shape} != ({n},)")
    if labels.min() < 0 or labels.max() >= k:
        raise ValueError(f"labels must be in [0, {k})")
    z = logits.data - logits.data.max(axis=1, keepdims=True)
    exp = np.exp(z)
    softmax = exp / exp.sum(axis=1, keepdims=True)
    log_probs = z - np.log(exp.sum(axis=1, keepdims=True))
    loss = -log_probs[np.arange(n), labels].mean()

    def backward(grad: np.ndarray):
        d = softmax.copy()
        d[np.arange(n), labels] -= 1.0
        return (d * (float(grad) / n),)

    return Tensor(np.float32(loss), _parents=(logits,), _backward=backward)
