"""A small tape-based autograd engine on numpy.

This is the substrate that replaces PyTorch for this reproduction: enough
reverse-mode automatic differentiation to *train* the paper's CNN
topologies (convolutions with stride/padding/groups, batch normalisation,
ReLU family, pooling, linear layers, softmax cross-entropy) and a fast
graph-free inference path used by the fault-injection engine.

Public surface:

- :class:`Tensor` — an N-d array with an optional gradient and a backward
  tape.
- :mod:`repro.tensor.ops` — functional operators building the autograd
  graph (also re-exported here).
- :mod:`repro.tensor.im2col` — the im2col/col2im machinery shared by the
  autograd and the fast inference convolutions.
"""

from repro.tensor.tensor import Tensor, no_grad
from repro.tensor.im2col import col2im, conv_output_size, im2col
from repro.tensor import ops
from repro.tensor.ops import (
    add,
    avg_pool2d,
    batchnorm2d,
    conv2d,
    cross_entropy,
    global_avg_pool2d,
    linear,
    pad_channels,
    relu,
    relu6,
    reshape,
    subsample2d,
)

__all__ = [
    "Tensor",
    "no_grad",
    "ops",
    "im2col",
    "col2im",
    "conv_output_size",
    "add",
    "avg_pool2d",
    "batchnorm2d",
    "conv2d",
    "cross_entropy",
    "global_avg_pool2d",
    "linear",
    "pad_channels",
    "relu",
    "relu6",
    "reshape",
    "subsample2d",
]
