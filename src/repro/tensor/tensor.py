"""The Tensor class: an ndarray with a gradient and a backward tape."""

from __future__ import annotations

import contextlib
from collections.abc import Iterator

import numpy as np

_grad_enabled = True


@contextlib.contextmanager
def no_grad() -> Iterator[None]:
    """Context manager disabling graph construction (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def grad_enabled() -> bool:
    """Whether autograd graph construction is currently enabled."""
    return _grad_enabled


class Tensor:
    """An N-d float32 array with reverse-mode automatic differentiation.

    Construction records parents and a backward closure; calling
    :meth:`backward` on a scalar tensor propagates gradients to every
    ancestor with ``requires_grad=True``.

    Only float32 data participates in gradients; integer tensors (labels)
    can be wrapped with ``requires_grad=False``.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward", "name")

    def __init__(
        self,
        data,
        *,
        requires_grad: bool = False,
        _parents: tuple["Tensor", ...] = (),
        _backward=None,
        name: str | None = None,
    ) -> None:
        array = np.asarray(data)
        if array.dtype.kind == "f" and array.dtype != np.float32:
            array = array.astype(np.float32)
        self.data = array
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents if grad_enabled() else ()
        self._backward = _backward if grad_enabled() else None
        self.name = name

    # -- shape / dtype proxies ---------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        label = f", name={self.name!r}" if self.name else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_flag}{label})"

    # -- numeric helpers -----------------------------------------------------

    def item(self) -> float:
        """Return the scalar value of a one-element tensor."""
        return float(self.data.reshape(-1)[0]) if self.size == 1 else _not_scalar()

    def numpy(self) -> np.ndarray:
        """The underlying ndarray (shared, not copied)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # -- autograd -------------------------------------------------------------

    def zero_grad(self) -> None:
        """Drop any accumulated gradient."""
        self.grad = None

    def accumulate_grad(self, grad: np.ndarray) -> None:
        """Add *grad* into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad, dtype=np.float32)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match data shape "
                f"{self.data.shape} for tensor {self.name or '<unnamed>'}"
            )
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        For scalar tensors *grad* defaults to 1.  Gradients accumulate in
        the ``grad`` attribute of every reachable tensor that has
        ``requires_grad=True``.
        """
        if grad is None:
            if self.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a "
                    f"scalar tensor, got shape {self.shape}"
                )
            grad = np.ones_like(self.data, dtype=np.float32)
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad, dtype=np.float32)}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.requires_grad:
                node.accumulate_grad(node_grad)
            if node._backward is None:
                continue
            parent_grads = node._backward(node_grad)
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None:
                    continue
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad

    # -- operator sugar (delegates to ops; imported lazily to avoid cycles) --

    def __add__(self, other: "Tensor") -> "Tensor":
        from repro.tensor import ops

        return ops.add(self, other)

    def reshape(self, *shape: int) -> "Tensor":
        from repro.tensor import ops

        return ops.reshape(self, shape)


def _not_scalar():
    raise ValueError("item() is only valid on one-element tensors")
