"""im2col / col2im: the workhorses of the numpy convolutions.

``im2col`` lowers a batched image tensor into a matrix of receptive-field
columns so convolution becomes a single matrix product; ``col2im`` scatters
column gradients back into image space (the adjoint).  Both are shared by
the autograd convolution and the fast inference path.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output ({out}) for size={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def zero_pad2d(x: np.ndarray, padding: int) -> np.ndarray:
    """Zero-pad the two trailing spatial axes of ``x`` by *padding*.

    Zero-fill + interior copy: element-for-element what ``np.pad``
    (``mode="constant"``) produces, without its per-call Python
    machinery — this runs once per conv in the fault-injection hot
    loop, so every spatial-padding site (im2col lowering and the
    depthwise convolution path alike) shares this one kernel.
    """
    if padding <= 0:
        return x
    n, c, h, w = x.shape
    padded = np.zeros(
        (n, c, h + 2 * padding, w + 2 * padding), dtype=x.dtype
    )
    padded[:, :, padding : padding + h, padding : padding + w] = x
    return padded


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    padding: int,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Lower ``x`` of shape (N, C, H, W) to columns.

    Returns an array of shape ``(N, C * kh * kw, out_h * out_w)`` where each
    column is the flattened receptive field of one output position.  *out*,
    when given, must be a contiguous float32 array of exactly that shape;
    the columns are written into it instead of a fresh allocation (the
    values are identical — this only changes allocation behaviour, and is
    used by fused execution plans to reuse one workspace per op).
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    x = zero_pad2d(x, padding)
    # windows: (N, C, out_h, out_w, kh, kw) view via stride tricks.
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # -> (N, C, kh, kw, out_h, out_w) -> (N, C*kh*kw, out_h*out_w)
    view = windows.transpose(0, 1, 4, 5, 2, 3)
    if out is not None:
        expected = (n, c * kh * kw, out_h * out_w)
        if out.shape != expected:
            raise ValueError(
                f"im2col workspace shape {out.shape} != required {expected}"
            )
        out.reshape(n, c, kh, kw, out_h, out_w)[...] = view
        return out
    cols = view.reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image shape.

    ``cols`` has shape ``(N, C * kh * kw, out_h * out_w)``; the return value
    has shape *x_shape* = (N, C, H, W).
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    padded = np.zeros(
        (n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype
    )
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
