"""im2col / col2im: the workhorses of the numpy convolutions.

``im2col`` lowers a batched image tensor into a matrix of receptive-field
columns so convolution becomes a single matrix product; ``col2im`` scatters
column gradients back into image space (the adjoint).  Both are shared by
the autograd convolution and the fast inference path.
"""

from __future__ import annotations

import numpy as np


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Output spatial extent of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"non-positive conv output ({out}) for size={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, padding: int
) -> np.ndarray:
    """Lower ``x`` of shape (N, C, H, W) to columns.

    Returns an array of shape ``(N, C * kh * kw, out_h * out_w)`` where each
    column is the flattened receptive field of one output position.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(
            x,
            ((0, 0), (0, 0), (padding, padding), (padding, padding)),
            mode="constant",
        )
    # windows: (N, C, out_h, out_w, kh, kw) view via stride tricks.
    windows = np.lib.stride_tricks.sliding_window_view(x, (kh, kw), axis=(2, 3))
    windows = windows[:, :, ::stride, ::stride, :, :]
    # -> (N, C, kh, kw, out_h, out_w) -> (N, C*kh*kw, out_h*out_w)
    cols = windows.transpose(0, 1, 4, 5, 2, 3).reshape(n, c * kh * kw, out_h * out_w)
    return np.ascontiguousarray(cols)


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to image shape.

    ``cols`` has shape ``(N, C * kh * kw, out_h * out_w)``; the return value
    has shape *x_shape* = (N, C, H, W).
    """
    n, c, h, w = x_shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    padded = np.zeros(
        (n, c, h + 2 * padding, w + 2 * padding), dtype=cols.dtype
    )
    cols = cols.reshape(n, c, kh, kw, out_h, out_w)
    for i in range(kh):
        i_end = i + stride * out_h
        for j in range(kw):
            j_end = j + stride * out_w
            padded[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:-padding, padding:-padding]
    return padded
