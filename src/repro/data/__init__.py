"""Datasets for training and evaluating the model zoo.

CIFAR-10 itself is not redistributable inside this offline reproduction, so
:class:`SynthCIFAR` provides a deterministic, procedurally generated
10-class 32x32 RGB classification task with the same tensor shapes and a
comparable "easy for a small CNN" difficulty.  Fault-injection campaigns
only need a classifier whose top-1 predictions respond to weight
corruption; the statistics of *which bits matter* come from IEEE-754 and
the weight distribution, not from the image content.
"""

from repro.data.synthcifar import (
    CLASS_NAMES,
    NUM_CLASSES,
    SynthCIFAR,
    generate_images,
)
from repro.data.batches import iterate_batches

__all__ = [
    "CLASS_NAMES",
    "NUM_CLASSES",
    "SynthCIFAR",
    "generate_images",
    "iterate_batches",
]
