"""SynthCIFAR: a deterministic synthetic 10-class image dataset.

Each class pairs a geometric shape with a base colour, both informative, so
small CNNs reach high accuracy quickly.  Per-image randomness (position,
size, colour jitter, background, pixel noise) keeps the task non-trivial.
Generation is fully determined by ``(split, seed)``.
"""

from __future__ import annotations

import numpy as np

NUM_CLASSES = 10

CLASS_NAMES = (
    "circle",
    "square",
    "triangle",
    "cross",
    "hstripes",
    "vstripes",
    "ring",
    "checker",
    "diagonal",
    "corner-dot",
)

_BASE_COLOURS = np.array(
    [
        [0.90, 0.15, 0.15],  # circle - red
        [0.15, 0.85, 0.20],  # square - green
        [0.20, 0.30, 0.95],  # triangle - blue
        [0.95, 0.90, 0.15],  # cross - yellow
        [0.90, 0.20, 0.90],  # hstripes - magenta
        [0.15, 0.90, 0.90],  # vstripes - cyan
        [0.95, 0.55, 0.10],  # ring - orange
        [0.55, 0.20, 0.85],  # checker - purple
        [0.92, 0.92, 0.92],  # diagonal - near-white
        [0.10, 0.55, 0.50],  # corner-dot - teal
    ],
    dtype=np.float64,
)


def _shape_mask(label: int, size: int, rng: np.random.Generator) -> np.ndarray:
    """Boolean foreground mask for one image of class *label*."""
    yy, xx = np.mgrid[0:size, 0:size].astype(np.float64)
    cx = size / 2 + rng.uniform(-size * 0.12, size * 0.12)
    cy = size / 2 + rng.uniform(-size * 0.12, size * 0.12)
    r = size * rng.uniform(0.22, 0.34)
    if label == 0:  # circle
        return (xx - cx) ** 2 + (yy - cy) ** 2 <= r * r
    if label == 1:  # square
        return (np.abs(xx - cx) <= r) & (np.abs(yy - cy) <= r)
    if label == 2:  # triangle (downward-pointing)
        return (yy >= cy - r) & (np.abs(xx - cx) <= (cy + r - yy) * 0.6) & (yy <= cy + r)
    if label == 3:  # cross
        arm = r * 0.45
        return ((np.abs(xx - cx) <= arm) & (np.abs(yy - cy) <= r)) | (
            (np.abs(yy - cy) <= arm) & (np.abs(xx - cx) <= r)
        )
    if label == 4:  # horizontal stripes
        period = max(3, int(size * rng.uniform(0.12, 0.2)))
        phase = rng.integers(0, period)
        return ((yy.astype(int) + phase) % period) < period // 2
    if label == 5:  # vertical stripes
        period = max(3, int(size * rng.uniform(0.12, 0.2)))
        phase = rng.integers(0, period)
        return ((xx.astype(int) + phase) % period) < period // 2
    if label == 6:  # ring
        d2 = (xx - cx) ** 2 + (yy - cy) ** 2
        return (d2 <= r * r) & (d2 >= (r * 0.55) ** 2)
    if label == 7:  # checkerboard
        period = max(4, int(size * rng.uniform(0.18, 0.28)))
        phase_x = rng.integers(0, period)
        phase_y = rng.integers(0, period)
        return (
            ((xx.astype(int) + phase_x) // (period // 2)
             + (yy.astype(int) + phase_y) // (period // 2)) % 2
        ) == 0
    if label == 8:  # diagonal band
        width = size * rng.uniform(0.12, 0.2)
        offset = rng.uniform(-size * 0.25, size * 0.25)
        return np.abs(xx - yy + offset) <= width
    if label == 9:  # small dot in a random corner
        corner_x = rng.choice([size * 0.25, size * 0.75])
        corner_y = rng.choice([size * 0.25, size * 0.75])
        rr = size * rng.uniform(0.10, 0.16)
        return (xx - corner_x) ** 2 + (yy - corner_y) ** 2 <= rr * rr
    raise ValueError(f"label must be in [0, {NUM_CLASSES}), got {label}")


def generate_images(
    count: int,
    *,
    image_size: int = 32,
    seed: int = 0,
    noise: float = 0.08,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate *count* images and labels.

    Returns ``(images, labels)`` with images of shape
    ``(count, 3, image_size, image_size)`` (float32 in [0, 1]) and labels of
    shape ``(count,)`` (int64).  Classes are balanced round-robin and the
    order is then shuffled deterministically.
    """
    if count <= 0:
        raise ValueError(f"count must be >= 1, got {count}")
    if image_size < 8:
        raise ValueError(f"image_size must be >= 8, got {image_size}")
    rng = np.random.default_rng(seed)
    labels = np.arange(count) % NUM_CLASSES
    rng.shuffle(labels)
    images = np.empty((count, 3, image_size, image_size), dtype=np.float32)
    for idx in range(count):
        label = int(labels[idx])
        mask = _shape_mask(label, image_size, rng)
        colour = np.clip(
            _BASE_COLOURS[label] + rng.uniform(-0.12, 0.12, size=3), 0.0, 1.0
        )
        background = rng.uniform(0.05, 0.35, size=3)
        img = np.empty((3, image_size, image_size), dtype=np.float64)
        for ch in range(3):
            img[ch] = np.where(mask, colour[ch], background[ch])
        img += rng.normal(0.0, noise, size=img.shape)
        images[idx] = np.clip(img, 0.0, 1.0).astype(np.float32)
    return images, labels.astype(np.int64)


class SynthCIFAR:
    """A train/test split of the synthetic dataset.

    The two splits use disjoint derived seeds, so train and test images are
    i.i.d. but never identical.  Images are normalised to zero mean / unit
    scale using fixed constants (mean 0.5, std 0.25) — the same convention a
    CIFAR pipeline would use.
    """

    MEAN = 0.5
    STD = 0.25

    def __init__(
        self,
        split: str = "train",
        size: int = 2048,
        *,
        image_size: int = 32,
        seed: int = 1234,
        noise: float = 0.08,
        normalize: bool = True,
    ) -> None:
        if split not in ("train", "test"):
            raise ValueError(f"split must be 'train' or 'test', got {split!r}")
        self.split = split
        self.image_size = image_size
        derived_seed = seed * 2 + (0 if split == "train" else 1)
        raw, labels = generate_images(
            size, image_size=image_size, seed=derived_seed, noise=noise
        )
        if normalize:
            raw = (raw - self.MEAN) / self.STD
        self.images = raw
        self.labels = labels

    def __len__(self) -> int:
        return len(self.labels)

    def subset(self, count: int) -> tuple[np.ndarray, np.ndarray]:
        """First *count* images and labels (deterministic slice)."""
        if not 1 <= count <= len(self):
            raise ValueError(
                f"count must be in [1, {len(self)}], got {count}"
            )
        return self.images[:count], self.labels[:count]
