"""Mini-batch iteration helpers."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np


def iterate_batches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    *,
    shuffle: bool = True,
    rng: np.random.Generator | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(images, labels)`` mini-batches.

    With ``shuffle=True`` a permutation drawn from *rng* reorders the
    data each call; the rng is required so epoch order always derives
    from the caller's seed plumbing.  ``drop_last`` discards a final
    ragged batch.
    """
    if batch_size <= 0:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if len(images) != len(labels):
        raise ValueError(
            f"images ({len(images)}) and labels ({len(labels)}) differ in length"
        )
    count = len(images)
    order = np.arange(count)
    if shuffle:
        if rng is None:
            raise ValueError(
                "shuffle=True requires a seeded rng — an OS-entropy "
                "default would make epoch order unreproducible"
            )
        rng.shuffle(order)
    for start in range(0, count, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        yield images[idx], labels[idx]
