"""ASCII table rendering for plans and method comparisons."""

from __future__ import annotations

from collections.abc import Sequence

from repro.sfi.planners import CampaignPlan
from repro.sfi.validation import MethodComparison


def render_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render *rows* under *headers* as a fixed-width ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    cells = [[str(h) for h in headers]] + [
        [_format_cell(value) for value in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    for row_idx, row in enumerate(cells):
        line = " | ".join(value.rjust(widths[i]) for i, value in enumerate(row))
        lines.append(line)
        if row_idx == 0:
            lines.append("-+-".join("-" * w for w in widths))
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:,.4f}".rstrip("0").rstrip(".")
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def render_plan_table(
    plans: Sequence[CampaignPlan],
    layer_params: Sequence[int],
    *,
    exhaustive_per_layer: Sequence[int] | None = None,
    network_wise_allocation: Sequence[int] | None = None,
) -> str:
    """Render the paper's Table I layout for a set of plans.

    One row per layer plus a totals row; one column per plan (by method).
    The network-wise plan has a single network-level stratum, so its
    per-layer column must be supplied as *network_wise_allocation*
    (proportional shares, as the paper reports them).
    """
    num_layers = len(layer_params)
    headers = ["Layer", "Params", "Exhaustive"]
    headers += [plan.method for plan in plans]
    rows: list[list[object]] = []
    totals: list[int] = [0] * len(plans)
    exhaustive_total = 0
    for layer in range(num_layers):
        exhaustive = (
            exhaustive_per_layer[layer]
            if exhaustive_per_layer is not None
            else layer_params[layer] * 64
        )
        exhaustive_total += exhaustive
        row: list[object] = [layer, layer_params[layer], exhaustive]
        for plan_idx, plan in enumerate(plans):
            if plan.method == "network-wise" and network_wise_allocation:
                value = network_wise_allocation[layer]
            else:
                value = plan.layer_injections(layer)
            totals[plan_idx] += value
            row.append(value)
        rows.append(row)
    total_row: list[object] = ["Total", sum(layer_params), exhaustive_total]
    total_row += totals
    rows.append(total_row)
    return render_table(headers, rows)


def render_method_comparison(
    comparisons: Sequence[MethodComparison],
    *,
    exhaustive_n: int | None = None,
    margin_target_percent: float = 1.0,
) -> str:
    """Render the paper's Table III layout."""
    headers = [
        "Method",
        "FIs (n)",
        "Injected [%]",
        f"Avg margin [%] (target<{margin_target_percent:g})",
        "Exhaustive-in-margin",
    ]
    rows: list[list[object]] = []
    if exhaustive_n is not None:
        rows.append(["exhaustive", exhaustive_n, 100.0, "-", "-"])
    for comp in comparisons:
        rows.append(
            [
                comp.method,
                comp.injections,
                round(comp.injected_percent, 2),
                round(comp.average_margin_percent, 4),
                f"{comp.contained_fraction * 100:.0f}% of layers",
            ]
        )
    return render_table(headers, rows)
