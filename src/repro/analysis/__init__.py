"""Reporting and rendering: criticality analyses, tables and ASCII figures."""

from repro.analysis.tables import (
    render_table,
    render_plan_table,
    render_method_comparison,
)
from repro.analysis.figures import (
    ascii_bars,
    render_bit_frequency_figure,
    render_bit_prior_figure,
    render_per_layer_figure,
    render_sample_figure,
    render_variance_curve,
)
from repro.analysis.reports import (
    campaign_to_dict,
    validation_to_dict,
    write_comparison_csv,
    write_json,
    write_layer_csv,
)
from repro.analysis.criticality import (
    BitCriticalityRow,
    LayerCriticalityRow,
    bit_ranking,
    layer_ranking,
    most_critical_bit,
    most_critical_layer,
)

__all__ = [
    "render_table",
    "render_plan_table",
    "render_method_comparison",
    "ascii_bars",
    "render_bit_frequency_figure",
    "render_bit_prior_figure",
    "render_per_layer_figure",
    "render_sample_figure",
    "render_variance_curve",
    "BitCriticalityRow",
    "LayerCriticalityRow",
    "bit_ranking",
    "layer_ranking",
    "most_critical_bit",
    "most_critical_layer",
    "campaign_to_dict",
    "validation_to_dict",
    "write_comparison_csv",
    "write_json",
    "write_layer_csv",
]
