"""Structured export of campaign results and validation reports.

Reliability studies end in artifacts other people consume — CSVs for
plotting, JSON for dashboards/CI gates.  These helpers serialise the
result objects losslessly enough to regenerate every figure offline.
"""

from __future__ import annotations

import csv
import io
import json
import os
from typing import Any

from repro.sfi.results import CampaignResult
from repro.sfi.validation import MethodComparison, ValidationReport
from repro.store import atomic_write_bytes


def campaign_to_dict(result: CampaignResult) -> dict[str, Any]:
    """JSON-ready dictionary of a campaign's observations and estimates."""
    network = result.network_estimate()
    return {
        "method": result.method,
        "granularity": result.granularity.value,
        "t": result.t,
        "seed": result.seed,
        "population": result.space.total_population,
        "total_injections": result.total_injections,
        "total_criticals": result.total_criticals,
        "total_masked": result.total_masked,
        "network": {
            "p_hat": network.p_hat,
            "margin": network.margin,
            "injections": network.injections,
        },
        "layers": [
            {
                "layer": est.key[1],
                "population": est.population,
                "injections": est.injections,
                "criticals": est.criticals,
                "p_hat": est.p_hat,
                "margin": est.margin,
            }
            for est in result.layer_estimates()
        ],
        "cells": [
            {
                "layer": layer,
                "bit": bit,
                "injections": tally[0],
                "criticals": tally[1],
                "masked": tally[2],
            }
            for (layer, bit), tally in sorted(result.cell_tallies.items())
        ],
    }


def validation_to_dict(report: ValidationReport) -> dict[str, Any]:
    """JSON-ready dictionary of a validation report."""
    return {
        "method": report.method,
        "total_injections": report.total_injections,
        "population": report.population,
        "injected_fraction": report.injected_fraction,
        "average_margin": report.average_margin,
        "contained_fraction": report.contained_fraction,
        "average_absolute_error": report.average_absolute_error,
        "network": {
            "exhaustive_rate": report.network.exhaustive_rate,
            "estimate": report.network.estimate.p_hat,
            "margin": report.network.estimate.margin,
            "contained": report.network.contained,
        },
        "layers": [
            {
                "layer": row.layer,
                "exhaustive_rate": row.exhaustive_rate,
                "estimate": row.estimate.p_hat,
                "margin": row.estimate.margin,
                "injections": row.estimate.injections,
                "contained": row.contained,
            }
            for row in report.layers
        ],
    }


def write_json(data: dict | list, path: str | os.PathLike) -> None:
    """Atomically write *data* as pretty-printed JSON (creating directories)."""
    payload = json.dumps(data, indent=2, sort_keys=True) + "\n"
    atomic_write_bytes(path, payload.encode("utf-8"))


def write_layer_csv(
    reports: list[ValidationReport], path: str | os.PathLike
) -> None:
    """Per-layer CSV across several validation reports (one row per
    (method, layer) pair) — the format the paper's Figs. 5/7 plot from."""
    with io.StringIO(newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "method",
                "layer",
                "exhaustive_rate",
                "estimate",
                "margin",
                "injections",
                "contained",
            ]
        )
        for report in reports:
            for row in report.layers:
                writer.writerow(
                    [
                        report.method,
                        row.layer,
                        f"{row.exhaustive_rate:.8f}",
                        f"{row.estimate.p_hat:.8f}",
                        "" if row.estimate.margin is None else f"{row.estimate.margin:.8f}",
                        row.estimate.injections,
                        int(row.contained),
                    ]
                )
        atomic_write_bytes(path, handle.getvalue().encode("utf-8"))


def write_comparison_csv(
    comparisons: list[MethodComparison], path: str | os.PathLike
) -> None:
    """Table III as CSV."""
    with io.StringIO(newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "method",
                "injections",
                "injected_percent",
                "average_margin_percent",
                "contained_fraction",
            ]
        )
        for comp in comparisons:
            writer.writerow(
                [
                    comp.method,
                    comp.injections,
                    f"{comp.injected_percent:.4f}",
                    f"{comp.average_margin_percent:.6f}",
                    f"{comp.contained_fraction:.4f}",
                ]
            )
        atomic_write_bytes(path, handle.getvalue().encode("utf-8"))
