"""ASCII renderings of the paper's figures.

Each ``render_*`` function returns a plain-text block whose rows carry the
same series the corresponding paper figure plots, so benchmark output can
be eyeballed against the publication.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.ieee754 import BitFrequencies
from repro.sfi.results import Estimate


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    fmt: str = "{:.4f}",
) -> str:
    """Horizontal ASCII bar chart (one row per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not values:
        return "(empty)"
    peak = max(max(values), 1e-300)
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(width * value / peak))
        lines.append(
            f"{str(label).rjust(label_width)} | {bar:<{width}} {fmt.format(value)}"
        )
    return "\n".join(lines)


def render_variance_curve(points: int = 11) -> str:
    """Fig. 1 (left): p * (1 - p) against p, maximised at p = 0.5."""
    ps = np.linspace(0.0, 1.0, points)
    return ascii_bars(
        [f"p={p:.2f}" for p in ps],
        [float(p * (1 - p)) for p in ps],
    )


def render_bit_frequency_figure(freqs: BitFrequencies) -> str:
    """Fig. 3: f0(i) and f1(i) per bit position, MSB first."""
    rows = freqs.as_rows()
    lines = [f"{'bit':>4} {'f0':>12} {'f1':>12}"]
    for bit, f0, f1 in rows:
        lines.append(f"{bit:>4} {f0:>12,} {f1:>12,}")
    return "\n".join(lines)


def render_bit_prior_figure(
    p_by_network: dict[str, np.ndarray]
) -> str:
    """Fig. 4: the data-aware prior p(i) per bit for each network."""
    names = list(p_by_network)
    bits = len(next(iter(p_by_network.values())))
    header = f"{'bit':>4} " + " ".join(f"{name:>14}" for name in names)
    lines = [header]
    for bit in range(bits - 1, -1, -1):
        cells = " ".join(
            f"{float(p_by_network[name][bit]):>14.4f}" for name in names
        )
        lines.append(f"{bit:>4} {cells}")
    return "\n".join(lines)


def render_per_layer_figure(
    exhaustive_rates: Sequence[float],
    estimates_by_method: dict[str, Sequence[Estimate]],
    *,
    percent: bool = True,
) -> str:
    """Figs. 5/7: per-layer critical rate, exhaustive vs estimates+margins."""
    scale = 100.0 if percent else 1.0
    unit = "%" if percent else ""
    methods = list(estimates_by_method)
    header = f"{'layer':>5} {'exhaustive':>12} " + " ".join(
        f"{m + ' (est±margin)':>26}" for m in methods
    )
    lines = [header]
    for layer, rate in enumerate(exhaustive_rates):
        cells = []
        for method in methods:
            est = estimates_by_method[method][layer]
            margin = est.margin
            margin_text = (
                f"±{margin * scale:.3f}{unit}" if margin is not None else "±n/a"
            )
            mark = "ok" if margin is not None and est.contains(rate) else "MISS"
            cells.append(
                f"{est.p_hat * scale:>9.3f}{unit} {margin_text:>10} {mark:>4}"
            )
        lines.append(
            f"{layer:>5} {rate * scale:>11.3f}{unit} " + " ".join(
                f"{c:>26}" for c in cells
            )
        )
    return "\n".join(lines)


def render_sample_figure(
    exhaustive_rate: float,
    samples_by_method: dict[str, Sequence[Estimate]],
    *,
    percent: bool = True,
) -> str:
    """Fig. 6: per-sample (S0-S9) estimates and margins for one layer."""
    scale = 100.0 if percent else 1.0
    unit = "%" if percent else ""
    lines = [f"exhaustive critical rate: {exhaustive_rate * scale:.3f}{unit}"]
    for method, estimates in samples_by_method.items():
        lines.append(f"-- {method} (n={estimates[0].injections})")
        for idx, est in enumerate(estimates):
            margin = est.margin if est.margin is not None else float("nan")
            mark = "ok" if est.contains(exhaustive_rate) else "MISS"
            lines.append(
                f"  S{idx}: {est.p_hat * scale:7.3f}{unit} "
                f"±{margin * scale:.3f}{unit} {mark}"
            )
    return "\n".join(lines)
