"""Criticality analyses over exhaustive or statistical results.

These answer the questions that motivate the paper — *which layer* and
*which bit position* are most vulnerable — from an
:class:`~repro.faults.OutcomeTable` (exhaustive ground truth) or from a
bit-granularity :class:`~repro.sfi.CampaignResult`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.table import OutcomeTable
from repro.sfi.granularity import Granularity
from repro.sfi.results import CampaignResult


@dataclass(frozen=True)
class LayerCriticalityRow:
    """Critical rate of one layer."""

    layer: int
    criticals: int
    population: int
    rate: float


@dataclass(frozen=True)
class BitCriticalityRow:
    """Critical rate of one bit position (aggregated over layers)."""

    bit: int
    criticals: int
    population: int
    rate: float


def layer_ranking(table: OutcomeTable) -> list[LayerCriticalityRow]:
    """Layers sorted by exhaustive critical rate, most critical first."""
    rows = []
    for layer in range(table.num_layers):
        criticals, population = table.layer_counts(layer)
        rows.append(
            LayerCriticalityRow(
                layer=layer,
                criticals=criticals,
                population=population,
                rate=criticals / population if population else 0.0,
            )
        )
    return sorted(rows, key=lambda r: (-r.rate, r.layer))


def bit_ranking(table: OutcomeTable) -> list[BitCriticalityRow]:
    """Bit positions sorted by exhaustive critical rate, network-wide."""
    rows = []
    for bit in range(table.bits):
        criticals = 0
        population = 0
        for layer in range(table.num_layers):
            c, p = table.cell_counts(layer, bit)
            criticals += c
            population += p
        rows.append(
            BitCriticalityRow(
                bit=bit,
                criticals=criticals,
                population=population,
                rate=criticals / population if population else 0.0,
            )
        )
    return sorted(rows, key=lambda r: (-r.rate, r.bit))


def most_critical_layer(table: OutcomeTable) -> LayerCriticalityRow:
    """The layer with the highest exhaustive critical rate."""
    return layer_ranking(table)[0]


def most_critical_bit(table: OutcomeTable) -> BitCriticalityRow:
    """The bit position with the highest exhaustive critical rate."""
    return bit_ranking(table)[0]


def estimated_bit_ranking(result: CampaignResult) -> list[BitCriticalityRow]:
    """Bit ranking estimated from a bit-granularity campaign.

    Only meaningful for campaigns planned at (bit, layer) granularity —
    exactly the paper's point: coarser campaigns cannot answer this
    question validly.
    """
    if result.granularity is not Granularity.BIT_LAYER:
        raise ValueError(
            "per-bit criticality requires a bit-granularity campaign; "
            f"got {result.granularity.value} (the paper's 4th-Bernoulli "
            "argument: coarser samples cannot rank bits)"
        )
    rows = []
    for bit in range(result.space.bits):
        weighted = 0.0
        population = 0
        criticals = 0
        injections = 0
        for layer in range(len(result.space.layers)):
            est = result.cell_estimate(layer, bit)
            weighted += est.p_hat * result.space.cell_population(layer)
            population += result.space.cell_population(layer)
            criticals += est.criticals
            injections += est.injections
        rows.append(
            BitCriticalityRow(
                bit=bit,
                criticals=criticals,
                population=population,
                rate=weighted / population if population else 0.0,
            )
        )
    return sorted(rows, key=lambda r: (-r.rate, r.bit))
