"""The data-aware p(i) pipeline (paper Section III-B, Eq. 4-5).

From the *golden* weight distribution alone, estimate how critical a fault
on each bit position is:

1. Count per-bit frequencies f0(i), f1(i) over all weights (Fig. 3).
2. Compute average bit-flip distances D_{0->1}(i), D_{1->0}(i).
3. Combine: ``D_avg(i) = D_{0->1}(i) * f0(i) + D_{1->0}(i) * f1(i)``
   (Eq. 4; frequencies enter as fractions so D_avg is an expected
   per-weight distance).
4. Min-max normalise D_avg into [0, 0.5] *excluding outliers*; outliers are
   pinned at the maximum criticality p = 0.5 (Eq. 5).

The resulting p(i) feeds Eq. 1 per (bit, layer) subpopulation: bits whose
corruption barely moves the weight get p near 0 (tiny samples), bits that
explode the weight get p = 0.5 (the safe maximum).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.targets import enumerate_weight_layers
from repro.ieee754 import (
    FLOAT32,
    BitFlipDistances,
    BitFrequencies,
    FloatFormat,
    bit_flip_distances,
    bit_frequencies,
)
from repro.nn import Module

_OUTLIER_POLICIES = ("iqr", "percentile", "none")


@dataclass(frozen=True)
class BitCriticality:
    """Per-bit criticality profile of a weight population.

    Attributes
    ----------
    fmt:
        Floating-point format analysed.
    frequencies:
        f0/f1 counts per bit (paper Fig. 3).
    distances:
        Average bit-flip distances per bit and direction.
    d_avg:
        Eq. 4 combined criticality value per bit.
    p:
        Eq. 5 normalised per-bit prior in [0, 0.5] (paper Fig. 4).
    outliers:
        Boolean mask of bits treated as outliers (pinned at p = 0.5).
    """

    fmt: FloatFormat
    frequencies: BitFrequencies
    distances: BitFlipDistances
    d_avg: np.ndarray
    p: np.ndarray
    outliers: np.ndarray


def model_weight_vector(model: Module) -> np.ndarray:
    """All conv/linear weights of *model* concatenated into one vector."""
    layers = enumerate_weight_layers(model)
    return np.concatenate([layer.flat_weights() for layer in layers])


def bit_criticality(
    weights: np.ndarray,
    *,
    fmt: FloatFormat = FLOAT32,
    nonfinite: str = "max",
    outlier_policy: str = "iqr",
    outlier_percentile: float = 95.0,
) -> BitCriticality:
    """Full Eq. 4-5 pipeline over a weight vector.

    Parameters
    ----------
    weights:
        The golden weights (any shape; flattened).
    fmt:
        Floating-point format to analyse.
    nonfinite:
        Policy for non-finite bit-flip results (see
        :func:`repro.ieee754.bit_flip_distances`).
    outlier_policy:
        ``"iqr"`` (Tukey fences on log10 D_avg), ``"percentile"`` (everything
        above *outlier_percentile* of D_avg) or ``"none"``.
    """
    weights = np.asarray(weights).ravel()
    if weights.size == 0:
        raise ValueError("weight vector is empty")
    freqs = bit_frequencies(fmt, weights)
    dists = bit_flip_distances(fmt, weights, nonfinite=nonfinite)
    total = freqs.total
    f0 = freqs.f0 / total
    f1 = freqs.f1 / total
    d_avg = dists.d01 * f0 + dists.d10 * f1
    outliers = _find_outliers(d_avg, outlier_policy, outlier_percentile)
    p = _normalise(d_avg, outliers)
    return BitCriticality(
        fmt=fmt,
        frequencies=freqs,
        distances=dists,
        d_avg=d_avg,
        p=p,
        outliers=outliers,
    )


def data_aware_p(
    model: Module,
    *,
    fmt: FloatFormat = FLOAT32,
    nonfinite: str = "max",
    outlier_policy: str = "iqr",
) -> np.ndarray:
    """Per-bit prior p(i) for *model* (convenience wrapper)."""
    return bit_criticality(
        model_weight_vector(model),
        fmt=fmt,
        nonfinite=nonfinite,
        outlier_policy=outlier_policy,
    ).p


def _find_outliers(
    d_avg: np.ndarray, policy: str, percentile: float
) -> np.ndarray:
    """Bits whose D_avg is an outlier of the distribution."""
    if policy not in _OUTLIER_POLICIES:
        raise ValueError(
            f"outlier_policy must be one of {_OUTLIER_POLICIES}, got {policy!r}"
        )
    if policy == "none":
        return np.zeros(d_avg.shape, dtype=bool)
    finite = np.isfinite(d_avg)
    outliers = ~finite  # non-finite averages are always outliers
    values = d_avg[finite]
    if values.size == 0:
        return np.ones(d_avg.shape, dtype=bool)
    if policy == "percentile":
        cut = np.percentile(values, percentile)
        outliers |= d_avg > cut
        return outliers
    # IQR fences on a log scale: bit-flip distances span ~40 decades in
    # float32, so linear-scale fences would mark almost everything or
    # nothing.  Zero distances are kept (never high outliers).
    positive = values[values > 0]
    if positive.size < 4:
        return outliers
    logs = np.log10(positive)
    q1, q3 = np.percentile(logs, [25, 75])
    upper = q3 + 1.5 * (q3 - q1)
    with np.errstate(divide="ignore"):
        log_d = np.where(d_avg > 0, np.log10(np.maximum(d_avg, 1e-300)), -np.inf)
    outliers |= log_d > upper
    return outliers


def _normalise(d_avg: np.ndarray, outliers: np.ndarray) -> np.ndarray:
    """Eq. 5: min-max into [0, 0.5] on non-outliers; outliers get 0.5."""
    a, b = 0.0, 0.5
    p = np.full(d_avg.shape, b, dtype=np.float64)
    inner = d_avg[~outliers]
    if inner.size == 0:
        return p
    lo = float(inner.min())
    hi = float(inner.max())
    if hi > lo:
        p[~outliers] = a + (d_avg[~outliers] - lo) * (b - a) / (hi - lo)
    else:
        p[~outliers] = b  # degenerate: all equal -> safest prior
    return p
