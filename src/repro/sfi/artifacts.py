"""Cached exhaustive ground truth for the mini models.

The exhaustive campaign is the expensive part of the reproduction (it is
what took the paper 37-54 GPU-days at full scale).  This module runs it
once per (model, eval size, policy) configuration and caches the
:class:`~repro.faults.OutcomeTable` under the artifacts directory; every
benchmark and example replays from the cache.
"""

from __future__ import annotations

import shutil
import warnings
from pathlib import Path

from repro.data import SynthCIFAR
from repro.faults import FaultInjectionEngine, FaultSpace, OutcomeTable
from repro.models import create_model
from repro.telemetry import Telemetry, resolve_telemetry
from repro.utils import artifacts_dir


def exhaustive_table_path(
    model_name: str,
    *,
    eval_size: int = 64,
    policy: str = "accuracy_drop",
    fuse: bool = False,
    backend: str | None = None,
) -> Path:
    """Cache location for one exhaustive configuration.

    Unfused plan and module engines share a cache entry (their outcomes
    are bit-identical); fused campaigns are numerically different and
    cache under a ``_fused`` suffix.  *backend* names a non-reference
    kernel backend, whose outcomes likewise never share the reference
    cache (``_via_<backend>`` suffix); pass ``None`` for the reference.
    """
    suffix = "_fused" if fuse else ""
    if backend is not None:
        suffix += f"_via_{backend}"
    return (
        artifacts_dir()
        / "exhaustive"
        / f"{model_name}_n{eval_size}_{policy}{suffix}.npz"
    )


def exhaustive_checkpoint_path(
    model_name: str,
    *,
    eval_size: int = 64,
    policy: str = "accuracy_drop",
    fuse: bool = False,
    backend: str | None = None,
) -> Path:
    """Checkpoint directory for one exhaustive configuration."""
    path = exhaustive_table_path(
        model_name,
        eval_size=eval_size,
        policy=policy,
        fuse=fuse,
        backend=backend,
    )
    return path.with_suffix(".ckpt")


def regenerate_command(
    model_name: str, *, eval_size: int = 64, policy: str = "accuracy_drop"
) -> str:
    """Command that rebuilds one cached exhaustive table from scratch."""
    command = f"repro-run --model {model_name} --eval-size {eval_size}"
    if policy != "accuracy_drop":
        command += f"  (policy {policy})"
    return f"delete the file and run `{command}`"


def load_or_run_exhaustive(
    model_name: str,
    *,
    eval_size: int = 64,
    policy: str = "accuracy_drop",
    engine_kind: str = "plan",
    fuse: bool = False,
    backend: str | None = None,
    batch_size: int | None = None,
    workers: int | None = 1,
    shards: int | None = None,
    resume: bool = True,
    telemetry: Telemetry | None = None,
    progress: bool = False,
) -> tuple[OutcomeTable, FaultSpace, FaultInjectionEngine]:
    """Return the exhaustive table for a pretrained mini model.

    Loads from the artifact cache when present; otherwise runs the full
    exhaustive campaign (minutes for the mini models) and caches it,
    fanning out over *workers* processes and — with *resume* (default) —
    checkpointing finished cells so a killed campaign picks up where it
    stopped.  Always returns a live ``(table, space, engine)`` triple for
    the same model/eval configuration, so sampled campaigns can either
    replay from the table or re-inject through the engine.

    *engine_kind* selects ``"plan"`` (default) or ``"module"``
    (reference) execution; unfused plan outcomes are bit-identical to
    module outcomes, so both kinds share the cache.  *fuse* opts into
    the plan engine's numeric-changing fusions and caches under a
    separate ``_fused`` artifact; *batch_size* tunes how many same-layer
    faults share one tail pass (plan engine only).  *backend* selects
    the kernel backend (default: ``REPRO_BACKEND`` or the numpy
    reference); non-reference backends are numerically distinct and
    cache under their own ``_via_<backend>`` artifact.

    With *shards* set the cold-cache campaign instead goes through
    :func:`repro.dist.run_sharded_exhaustive`: the work is split into
    that many shards, drained by a local worker fleet through a queue
    directory next to the cache file, and merged — bit-identical to the
    serial run, and resumable across kills (done shards are kept).

    *telemetry* journals the campaign (or an ``artifact_cache_hit``
    event when the table is served from the cache).

    .. deprecated::
        *progress* — pass *telemetry* and read its ``progress`` events;
        the flag is kept as a shim and still prints the same lines.
    """
    if progress:
        warnings.warn(
            "load_or_run_exhaustive(progress=True) is deprecated; pass "
            "telemetry=Telemetry(...) and read its progress events",
            DeprecationWarning,
            stacklevel=2,
        )
    # Late import: repro.runtime is only needed to build live engines.
    from repro.runtime import create_engine

    tele = resolve_telemetry(telemetry)
    model = create_model(model_name, pretrained=True)
    data = SynthCIFAR("test", size=eval_size, seed=1234)
    engine = create_engine(
        model,
        data.images,
        data.labels,
        kind=engine_kind,
        policy=policy,
        fuse=fuse,
        backend=backend,
        batch_size=batch_size,
        telemetry=telemetry,
    )
    space = FaultSpace(engine.layers)
    engine_backend = getattr(engine, "backend", None)
    backend_name = (
        engine_backend.name
        if engine_backend is not None and not engine_backend.is_reference
        else None
    )
    path = exhaustive_table_path(
        model_name,
        eval_size=eval_size,
        policy=policy,
        fuse=fuse,
        backend=backend_name,
    )
    if path.is_file():
        with tele.span("artifacts.load_exhaustive", emit=True, model=model_name):
            table = OutcomeTable.load(
                path,
                regenerate=regenerate_command(
                    model_name, eval_size=eval_size, policy=policy
                ),
            )
        if table.num_layers != len(space.layers):
            raise ValueError(
                f"cached table at {path} does not match model {model_name}"
            )
        if tele.enabled:
            tele.emit(
                "artifact_cache_hit", model=model_name, path=str(path)
            )
            tele.counter("artifacts.cache_hits").add(1)
        return table, space, engine
    if shards is not None:
        # Late import: repro.dist pulls in the queue/merge machinery,
        # which most artifact consumers never need.
        from repro.dist import run_sharded_exhaustive

        table = run_sharded_exhaustive(
            engine,
            space,
            path.with_suffix(".queue"),
            shards=shards,
            workers=workers,
            telemetry=telemetry,
            runtime={
                "model": model_name,
                "eval_size": eval_size,
                "policy": policy,
                "engine": engine.kind,
                "fuse": bool(fuse),
                **(
                    {"backend": backend_name}
                    if backend_name is not None
                    else {}
                ),
            },
        )
        table.metadata["model"] = model_name
        table.save(path)
        shutil.rmtree(path.with_suffix(".queue"), ignore_errors=True)
        return table, space, engine
    reporter = None
    if progress:
        def reporter(done: int, total: int) -> None:
            print(f"  exhaustive {model_name}: {done:,}/{total:,}", flush=True)
    checkpoint = (
        exhaustive_checkpoint_path(
            model_name,
            eval_size=eval_size,
            policy=policy,
            fuse=fuse,
            backend=backend_name,
        )
        if resume
        else None
    )
    with warnings.catch_warnings():
        # The deprecated *progress* shim above is the one caller allowed
        # to keep using the deprecated callback parameter silently.
        warnings.simplefilter("ignore", DeprecationWarning)
        table = OutcomeTable.from_exhaustive(
            engine,
            space,
            workers=workers,
            checkpoint=checkpoint,
            telemetry=telemetry,
            progress=reporter,
        )
    table.metadata["model"] = model_name
    table.save(path)
    if checkpoint is not None and checkpoint.exists():
        # The finished table is persisted and verified; the checkpoint has
        # served its purpose.
        shutil.rmtree(checkpoint, ignore_errors=True)
    return table, space, engine
