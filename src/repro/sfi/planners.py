"""The four SFI campaign planners.

A planner turns a :class:`~repro.faults.FaultSpace` into a
:class:`CampaignPlan`: the list of subpopulations to sample and, per
subpopulation, the Eq. 1 sample size under the method's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.faults.space import FaultSpace
from repro.nn import Module
from repro.sfi.dataaware import BitCriticality, bit_criticality
from repro.sfi.granularity import (
    Granularity,
    Subpopulation,
    cell_subpopulations,
    layer_subpopulations,
    network_subpopulation,
)
from repro.stats import confidence_to_t, sample_size


@dataclass(frozen=True)
class PlannedSubpopulation:
    """One stratum with its planned sample size and assumed prior."""

    subpopulation: Subpopulation
    sample_size: int
    p_assumed: float


@dataclass
class CampaignPlan:
    """The executable output of a planner."""

    method: str
    granularity: Granularity
    error_margin: float
    confidence: float
    t: float
    items: list[PlannedSubpopulation] = field(default_factory=list)

    @property
    def total_injections(self) -> int:
        """Total planned sample size n_TOT (paper Eq. 3)."""
        return sum(item.sample_size for item in self.items)

    def layer_injections(self, layer: int) -> int:
        """Planned injections whose stratum lies in *layer*.

        For the network-wise plan the single stratum spans all layers, so
        per-layer numbers are undefined here; use the executed campaign's
        :meth:`~repro.sfi.results.CampaignResult.layer_injections` instead.
        """
        return sum(
            item.sample_size
            for item in self.items
            if item.subpopulation.layer == layer
        )

    def describe(self) -> str:
        """One-line description of the plan."""
        return (
            f"{self.method}: {len(self.items)} subpopulations, "
            f"n_TOT={self.total_injections} "
            f"(e={self.error_margin:.2%}, confidence={self.confidence:.0%})"
        )


class _BasePlanner:
    """Shared configuration for all planners."""

    method: str = "base"
    granularity: Granularity = Granularity.NETWORK

    def __init__(
        self,
        error_margin: float = 0.01,
        confidence: float = 0.99,
        *,
        t_mode: str = "paper",
        min_samples: int = 0,
    ) -> None:
        if error_margin <= 0 or error_margin >= 1:
            raise ValueError(
                f"error_margin must be in (0, 1), got {error_margin}"
            )
        self.error_margin = error_margin
        self.confidence = confidence
        self.t = confidence_to_t(confidence, mode=t_mode)
        self.min_samples = min_samples

    def _plan(
        self, subpopulations: list[Subpopulation], priors: list[float]
    ) -> CampaignPlan:
        plan = CampaignPlan(
            method=self.method,
            granularity=self.granularity,
            error_margin=self.error_margin,
            confidence=self.confidence,
            t=self.t,
        )
        for subpop, prior in zip(subpopulations, priors):
            n = sample_size(
                subpop.population,
                self.error_margin,
                self.t,
                prior,
                min_samples=self.min_samples,
            )
            plan.items.append(
                PlannedSubpopulation(
                    subpopulation=subpop, sample_size=n, p_assumed=prior
                )
            )
        return plan

    def plan(self, space: FaultSpace) -> CampaignPlan:
        """Build the campaign plan for *space*."""
        raise NotImplementedError


class NetworkWiseSFI(_BasePlanner):
    """Eq. 1 applied once to the whole fault population ([9] baseline).

    Valid for the single network-level critical rate; the paper shows its
    per-layer readouts violate the Bernoulli assumptions and blow past the
    target error margin.
    """

    method = "network-wise"
    granularity = Granularity.NETWORK

    def plan(self, space: FaultSpace) -> CampaignPlan:
        subpop = network_subpopulation(space)
        return self._plan([subpop], [0.5])


class LayerWiseSFI(_BasePlanner):
    """Eq. 1 applied to each layer independently."""

    method = "layer-wise"
    granularity = Granularity.LAYER

    def plan(self, space: FaultSpace) -> CampaignPlan:
        subpops = layer_subpopulations(space)
        return self._plan(subpops, [0.5] * len(subpops))


class DataUnawareSFI(_BasePlanner):
    """Eq. 1 per (bit, layer) cell with the safe prior p = 0.5 (Eq. 3)."""

    method = "data-unaware"
    granularity = Granularity.BIT_LAYER

    def plan(self, space: FaultSpace) -> CampaignPlan:
        subpops = cell_subpopulations(space)
        return self._plan(subpops, [0.5] * len(subpops))


class DataAwareSFI(_BasePlanner):
    """Eq. 1 per (bit, layer) cell with the data-aware prior p(i).

    The prior comes from the golden weight distribution via Eq. 4-5; it can
    be supplied explicitly (``profile=`` or ``p=``) or is computed from the
    fault space's own weights at planning time.
    """

    method = "data-aware"
    granularity = Granularity.BIT_LAYER

    def __init__(
        self,
        error_margin: float = 0.01,
        confidence: float = 0.99,
        *,
        t_mode: str = "paper",
        min_samples: int = 0,
        profile: BitCriticality | None = None,
        p: np.ndarray | None = None,
        outlier_policy: str = "iqr",
        nonfinite: str = "max",
        per_layer: bool = False,
    ) -> None:
        super().__init__(
            error_margin, confidence, t_mode=t_mode, min_samples=min_samples
        )
        if profile is not None and p is not None:
            raise ValueError("pass either profile or p, not both")
        if per_layer and (profile is not None or p is not None):
            raise ValueError(
                "per_layer profiles are computed from the fault space; "
                "do not pass profile/p together with per_layer=True"
            )
        self._profile = profile
        self._p = None if p is None else np.asarray(p, dtype=np.float64)
        self.outlier_policy = outlier_policy
        self.nonfinite = nonfinite
        self.per_layer = per_layer

    def bit_priors(self, space: FaultSpace) -> np.ndarray:
        """The per-bit p(i) used for planning on *space*."""
        if self._p is not None:
            if self._p.shape != (space.bits,):
                raise ValueError(
                    f"p must have shape ({space.bits},), got {self._p.shape}"
                )
            return self._p
        profile = self._profile
        if profile is None:
            weights = np.concatenate(
                [layer.flat_weights() for layer in space.layers]
            )
            profile = bit_criticality(
                weights,
                fmt=space.fmt,
                nonfinite=self.nonfinite,
                outlier_policy=self.outlier_policy,
            )
        if profile.fmt.total_bits != space.bits:
            raise ValueError(
                f"profile format {profile.fmt.name} does not match the "
                f"fault space format {space.fmt.name}"
            )
        return profile.p

    def layer_priors(self, space: FaultSpace) -> list[np.ndarray]:
        """Per-layer p_l(i) profiles (``per_layer=True`` extension).

        The paper computes one global p(i) from all weights; profiling each
        layer's own weight distribution instead captures per-layer scale
        differences (e.g. the classifier's wider weights) at the cost of
        noisier profiles for small layers.
        """
        return [
            bit_criticality(
                layer.flat_weights(),
                fmt=space.fmt,
                nonfinite=self.nonfinite,
                outlier_policy=self.outlier_policy,
            ).p
            for layer in space.layers
        ]

    def plan(self, space: FaultSpace) -> CampaignPlan:
        subpops = cell_subpopulations(space)
        if self.per_layer:
            per_layer = self.layer_priors(space)
            priors = [
                float(per_layer[subpop.layer][subpop.bit]) for subpop in subpops
            ]
        else:
            priors_by_bit = self.bit_priors(space)
            priors = [float(priors_by_bit[subpop.bit]) for subpop in subpops]
        return self._plan(subpops, priors)

    def plan_with_model(self, model: Module, space: FaultSpace) -> CampaignPlan:
        """Plan using a profile computed from *model*'s weights."""
        from repro.sfi.dataaware import model_weight_vector

        profile = bit_criticality(
            model_weight_vector(model),
            fmt=space.fmt,
            nonfinite=self.nonfinite,
            outlier_policy=self.outlier_policy,
        )
        planner = DataAwareSFI(
            self.error_margin,
            self.confidence,
            min_samples=self.min_samples,
            profile=profile,
        )
        planner.t = self.t
        return planner.plan(space)
