"""Subpopulation partitioning at the paper's three granularities.

The paper's key observation: Eq. 1 requires the 4th Bernoulli assumption
(equal success probability for every trial), which holds only *within* a
subpopulation of comparable faults.  The finer the partition, the more
homogeneous each part:

- network granularity — one population, valid only for whole-network
  questions;
- layer granularity — one subpopulation per layer;
- (bit, layer) granularity — one subpopulation per bit position per layer,
  the level at which "a fault on bit *i* of any weight in layer *l* has the
  same probability of success" is a reasonable assumption.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.faults.model import Fault
from repro.faults.space import FaultSpace


class Granularity(enum.Enum):
    """Partitioning level of a campaign."""

    NETWORK = "network"
    LAYER = "layer"
    BIT_LAYER = "bit-layer"


@dataclass(frozen=True)
class Subpopulation:
    """One stratum of the fault population.

    Attributes
    ----------
    granularity:
        The partitioning level this stratum belongs to.
    layer:
        Layer index, or None for the network-level population.
    bit:
        Bit position, or None unless granularity is BIT_LAYER.
    population:
        Number of possible faults N in this stratum.
    space:
        The owning fault space (used to decode sampled local ids).
    """

    granularity: Granularity
    layer: int | None
    bit: int | None
    population: int
    space: FaultSpace

    @property
    def key(self) -> tuple:
        """Hashable identity of the stratum."""
        return (self.granularity.value, self.layer, self.bit)

    def fault(self, local_id: int) -> Fault:
        """Decode a stratum-local id into a :class:`Fault`."""
        if self.granularity is Granularity.NETWORK:
            return self.space.network_fault(local_id)
        if self.granularity is Granularity.LAYER:
            assert self.layer is not None
            return self.space.layer_fault(self.layer, local_id)
        assert self.layer is not None and self.bit is not None
        return self.space.cell_fault(self.layer, self.bit, local_id)


def network_subpopulation(space: FaultSpace) -> Subpopulation:
    """The whole population as a single stratum."""
    return Subpopulation(
        granularity=Granularity.NETWORK,
        layer=None,
        bit=None,
        population=space.total_population,
        space=space,
    )


def layer_subpopulations(space: FaultSpace) -> list[Subpopulation]:
    """One stratum per layer."""
    return [
        Subpopulation(
            granularity=Granularity.LAYER,
            layer=layer,
            bit=None,
            population=space.layer_population(layer),
            space=space,
        )
        for layer in range(len(space.layers))
    ]


def cell_subpopulations(space: FaultSpace) -> list[Subpopulation]:
    """One stratum per (bit, layer) cell, layer-major then bit order."""
    return [
        Subpopulation(
            granularity=Granularity.BIT_LAYER,
            layer=layer,
            bit=bit,
            population=space.cell_population(layer),
            space=space,
        )
        for layer in range(len(space.layers))
        for bit in range(space.bits)
    ]
