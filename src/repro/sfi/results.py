"""Campaign result containers and stratified estimation.

A campaign's raw observations are tallied per (layer, bit) cell regardless
of the planning granularity; estimates at any level are then derived:

- **Pooled** estimates (network-wise and layer-wise campaigns): the
  observations inside the level form a simple random sample of it, so
  ``p_hat = criticals / n`` with the finite-population margin of Eq. 1.
- **Stratified** estimates (bit-level campaigns, or network-level readouts
  of layer-wise campaigns): combine strata as
  ``p_hat = sum(N_h * p_h) / N`` with variance
  ``sum((N_h/N)^2 * p_h(1-p_h)/n_h * FPC_h)``.  Strata that the plan left
  unsampled (data-aware cells with p(i) = 0) contribute their assumed prior
  with zero variance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.faults.space import FaultSpace
from repro.sfi.granularity import Granularity
from repro.stats import error_margin


@dataclass(frozen=True)
class Estimate:
    """A critical-rate estimate for one population level."""

    key: tuple
    population: int
    injections: int
    criticals: int
    p_hat: float
    margin: float | None

    def interval(self) -> tuple[float, float]:
        """(low, high) bounds, clamped into [0, 1]; requires a margin."""
        if self.margin is None:
            raise ValueError(f"estimate {self.key} has no defined margin")
        return (max(0.0, self.p_hat - self.margin), min(1.0, self.p_hat + self.margin))

    def contains(self, true_rate: float) -> bool:
        """Whether *true_rate* falls inside the margin."""
        if self.margin is None:
            return False
        return abs(true_rate - self.p_hat) <= self.margin + 1e-12


@dataclass
class CampaignResult:
    """Observations and derived estimates of one executed campaign."""

    method: str
    granularity: Granularity
    t: float
    space: FaultSpace
    #: (layer, bit) -> [injections, criticals, masked]
    cell_tallies: dict[tuple[int, int], list[int]] = field(default_factory=dict)
    #: (layer, bit) -> assumed prior p for unsampled strata (data-aware).
    assumed_p: dict[tuple[int, int], float] = field(default_factory=dict)
    seed: int = 0

    # -- raw tallies -------------------------------------------------------

    def record(self, layer: int, bit: int, critical: bool, masked: bool) -> None:
        """Tally one observed injection."""
        tally = self.cell_tallies.setdefault((layer, bit), [0, 0, 0])
        tally[0] += 1
        tally[1] += int(critical)
        tally[2] += int(masked)

    @property
    def total_injections(self) -> int:
        """Number of faults actually injected."""
        return sum(t[0] for t in self.cell_tallies.values())

    @property
    def total_criticals(self) -> int:
        """Number of injected faults classified critical."""
        return sum(t[1] for t in self.cell_tallies.values())

    @property
    def total_masked(self) -> int:
        """Number of injected faults that were data-masked."""
        return sum(t[2] for t in self.cell_tallies.values())

    def layer_injections(self, layer: int) -> int:
        """Injections that landed in *layer*."""
        return sum(
            t[0] for (l, _), t in self.cell_tallies.items() if l == layer
        )

    # -- estimates ---------------------------------------------------------

    def cell_estimate(self, layer: int, bit: int) -> Estimate:
        """Direct estimate for one (bit, layer) cell."""
        population = self.space.cell_population(layer)
        n, criticals, _ = self.cell_tallies.get((layer, bit), (0, 0, 0))
        if n == 0:
            assumed = self.assumed_p.get((layer, bit))
            return Estimate(
                key=("cell", layer, bit),
                population=population,
                injections=0,
                criticals=0,
                p_hat=assumed if assumed is not None else 0.0,
                margin=None,
            )
        p_hat = criticals / n
        return Estimate(
            key=("cell", layer, bit),
            population=population,
            injections=n,
            criticals=criticals,
            p_hat=p_hat,
            margin=error_margin(n, population, p_hat, self.t),
        )

    def layer_estimate(self, layer: int) -> Estimate:
        """Estimate of the layer's critical rate.

        Pooled for network/layer-granularity campaigns, stratified over bit
        cells for bit-granularity campaigns.
        """
        population = self.space.layer_population(layer)
        if self.granularity in (Granularity.NETWORK, Granularity.LAYER):
            n = 0
            criticals = 0
            for (l, _), tally in self.cell_tallies.items():
                if l == layer:
                    n += tally[0]
                    criticals += tally[1]
            if n == 0:
                return Estimate(
                    key=("layer", layer),
                    population=population,
                    injections=0,
                    criticals=0,
                    p_hat=0.0,
                    margin=None,
                )
            p_hat = criticals / n
            return Estimate(
                key=("layer", layer),
                population=population,
                injections=n,
                criticals=criticals,
                p_hat=p_hat,
                margin=error_margin(n, population, p_hat, self.t),
            )
        strata = [
            (self.space.cell_population(layer), self.cell_estimate(layer, bit))
            for bit in range(self.space.bits)
        ]
        return self._stratified(("layer", layer), population, strata)

    def network_estimate(self) -> Estimate:
        """Estimate of the whole-network critical rate."""
        population = self.space.total_population
        if self.granularity is Granularity.NETWORK:
            n = self.total_injections
            criticals = self.total_criticals
            if n == 0:
                return Estimate(
                    key=("network",),
                    population=population,
                    injections=0,
                    criticals=0,
                    p_hat=0.0,
                    margin=None,
                )
            p_hat = criticals / n
            return Estimate(
                key=("network",),
                population=population,
                injections=n,
                criticals=criticals,
                p_hat=p_hat,
                margin=error_margin(n, population, p_hat, self.t),
            )
        if self.granularity is Granularity.LAYER:
            strata = [
                (
                    self.space.layer_population(layer),
                    self.layer_estimate(layer),
                )
                for layer in range(len(self.space.layers))
            ]
        else:
            strata = [
                (
                    self.space.cell_population(layer),
                    self.cell_estimate(layer, bit),
                )
                for layer in range(len(self.space.layers))
                for bit in range(self.space.bits)
            ]
        return self._stratified(("network",), population, strata)

    def _stratified(
        self,
        key: tuple,
        population: int,
        strata: list[tuple[int, Estimate]],
    ) -> Estimate:
        """Combine stratum estimates into a level estimate."""
        p_hat = 0.0
        variance = 0.0
        injections = 0
        criticals = 0
        for stratum_pop, est in strata:
            weight = stratum_pop / population
            p_hat += weight * est.p_hat
            injections += est.injections
            criticals += est.criticals
            if est.injections > 0 and stratum_pop > 1:
                fpc = (stratum_pop - est.injections) / (stratum_pop - 1)
                variance += (
                    weight * weight
                    * est.p_hat * (1.0 - est.p_hat)
                    / est.injections
                    * fpc
                )
        margin = self.t * math.sqrt(variance)
        return Estimate(
            key=key,
            population=population,
            injections=injections,
            criticals=criticals,
            p_hat=p_hat,
            margin=margin,
        )

    def layer_estimates(self) -> list[Estimate]:
        """Per-layer estimates in layer order."""
        return [
            self.layer_estimate(layer) for layer in range(len(self.space.layers))
        ]

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        net = self.network_estimate()
        margin_text = (
            f"±{net.margin * 100:.3f}%" if net.margin is not None else "n/a"
        )
        return (
            f"{self.method}: {self.total_injections} injections "
            f"({self.total_injections / self.space.total_population * 100:.2f}% "
            f"of {self.space.total_population}), network critical rate "
            f"{net.p_hat * 100:.3f}% {margin_text}"
        )
