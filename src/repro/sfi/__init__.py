"""Statistical fault-injection campaigns (the paper's core contribution).

Four campaign planners, in the order the paper evaluates them:

- :class:`NetworkWiseSFI` — Eq. 1 applied once to the whole network
  (the Leveugle et al. [9] baseline).  Statistically valid only for the
  single network-level question; per-layer/per-bit readouts from it violate
  the 4th Bernoulli assumption.
- :class:`LayerWiseSFI` — Eq. 1 applied per layer.
- :class:`DataUnawareSFI` — Eq. 1 applied per (bit, layer) cell with the
  safe prior p = 0.5 (paper Section III-A / Eq. 3).
- :class:`DataAwareSFI` — per (bit, layer) cell with the per-bit prior
  p(i) derived from the golden weight distribution (paper Section III-B /
  Eq. 4-5).

Supporting machinery: subpopulation partitioning (:mod:`granularity`),
the data-aware p(i) pipeline (:mod:`dataaware`), seeded sampling
(:mod:`sampler`), campaign execution (:class:`CampaignRunner`), exhaustive
execution (:func:`run_exhaustive`) and validation against exhaustive ground
truth (:mod:`validation`).
"""

from repro.sfi.granularity import (
    Granularity,
    Subpopulation,
    cell_subpopulations,
    layer_subpopulations,
    network_subpopulation,
)
from repro.sfi.dataaware import (
    BitCriticality,
    bit_criticality,
    data_aware_p,
    model_weight_vector,
)
from repro.sfi.planners import (
    CampaignPlan,
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
    PlannedSubpopulation,
)
from repro.sfi.sampler import sample_subpopulation
from repro.sfi.results import CampaignResult, Estimate
from repro.sfi.runner import CampaignRunner, run_exhaustive
from repro.sfi.twostage import TwoStageSFI, merge_results
from repro.sfi.validation import MethodComparison, ValidationReport, validate_campaign

__all__ = [
    "Granularity",
    "Subpopulation",
    "network_subpopulation",
    "layer_subpopulations",
    "cell_subpopulations",
    "BitCriticality",
    "bit_criticality",
    "data_aware_p",
    "model_weight_vector",
    "CampaignPlan",
    "PlannedSubpopulation",
    "NetworkWiseSFI",
    "LayerWiseSFI",
    "DataUnawareSFI",
    "DataAwareSFI",
    "sample_subpopulation",
    "CampaignResult",
    "Estimate",
    "CampaignRunner",
    "run_exhaustive",
    "TwoStageSFI",
    "merge_results",
    "MethodComparison",
    "ValidationReport",
    "validate_campaign",
]
