"""Seeded fault sampling within subpopulations."""

from __future__ import annotations

import numpy as np

from repro.faults.model import Fault
from repro.sfi.granularity import Subpopulation


def sample_without_replacement(
    population: int, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw *n* distinct integers from ``range(population)``.

    For sparse draws (n << population) rejection sampling avoids
    materialising the full index range, which matters for multi-million
    fault populations.
    """
    if not 0 <= n <= population:
        raise ValueError(f"n must be in [0, {population}], got {n}")
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n == population:
        return np.arange(population, dtype=np.int64)
    if n > population // 8:
        return rng.choice(population, size=n, replace=False).astype(np.int64)
    chosen: set[int] = set()
    result = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        draw = rng.integers(0, population, size=(n - filled) * 2)
        for value in draw:
            value = int(value)
            if value not in chosen:
                chosen.add(value)
                result[filled] = value
                filled += 1
                if filled == n:
                    break
    return result


def sample_subpopulation(
    subpop: Subpopulation, n: int, rng: np.random.Generator
) -> list[Fault]:
    """Draw *n* distinct faults uniformly from *subpop*."""
    ids = sample_without_replacement(subpop.population, n, rng)
    return [subpop.fault(int(local_id)) for local_id in ids]
