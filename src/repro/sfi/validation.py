"""Validation of statistical campaigns against exhaustive ground truth.

Reproduces the paper's evaluation protocol: an SFI approach is *valid* when
the exhaustive critical rate falls inside the statistical estimate's error
margin, and the paper's Table III compares methods by total injections and
the error margin averaged over all layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.table import OutcomeTable
from repro.sfi.results import CampaignResult, Estimate


@dataclass(frozen=True)
class LayerValidation:
    """Per-layer comparison of an estimate with the exhaustive rate."""

    layer: int
    exhaustive_rate: float
    estimate: Estimate

    @property
    def contained(self) -> bool:
        """Whether the exhaustive rate falls inside the error margin."""
        return self.estimate.contains(self.exhaustive_rate)

    @property
    def absolute_error(self) -> float:
        """|estimate - exhaustive|."""
        return abs(self.estimate.p_hat - self.exhaustive_rate)


@dataclass(frozen=True)
class ValidationReport:
    """Full validation of one campaign against an exhaustive table."""

    method: str
    layers: tuple[LayerValidation, ...]
    network: LayerValidation
    total_injections: int
    population: int

    @property
    def injected_fraction(self) -> float:
        """Fraction of the population the campaign injected."""
        return self.total_injections / self.population if self.population else 0.0

    @property
    def average_margin(self) -> float:
        """Error margin averaged over layers (Table III's key column).

        Layers with an undefined margin (no injections landed there) count
        as a full-width margin of 1.0 — an unusable estimate.
        """
        margins = [
            lv.estimate.margin if lv.estimate.margin is not None else 1.0
            for lv in self.layers
        ]
        return sum(margins) / len(margins) if margins else 0.0

    @property
    def contained_fraction(self) -> float:
        """Fraction of layers whose exhaustive rate the margin contains."""
        if not self.layers:
            return 0.0
        return sum(lv.contained for lv in self.layers) / len(self.layers)

    @property
    def average_absolute_error(self) -> float:
        """Mean |estimate - exhaustive| over layers."""
        if not self.layers:
            return 0.0
        return sum(lv.absolute_error for lv in self.layers) / len(self.layers)

    def meets_margin_target(self, target: float = 0.01) -> bool:
        """Whether the average layer margin respects the campaign target."""
        return self.average_margin <= target


def validate_campaign(
    result: CampaignResult, table: OutcomeTable
) -> ValidationReport:
    """Compare *result* with the exhaustive *table* layer by layer."""
    if table.num_layers != len(result.space.layers):
        raise ValueError(
            f"table covers {table.num_layers} layers, campaign space has "
            f"{len(result.space.layers)}"
        )
    layer_rows = tuple(
        LayerValidation(
            layer=layer,
            exhaustive_rate=table.layer_rate(layer),
            estimate=result.layer_estimate(layer),
        )
        for layer in range(table.num_layers)
    )
    network_row = LayerValidation(
        layer=-1,
        exhaustive_rate=table.total_rate(),
        estimate=result.network_estimate(),
    )
    return ValidationReport(
        method=result.method,
        layers=layer_rows,
        network=network_row,
        total_injections=result.total_injections,
        population=result.space.total_population,
    )


@dataclass(frozen=True)
class MethodComparison:
    """Table III-style comparison row for one method."""

    method: str
    injections: int
    injected_percent: float
    average_margin_percent: float
    contained_fraction: float

    @classmethod
    def from_report(cls, report: ValidationReport) -> "MethodComparison":
        return cls(
            method=report.method,
            injections=report.total_injections,
            injected_percent=report.injected_fraction * 100.0,
            average_margin_percent=report.average_margin * 100.0,
            contained_fraction=report.contained_fraction,
        )


def average_reports(reports: list[ValidationReport]) -> MethodComparison:
    """Average several same-method reports (the paper's S0-S9 samples)."""
    if not reports:
        raise ValueError("need at least one report to average")
    methods = {report.method for report in reports}
    if len(methods) != 1:
        raise ValueError(f"reports mix methods: {sorted(methods)}")
    count = len(reports)
    return MethodComparison(
        method=reports[0].method,
        injections=round(sum(r.total_injections for r in reports) / count),
        injected_percent=sum(r.injected_fraction for r in reports) / count * 100,
        average_margin_percent=sum(r.average_margin for r in reports) / count * 100,
        contained_fraction=sum(r.contained_fraction for r in reports) / count,
    )
