"""Two-stage (pilot + main) adaptive statistical fault injection.

A natural extension of the paper's data-aware idea: instead of deriving
the per-cell prior p(i) from the *weight distribution*, measure it.  A
small pilot sample per (bit, layer) cell produces a Laplace-smoothed
estimate of each cell's critical probability; the main phase then sizes
each cell with Eq. 1 at the measured prior (pilot injections are credited
against the main-phase budget, and both phases' observations merge into
the final estimate).

Compared to the paper's data-aware method this trades a fixed pilot cost
for priors that reflect the actual failure behaviour rather than a
bit-flip-distance proxy; the ablation benchmark quantifies that trade.

Caveat: re-using pilot observations both for planning and estimation makes
the final estimator very mildly adaptive; with the Laplace smoothing and
the pilot being a small fraction of the sample this bias is negligible
against the 1% margin target (checked empirically in the benchmarks).
"""

from __future__ import annotations

import numpy as np

from repro.faults.oracle import Oracle
from repro.faults.space import FaultSpace
from repro.sfi.granularity import Granularity, cell_subpopulations
from repro.sfi.planners import CampaignPlan, PlannedSubpopulation
from repro.sfi.results import CampaignResult
from repro.sfi.runner import CampaignRunner
from repro.stats import confidence_to_t, sample_size


def merge_results(
    first: CampaignResult, second: CampaignResult, *, method: str
) -> CampaignResult:
    """Combine the cell tallies of two same-space campaign results."""
    if first.space is not second.space:
        raise ValueError("results must come from the same fault space")
    if first.granularity is not second.granularity:
        raise ValueError("results must share a granularity")
    merged = CampaignResult(
        method=method,
        granularity=first.granularity,
        t=first.t,
        space=first.space,
        seed=first.seed,
    )
    for source in (first, second):
        for (layer, bit), (n, criticals, masked) in source.cell_tallies.items():
            tally = merged.cell_tallies.setdefault((layer, bit), [0, 0, 0])
            tally[0] += n
            tally[1] += criticals
            tally[2] += masked
    merged.assumed_p.update(first.assumed_p)
    merged.assumed_p.update(second.assumed_p)
    return merged


class TwoStageSFI:
    """Pilot-then-main adaptive campaign at (bit, layer) granularity.

    Parameters
    ----------
    error_margin, confidence, t_mode:
        As for the other planners (see :class:`~repro.sfi.DataUnawareSFI`).
    pilot_per_cell:
        Pilot injections per (bit, layer) cell (capped at the cell size).
    p_cap:
        Upper clamp on the measured prior; 0.5 is the variance maximum so
        anything above it is pointless.
    """

    method = "two-stage"
    granularity = Granularity.BIT_LAYER

    def __init__(
        self,
        error_margin: float = 0.01,
        confidence: float = 0.99,
        *,
        t_mode: str = "paper",
        pilot_per_cell: int = 30,
        p_cap: float = 0.5,
    ) -> None:
        if error_margin <= 0 or error_margin >= 1:
            raise ValueError(f"error_margin must be in (0, 1), got {error_margin}")
        if pilot_per_cell < 1:
            raise ValueError(f"pilot_per_cell must be >= 1, got {pilot_per_cell}")
        if not 0.0 < p_cap <= 0.5:
            raise ValueError(f"p_cap must be in (0, 0.5], got {p_cap}")
        self.error_margin = error_margin
        self.confidence = confidence
        self.t = confidence_to_t(confidence, mode=t_mode)
        self.pilot_per_cell = pilot_per_cell
        self.p_cap = p_cap

    # -- phase planning -----------------------------------------------------

    def plan_pilot(self, space: FaultSpace) -> CampaignPlan:
        """The pilot phase: a fixed small sample from every cell."""
        plan = CampaignPlan(
            method=f"{self.method}-pilot",
            granularity=self.granularity,
            error_margin=self.error_margin,
            confidence=self.confidence,
            t=self.t,
        )
        for subpop in cell_subpopulations(space):
            plan.items.append(
                PlannedSubpopulation(
                    subpopulation=subpop,
                    sample_size=min(self.pilot_per_cell, subpop.population),
                    p_assumed=0.5,
                )
            )
        return plan

    def measured_priors(
        self, space: FaultSpace, pilot: CampaignResult
    ) -> dict[tuple[int, int], float]:
        """Laplace-smoothed per-cell priors from the pilot observations."""
        priors: dict[tuple[int, int], float] = {}
        for layer in range(len(space.layers)):
            for bit in range(space.bits):
                n, criticals, _ = pilot.cell_tallies.get(
                    (layer, bit), (0, 0, 0)
                )
                smoothed = (criticals + 1.0) / (n + 2.0)
                priors[(layer, bit)] = min(smoothed, self.p_cap)
        return priors

    def plan_main(
        self, space: FaultSpace, pilot: CampaignResult
    ) -> CampaignPlan:
        """The main phase: Eq. 1 at the measured priors, pilot credited."""
        priors = self.measured_priors(space, pilot)
        plan = CampaignPlan(
            method=self.method,
            granularity=self.granularity,
            error_margin=self.error_margin,
            confidence=self.confidence,
            t=self.t,
        )
        for subpop in cell_subpopulations(space):
            key = (subpop.layer, subpop.bit)
            prior = priors[key]
            target = sample_size(
                subpop.population, self.error_margin, self.t, prior
            )
            already = pilot.cell_tallies.get(key, (0, 0, 0))[0]
            remaining = max(0, target - already)
            plan.items.append(
                PlannedSubpopulation(
                    subpopulation=subpop,
                    sample_size=min(remaining, subpop.population - already),
                    p_assumed=prior,
                )
            )
        return plan

    # -- convenience ---------------------------------------------------------

    def run(
        self, oracle: Oracle, space: FaultSpace, *, seed: int = 0
    ) -> CampaignResult:
        """Run pilot + main and return the merged campaign result.

        The two phases use derived seeds so the main sample is independent
        of the pilot draw (they may overlap in fault identity — acceptable
        at the densities involved and noted in the module docstring).
        """
        runner = CampaignRunner(oracle, space)
        rng = np.random.default_rng(seed)
        pilot_seed, main_seed = (int(s) for s in rng.integers(0, 2**31, 2))
        pilot = runner.run(self.plan_pilot(space), seed=pilot_seed)
        main_plan = self.plan_main(space, pilot)
        main = runner.run(main_plan, seed=main_seed)
        merged = merge_results(pilot, main, method=self.method)
        merged.assumed_p.update(
            {
                (item.subpopulation.layer, item.subpopulation.bit): item.p_assumed
                for item in main_plan.items
                if item.sample_size == 0
                and merged.cell_tallies.get(
                    (item.subpopulation.layer, item.subpopulation.bit),
                    (0, 0, 0),
                )[0]
                == 0
            }
        )
        return merged
