"""Campaign execution: sampled campaigns and the exhaustive baseline."""

from __future__ import annotations

import os
import time
from collections.abc import Callable

import numpy as np

from repro.faults.engine import FaultOutcome, InferenceEngine
from repro.faults.model import FaultModel, STUCK_AT_MODELS
from repro.faults.oracle import Oracle
from repro.faults.space import FaultSpace
from repro.faults.table import OutcomeTable
from repro.ieee754 import FLOAT32, FloatFormat
from repro.nn import Module
from repro.sfi.granularity import Granularity
from repro.sfi.planners import CampaignPlan
from repro.sfi.results import CampaignResult
from repro.sfi.sampler import sample_subpopulation
from repro.telemetry import Telemetry, resolve_telemetry


class CampaignRunner:
    """Executes a :class:`CampaignPlan` against a fault oracle.

    The oracle is either an :class:`~repro.faults.InferenceOracle` (real
    injections) or a :class:`~repro.faults.TableOracle` (replay of an
    exhaustive campaign's recorded outcomes — bit-exact and much faster).

    With *telemetry*, every :meth:`run` is journaled as a sampled
    campaign (``campaign_start``/``campaign_end`` plus a
    ``sfi.run`` span) and its injections counted.
    """

    def __init__(
        self,
        oracle: Oracle,
        space: FaultSpace,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.oracle = oracle
        self.space = space
        self.telemetry = resolve_telemetry(telemetry)

    def run(self, plan: CampaignPlan, *, seed: int = 0) -> CampaignResult:
        """Sample and classify every planned stratum; returns the result."""
        tele = self.telemetry
        if not tele.enabled:
            return self._run(plan, seed)
        tele.emit(
            "campaign_start",
            kind="sampled",
            method=plan.method,
            seed=seed,
            total=plan.total_injections,
        )
        start = time.monotonic()
        with tele.span("sfi.run", method=plan.method, seed=seed):
            result = self._run(plan, seed)
        tele.counter("sfi.injections").add(result.total_injections)
        tele.emit(
            "campaign_end",
            elapsed_seconds=time.monotonic() - start,
            injections=result.total_injections,
            criticals=result.total_criticals,
            masked=result.total_masked,
        )
        return result

    def _run(self, plan: CampaignPlan, seed: int) -> CampaignResult:
        rng = np.random.default_rng(seed)
        result = CampaignResult(
            method=plan.method,
            granularity=plan.granularity,
            t=plan.t,
            space=self.space,
            seed=seed,
        )
        for item in plan.items:
            subpop = item.subpopulation
            if item.sample_size == 0:
                if (
                    plan.granularity is Granularity.BIT_LAYER
                    and subpop.layer is not None
                    and subpop.bit is not None
                ):
                    result.assumed_p[(subpop.layer, subpop.bit)] = item.p_assumed
                continue
            faults = sample_subpopulation(subpop, item.sample_size, rng)
            for fault in faults:
                outcome = self.oracle.classify(fault)
                result.record(
                    fault.layer,
                    fault.bit,
                    critical=outcome is FaultOutcome.CRITICAL,
                    masked=outcome is FaultOutcome.MASKED,
                )
        return result

    def run_many(
        self, plan: CampaignPlan, *, seeds: list[int]
    ) -> list[CampaignResult]:
        """Run the plan once per seed (the paper's S0-S9 samples).

        Each run draws from its own ``default_rng(seed)``, so results are
        a pure function of ``(plan, seed)``: the same seed always yields
        the same samples (and, against a deterministic oracle, the same
        result), and distinct seeds draw independent samples.
        """
        return [self.run(plan, seed=seed) for seed in seeds]


def run_exhaustive(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    fmt: FloatFormat = FLOAT32,
    fault_models: tuple[FaultModel, ...] = STUCK_AT_MODELS,
    policy: str = "accuracy_drop",
    threshold: float = 0.0,
    workers: int | None = 1,
    checkpoint: str | os.PathLike | None = None,
    telemetry: Telemetry | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> tuple[OutcomeTable, FaultSpace, InferenceEngine]:
    """Run the full exhaustive campaign for *model* over the eval set.

    Returns ``(table, space, engine)``; the table is the paper's exhaustive
    ground truth (every possible fault classified).  ``workers > 1`` fans
    the campaign's (layer, bit) cells out over a process pool; with
    *checkpoint* (a directory path) set, a killed campaign resumes from
    its last persisted cell.  *telemetry* journals the whole campaign
    (see :meth:`OutcomeTable.from_exhaustive`); *progress* is the
    deprecated callback shim.
    """
    engine = InferenceEngine(
        model,
        images,
        labels,
        fmt=fmt,
        policy=policy,
        threshold=threshold,
        telemetry=telemetry,
    )
    space = FaultSpace(engine.layers, fmt=fmt, fault_models=fault_models)
    table = OutcomeTable.from_exhaustive(
        engine,
        space,
        workers=workers,
        checkpoint=checkpoint,
        telemetry=telemetry,
        progress=progress,
    )
    return table, space, engine
