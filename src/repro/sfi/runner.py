"""Campaign execution: sampled campaigns and the exhaustive baseline."""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Iterable

import numpy as np

from repro.faults.engine import FaultInjectionEngine, FaultOutcome
from repro.faults.model import STUCK_AT_MODELS, FaultModel
from repro.faults.oracle import Oracle
from repro.faults.space import FaultSpace
from repro.faults.table import OutcomeTable, resolve_workers
from repro.ieee754 import FLOAT32, FloatFormat
from repro.nn import Module
from repro.sfi.granularity import Granularity
from repro.sfi.planners import CampaignPlan
from repro.sfi.results import CampaignResult
from repro.sfi.sampler import sample_subpopulation
from repro.telemetry import Telemetry, resolve_telemetry


def stratum_rng(seed: int, index: int) -> np.random.Generator:
    """The RNG substream of plan item *index* under base *seed*.

    Built from ``SeedSequence(seed, spawn_key=(index,))`` — the same
    stream :meth:`numpy.random.SeedSequence.spawn` would hand the
    *index*-th child — so a stratum's draws depend only on ``(seed,
    index)``, never on which strata ran before it, which process ran
    it, or how a campaign was sharded.  This is the property that makes
    distributed campaign results bit-identical to serial ones.
    """
    return np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(index,))
    )


def execute_plan_items(
    plan: CampaignPlan,
    oracle: Oracle,
    indices: Iterable[int],
    *,
    seed: int,
    on_item: Callable[[int], None] | None = None,
) -> tuple[dict[tuple[int, int], list[int]], dict[tuple[int, int], float]]:
    """Sample and classify a subset of *plan*'s items.

    Returns ``(cell_tallies, assumed_p)`` in the
    :class:`~repro.sfi.results.CampaignResult` layout.  Each item draws
    from its own :func:`stratum_rng` substream, so any partition of the
    item indices — across loop iterations, pool workers or distributed
    shards — produces the same observations as a serial pass.
    *on_item* fires after each processed item (progress/heartbeats).
    """
    tallies: dict[tuple[int, int], list[int]] = {}
    assumed: dict[tuple[int, int], float] = {}
    for index in indices:
        item = plan.items[index]
        subpop = item.subpopulation
        if item.sample_size == 0:
            if (
                plan.granularity is Granularity.BIT_LAYER
                and subpop.layer is not None
                and subpop.bit is not None
            ):
                assumed[(subpop.layer, subpop.bit)] = item.p_assumed
            if on_item is not None:
                on_item(index)
            continue
        rng = stratum_rng(seed, index)
        faults = sample_subpopulation(subpop, item.sample_size, rng)
        classify_many = getattr(oracle, "classify_many", None)
        if classify_many is not None:
            # Batching oracles (plan engine) share tail passes across
            # same-layer faults; tallies are order-independent, so the
            # result is identical to the per-fault loop.
            outcomes = classify_many(faults)
        else:
            outcomes = [oracle.classify(fault) for fault in faults]
        for fault, outcome in zip(faults, outcomes):
            tally = tallies.setdefault((fault.layer, fault.bit), [0, 0, 0])
            tally[0] += 1
            tally[1] += int(outcome is FaultOutcome.CRITICAL)
            tally[2] += int(outcome is FaultOutcome.MASKED)
        if on_item is not None:
            on_item(index)
    return tallies, assumed


# Fork-inherited state for sampled-campaign pool workers: (plan, oracle,
# seed).  Like the exhaustive pool, children share the oracle (table or
# engine) copy-on-write and return plain tallies.
_RUN_POOL_STATE: tuple[CampaignPlan, Oracle, int] | None = None


def _pool_run_item(index: int):
    assert _RUN_POOL_STATE is not None, "worker used outside a campaign pool"
    plan, oracle, seed = _RUN_POOL_STATE
    return execute_plan_items(plan, oracle, [index], seed=seed)


class CampaignRunner:
    """Executes a :class:`CampaignPlan` against a fault oracle.

    The oracle is either an :class:`~repro.faults.InferenceOracle` (real
    injections) or a :class:`~repro.faults.TableOracle` (replay of an
    exhaustive campaign's recorded outcomes — bit-exact and much faster).

    With *telemetry*, every :meth:`run` is journaled as a sampled
    campaign (``campaign_start``/``campaign_end`` plus a
    ``sfi.run`` span) and its injections counted.
    """

    def __init__(
        self,
        oracle: Oracle,
        space: FaultSpace,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.oracle = oracle
        self.space = space
        self.telemetry = resolve_telemetry(telemetry)

    def run(
        self,
        plan: CampaignPlan,
        *,
        seed: int = 0,
        workers: int | None = 1,
    ) -> CampaignResult:
        """Sample and classify every planned stratum; returns the result.

        Strata are independent (each draws from its own
        :func:`stratum_rng` substream), so with ``workers > 1`` they fan
        out over a fork-based process pool — same
        :func:`~repro.faults.table.resolve_workers` semantics as the
        exhaustive campaign (``None`` honours ``REPRO_WORKERS``, then
        the CPU count) — and the result is identical to a serial run.
        """
        tele = self.telemetry
        if not tele.enabled:
            return self._run(plan, seed, workers=workers)
        tele.emit(
            "campaign_start",
            kind="sampled",
            method=plan.method,
            seed=seed,
            total=plan.total_injections,
        )
        start = time.monotonic()
        with tele.span("sfi.run", method=plan.method, seed=seed):
            result = self._run(plan, seed, workers=workers)
        tele.counter("sfi.injections").add(result.total_injections)
        tele.emit(
            "campaign_end",
            elapsed_seconds=time.monotonic() - start,
            injections=result.total_injections,
            criticals=result.total_criticals,
            masked=result.total_masked,
        )
        return result

    def _run(
        self, plan: CampaignPlan, seed: int, *, workers: int | None = 1
    ) -> CampaignResult:
        result = CampaignResult(
            method=plan.method,
            granularity=plan.granularity,
            t=plan.t,
            space=self.space,
            seed=seed,
        )
        workers = resolve_workers(workers)
        sampled = [
            idx for idx, item in enumerate(plan.items) if item.sample_size > 0
        ]
        parts: list[tuple[dict, dict]] = []
        if workers > 1 and len(sampled) > 1:
            # Zero-sample strata are pure bookkeeping; keep them out of
            # the pool and fold them in the parent.
            sampled_set = set(sampled)
            unsampled = [
                i for i in range(len(plan.items)) if i not in sampled_set
            ]
            parts.append(
                execute_plan_items(plan, self.oracle, unsampled, seed=seed)
            )
            global _RUN_POOL_STATE
            _RUN_POOL_STATE = (plan, self.oracle, seed)
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork: run serially
                _RUN_POOL_STATE = None
                parts.append(
                    execute_plan_items(plan, self.oracle, sampled, seed=seed)
                )
            else:
                try:
                    with ctx.Pool(processes=workers) as pool:
                        parts.extend(
                            pool.map(_pool_run_item, sampled, chunksize=1)
                        )
                finally:
                    _RUN_POOL_STATE = None
        else:
            parts.append(
                execute_plan_items(
                    plan, self.oracle, range(len(plan.items)), seed=seed
                )
            )
        for tallies, assumed in parts:
            for (layer, bit), counts in tallies.items():
                tally = result.cell_tallies.setdefault(
                    (layer, bit), [0, 0, 0]
                )
                tally[0] += counts[0]
                tally[1] += counts[1]
                tally[2] += counts[2]
            result.assumed_p.update(assumed)
        return result

    def run_many(
        self, plan: CampaignPlan, *, seeds: list[int]
    ) -> list[CampaignResult]:
        """Run the plan once per seed (the paper's S0-S9 samples).

        Each stratum draws from the ``SeedSequence(seed,
        spawn_key=(item,))`` substream, so results are a pure function
        of ``(plan, seed)``: the same seed always yields the same
        samples (and, against a deterministic oracle, the same result),
        distinct seeds draw independent samples, and the draws are
        independent of stratum execution order.
        """
        return [self.run(plan, seed=seed) for seed in seeds]


def run_exhaustive(
    model: Module,
    images: np.ndarray,
    labels: np.ndarray,
    *,
    fmt: FloatFormat = FLOAT32,
    fault_models: tuple[FaultModel, ...] = STUCK_AT_MODELS,
    policy: str = "accuracy_drop",
    threshold: float = 0.0,
    engine_kind: str = "plan",
    fuse: bool = False,
    workers: int | None = 1,
    checkpoint: str | os.PathLike | None = None,
    telemetry: Telemetry | None = None,
    progress: Callable[[int, int], None] | None = None,
) -> tuple[OutcomeTable, FaultSpace, FaultInjectionEngine]:
    """Run the full exhaustive campaign for *model* over the eval set.

    Returns ``(table, space, engine)``; the table is the paper's exhaustive
    ground truth (every possible fault classified).  *engine_kind* picks
    the execution path: ``"plan"`` (default, op-granular caching and
    batched fault evaluation — bit-identical outcomes) or ``"module"``
    (the stage-granular reference engine).  *fuse* enables the plan
    engine's numeric-changing fusions — the resulting table is **not**
    comparable to unfused ones and is checkpointed separately.
    ``workers > 1`` fans the campaign's (layer, bit) cells out over a
    process pool; with *checkpoint* (a directory path) set, a killed
    campaign resumes from its last persisted cell.  *telemetry* journals
    the whole campaign (see :meth:`OutcomeTable.from_exhaustive`);
    *progress* is the deprecated callback shim.
    """
    from repro.runtime import create_engine

    engine = create_engine(
        model,
        images,
        labels,
        kind=engine_kind,
        fmt=fmt,
        policy=policy,
        threshold=threshold,
        fuse=fuse,
        telemetry=telemetry,
    )
    space = FaultSpace(engine.layers, fmt=fmt, fault_models=fault_models)
    table = OutcomeTable.from_exhaustive(
        engine,
        space,
        workers=workers,
        checkpoint=checkpoint,
        telemetry=telemetry,
        progress=progress,
    )
    return table, space, engine
