"""Error margin of a statistical FI estimate (inverse of paper Eq. 1).

After injecting *n* of the *N* possible faults and observing a critical
fraction ``p_hat``, the (finite-population-corrected) margin of error at
quantile *t* is

.. math::

    e = t \\sqrt{\\frac{\\hat p (1 - \\hat p)}{n} \\cdot \\frac{N - n}{N - 1}}

This is the black vertical bar of the paper's Figs. 5-7: the exhaustive
result should fall within ``p_hat ± e`` for the campaign to be considered
statistically valid.
"""

from __future__ import annotations

import math


def error_margin(n: int, population: int, p_hat: float, t: float) -> float:
    """Margin of error of an estimated proportion from a finite population.

    Parameters
    ----------
    n:
        Number of injected faults (sample size), ``1 <= n <= population``.
    population:
        Total number of possible faults *N*.
    p_hat:
        Observed critical fraction in the sample, in [0, 1].
    t:
        Normal quantile for the desired confidence.

    Returns 0.0 when the sample is exhaustive (``n == population``).
    """
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")
    if population < n:
        raise ValueError(f"population ({population}) must be >= n ({n})")
    if not 0.0 <= p_hat <= 1.0:
        raise ValueError(f"p_hat must be in [0, 1], got {p_hat}")
    if t <= 0.0:
        raise ValueError(f"t must be > 0, got {t}")
    if population == 1 or n == population:
        return 0.0
    fpc = (population - n) / (population - 1)
    return t * math.sqrt(p_hat * (1.0 - p_hat) / n * fpc)


def margin_contains(
    p_hat: float, margin: float, true_value: float, *, slack: float = 0.0
) -> bool:
    """Whether *true_value* lies within ``p_hat ± (margin + slack)``."""
    if margin < 0.0:
        raise ValueError(f"margin must be >= 0, got {margin}")
    # The 1e-12 guard makes the boundary robust to float rounding.
    return abs(true_value - p_hat) <= margin + slack + 1e-12
