"""Allocation of a total sample across strata (subpopulations).

The paper's network-wise campaign computes one global *n* from Eq. 1 and
implicitly spreads it across layers in proportion to their fault counts
(that is how Table I's per-layer network-wise column is obtained).
:func:`proportional_allocation` reproduces that; :func:`neyman_allocation`
is the variance-optimal alternative offered as an ablation.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def proportional_allocation(total: int, sizes: Sequence[int]) -> list[int]:
    """Split *total* across strata proportionally to their *sizes*.

    Uses largest-remainder (Hamilton) rounding so the parts sum exactly to
    *total* and each part never exceeds its stratum size.
    """
    if total < 0:
        raise ValueError(f"total must be >= 0, got {total}")
    if any(s < 0 for s in sizes):
        raise ValueError("stratum sizes must be >= 0")
    pop = sum(sizes)
    if pop == 0:
        if total > 0:
            raise ValueError("cannot allocate a positive total over empty strata")
        return [0] * len(sizes)
    if total > pop:
        raise ValueError(f"total ({total}) exceeds population ({pop})")
    quotas = [total * s / pop for s in sizes]
    parts = [min(math.floor(q), s) for q, s in zip(quotas, sizes)]
    remainder = total - sum(parts)
    # Assign leftover units to strata with the largest fractional parts
    # (ties broken by index for determinism), respecting capacity.
    order = sorted(
        range(len(sizes)), key=lambda i: (-(quotas[i] - math.floor(quotas[i])), i)
    )
    idx = 0
    while remainder > 0:
        i = order[idx % len(order)]
        if parts[i] < sizes[i]:
            parts[i] += 1
            remainder -= 1
        idx += 1
        if idx > 2 * len(order) * (total + 1):  # pragma: no cover - safety net
            raise RuntimeError("allocation failed to converge")
    return parts


def neyman_allocation(
    total: int, sizes: Sequence[int], std_devs: Sequence[float]
) -> list[int]:
    """Variance-optimal (Neyman) allocation: n_h ∝ N_h * sigma_h.

    Strata with zero spread receive no samples unless every stratum has
    zero spread, in which case the allocation degrades to proportional.
    """
    if len(sizes) != len(std_devs):
        raise ValueError("sizes and std_devs must have the same length")
    if any(s < 0 for s in std_devs):
        raise ValueError("standard deviations must be >= 0")
    weights = [n * s for n, s in zip(sizes, std_devs)]
    if sum(weights) == 0:
        return proportional_allocation(total, sizes)
    if total > sum(sizes):
        raise ValueError(f"total ({total}) exceeds population ({sum(sizes)})")
    # Reuse largest-remainder rounding over the Neyman quotas, but cap at
    # stratum capacity and re-distribute any overflow proportionally.
    capped = list(sizes)
    parts = [0] * len(sizes)
    remaining = total
    active = [i for i in range(len(sizes)) if weights[i] > 0]
    while remaining > 0 and active:
        wsum = sum(weights[i] for i in active)
        quotas = {i: remaining * weights[i] / wsum for i in active}
        step = {i: min(math.floor(quotas[i]), capped[i] - parts[i]) for i in active}
        if all(v == 0 for v in step.values()):
            # Hand out single units by largest quota until done.
            for i in sorted(active, key=lambda j: (-quotas[j], j)):
                if remaining == 0:
                    break
                if parts[i] < capped[i]:
                    parts[i] += 1
                    remaining -= 1
        else:
            for i in active:
                parts[i] += step[i]
                remaining -= step[i]
        active = [i for i in active if parts[i] < capped[i]]
    if remaining > 0:
        # Spill into zero-weight strata if the weighted ones are exhausted.
        for i in range(len(sizes)):
            take = min(remaining, capped[i] - parts[i])
            parts[i] += take
            remaining -= take
            if remaining == 0:
                break
    return parts
