"""Power analysis for comparing subpopulation critical rates.

The paper's motivation is to *rank* internal units ("the most critical
layer, the most critical bit").  Establishing that layer A is more
critical than layer B is a two-proportion comparison; this module answers
the planning question "how many injections per layer do I need to resolve
a difference of delta at a given significance and power?" — the natural
companion to Eq. 1, which only targets the estimation error of a single
proportion.
"""

from __future__ import annotations

import math

from scipy.stats import norm


def two_proportion_sample_size(
    p1: float,
    p2: float,
    *,
    alpha: float = 0.01,
    power: float = 0.9,
) -> int:
    """Per-group sample size to detect ``p1 != p2``.

    Uses the classical normal-approximation formula with pooled variance
    under the null and unpooled under the alternative:

    .. math::

        n = \\frac{\\left(z_{1-\\alpha/2}\\sqrt{2\\bar p(1-\\bar p)} +
                z_{power}\\sqrt{p_1(1-p_1) + p_2(1-p_2)}\\right)^2}
               {(p_1 - p_2)^2}
    """
    for name, value in (("p1", p1), ("p2", p2)):
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"{name} must be in [0, 1], got {value}")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 < power < 1.0:
        raise ValueError(f"power must be in (0, 1), got {power}")
    if p1 == p2:
        raise ValueError("p1 and p2 must differ to be distinguishable")
    z_alpha = float(norm.ppf(1 - alpha / 2))
    z_power = float(norm.ppf(power))
    pooled = (p1 + p2) / 2
    numerator = (
        z_alpha * math.sqrt(2 * pooled * (1 - pooled))
        + z_power * math.sqrt(p1 * (1 - p1) + p2 * (1 - p2))
    ) ** 2
    return math.ceil(numerator / (p1 - p2) ** 2)


def two_proportion_z_test(
    n1: int, successes1: int, n2: int, successes2: int
) -> tuple[float, float]:
    """Two-sided z-test that two observed proportions differ.

    Returns ``(z, p_value)``.  Used to decide whether an observed
    per-layer criticality ranking is statistically meaningful.
    """
    for name, n, s in (("1", n1, successes1), ("2", n2, successes2)):
        if n <= 0:
            raise ValueError(f"n{name} must be >= 1, got {n}")
        if not 0 <= s <= n:
            raise ValueError(
                f"successes{name} must be in [0, {n}], got {s}"
            )
    p1 = successes1 / n1
    p2 = successes2 / n2
    pooled = (successes1 + successes2) / (n1 + n2)
    variance = pooled * (1 - pooled) * (1 / n1 + 1 / n2)
    if variance == 0.0:
        return 0.0, 1.0
    z = (p1 - p2) / math.sqrt(variance)
    p_value = 2.0 * float(norm.sf(abs(z)))
    return z, min(p_value, 1.0)


def resolvable_difference(
    n: int, p_base: float, *, alpha: float = 0.01, power: float = 0.9
) -> float:
    """Smallest rate difference resolvable with *n* injections per group.

    Inverts :func:`two_proportion_sample_size` numerically (bisection on
    delta); answers "after an Eq. 1-sized campaign, how fine a criticality
    ranking can I trust?".
    """
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p_base < 1.0:
        raise ValueError(f"p_base must be in [0, 1), got {p_base}")
    lo, hi = 1e-9, 1.0 - p_base
    if two_proportion_sample_size(
        p_base, p_base + hi, alpha=alpha, power=power
    ) > n:
        return hi  # not even the maximum difference is resolvable
    for _ in range(60):
        mid = (lo + hi) / 2
        needed = two_proportion_sample_size(
            p_base, p_base + mid, alpha=alpha, power=power
        )
        if needed <= n:
            hi = mid
        else:
            lo = mid
    return hi
