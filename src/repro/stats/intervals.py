"""Binomial confidence intervals for critical-fault proportions.

Three estimators are provided:

- :func:`normal_interval` — the normal (Wald) approximation with the
  finite-population correction; this is what the paper's error margins use.
- :func:`wilson_interval` — the Wilson score interval, which behaves far
  better for proportions near 0 or 1 and small samples.
- :func:`clopper_pearson_interval` — the exact binomial interval, the
  conservative gold standard (never undercovers).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.stats import beta


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval for a proportion."""

    low: float
    high: float
    method: str

    @property
    def width(self) -> float:
        """Total width (high - low) of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether *value* lies inside the interval (inclusive, with a
        1e-12 guard against float rounding at the boundaries)."""
        return self.low - 1e-12 <= value <= self.high + 1e-12

    def clamped(self) -> "ConfidenceInterval":
        """Return a copy with bounds clamped into [0, 1]."""
        return ConfidenceInterval(
            low=max(0.0, self.low), high=min(1.0, self.high), method=self.method
        )


def _check(n: int, successes: int, t: float) -> None:
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= successes <= n:
        raise ValueError(f"successes must be in [0, {n}], got {successes}")
    if t <= 0.0:
        raise ValueError(f"t must be > 0, got {t}")


def normal_interval(
    n: int, successes: int, t: float, *, population: int | None = None
) -> ConfidenceInterval:
    """Wald interval ``p_hat ± t * se``, optionally with the FPC.

    With ``population`` given, the standard error is shrunk by the
    finite-population correction factor ``sqrt((N - n) / (N - 1))``.
    """
    _check(n, successes, t)
    p_hat = successes / n
    se = math.sqrt(p_hat * (1.0 - p_hat) / n)
    if population is not None:
        if population < n:
            raise ValueError(f"population ({population}) must be >= n ({n})")
        if population > 1:
            se *= math.sqrt((population - n) / (population - 1))
        else:
            se = 0.0
    return ConfidenceInterval(
        low=p_hat - t * se, high=p_hat + t * se, method="normal"
    ).clamped()


def clopper_pearson_interval(
    n: int, successes: int, confidence: float
) -> ConfidenceInterval:
    """Exact (Clopper-Pearson) binomial interval at *confidence*.

    Guaranteed coverage at the cost of conservatism; takes the confidence
    level directly (not a normal quantile) because it is quantile-free.
    """
    if n <= 0:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0 <= successes <= n:
        raise ValueError(f"successes must be in [0, {n}], got {successes}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    alpha = 1.0 - confidence
    if successes == 0:
        low = 0.0
    else:
        low = float(beta.ppf(alpha / 2, successes, n - successes + 1))
    if successes == n:
        high = 1.0
    else:
        high = float(beta.ppf(1 - alpha / 2, successes + 1, n - successes))
    return ConfidenceInterval(low=low, high=high, method="clopper-pearson")


def wilson_interval(n: int, successes: int, t: float) -> ConfidenceInterval:
    """Wilson score interval for a binomial proportion."""
    _check(n, successes, t)
    p_hat = successes / n
    t2 = t * t
    denom = 1.0 + t2 / n
    centre = (p_hat + t2 / (2.0 * n)) / denom
    half = (
        t * math.sqrt(p_hat * (1.0 - p_hat) / n + t2 / (4.0 * n * n)) / denom
    )
    return ConfidenceInterval(
        low=centre - half, high=centre + half, method="wilson"
    ).clamped()
