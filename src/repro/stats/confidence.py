"""Confidence level -> normal quantile (the paper's *t* constant).

The sample-size formula uses the two-sided normal quantile
``t = z_{1-(1-c)/2}``.  The paper (and its reference [9], Leveugle et al.)
uses the traditional rounded textbook constants — in particular
``t = 2.58`` for 99% confidence.  Reproducing Tables I/II digit-for-digit
requires those rounded values, so the default mode is ``"paper"``; the
``"exact"`` mode computes the quantile with scipy instead.
"""

from __future__ import annotations

import math

from scipy.stats import norm

#: Rounded textbook quantiles used by the paper and by Leveugle et al. [9].
PAPER_T_VALUES = {
    0.80: 1.282,
    0.90: 1.645,
    0.95: 1.960,
    0.98: 2.326,
    0.99: 2.58,
    0.995: 2.807,
    0.999: 3.291,
}

_MODES = ("paper", "exact")


def confidence_to_t(confidence: float, *, mode: str = "paper") -> float:
    """Return the two-sided normal quantile for *confidence*.

    Parameters
    ----------
    confidence:
        Confidence level in (0, 1), e.g. ``0.99``.
    mode:
        ``"paper"`` uses the rounded textbook constant when *confidence*
        matches one of the standard levels (falling back to the exact
        quantile otherwise); ``"exact"`` always computes
        ``norm.ppf(1 - (1 - confidence) / 2)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if mode not in _MODES:
        raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
    if mode == "paper":
        for level, t in PAPER_T_VALUES.items():
            if math.isclose(confidence, level, rel_tol=0, abs_tol=1e-9):
                return t
    return float(norm.ppf(1.0 - (1.0 - confidence) / 2.0))
