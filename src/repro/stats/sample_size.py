"""Finite-population sample-size formula (paper Eq. 1).

.. math::

    n = \\frac{N}{1 + e^2 \\cdot \\frac{N - 1}{t^2 \\cdot p (1 - p)}}

where *N* is the population size (total number of possible faults), *e* the
desired error margin, *t* the normal quantile for the desired confidence
level, and *p* the assumed probability that a fault becomes a critical
failure.  ``p = 0.5`` maximises ``p (1 - p)`` and therefore yields the
largest — safest — sample; the data-aware method of the paper supplies
per-bit priors ``p(i) <= 0.5`` that shrink the sample.
"""

from __future__ import annotations


def sample_size_infinite(error_margin: float, t: float, p: float = 0.5) -> float:
    """Sample size for an infinite population: ``t^2 p(1-p) / e^2``."""
    _check_args(error_margin, t, p)
    return t * t * p * (1.0 - p) / (error_margin * error_margin)


def sample_size_exact(
    population: int, error_margin: float, t: float, p: float = 0.5
) -> float:
    """Eq. 1 with the finite-population correction, un-rounded.

    Returns the real-valued sample size; use :func:`sample_size` for the
    integer version used when planning campaigns.
    """
    if population < 0:
        raise ValueError(f"population must be >= 0, got {population}")
    _check_args(error_margin, t, p)
    if population == 0:
        return 0.0
    variance = t * t * p * (1.0 - p)
    if variance == 0.0:
        # p of exactly 0 or 1: every trial has a known outcome, nothing to
        # sample.  The formula's limit is 0 for N > 1.
        return 0.0
    return population / (
        1.0 + error_margin * error_margin * (population - 1) / variance
    )


def sample_size(
    population: int,
    error_margin: float,
    t: float,
    p: float = 0.5,
    *,
    min_samples: int = 0,
) -> int:
    """Integer sample size per Eq. 1, rounded to nearest.

    Rounding to nearest (not ceiling) is what reproduces the paper's
    Tables I and II digit-for-digit.  ``min_samples`` optionally clamps the
    result from below (useful to guarantee at least a handful of trials per
    subpopulation even when a data-aware prior drives *n* to zero); the
    result never exceeds the population size.

    Parameters
    ----------
    population:
        Total number of possible faults *N* in this (sub)population.
    error_margin:
        Desired margin of error *e*, e.g. ``0.01`` for 1%.
    t:
        Normal quantile for the desired confidence (see
        :func:`repro.stats.confidence_to_t`).
    p:
        Assumed per-trial success probability in [0, 1].
    min_samples:
        Lower clamp on the returned sample size (before the population cap).
    """
    if min_samples < 0:
        raise ValueError(f"min_samples must be >= 0, got {min_samples}")
    raw = sample_size_exact(population, error_margin, t, p)
    n = int(round(raw))
    n = max(n, min_samples)
    return min(n, population)


def _check_args(error_margin: float, t: float, p: float) -> None:
    if error_margin <= 0.0:
        raise ValueError(f"error_margin must be > 0, got {error_margin}")
    if t <= 0.0:
        raise ValueError(f"t must be > 0, got {t}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
