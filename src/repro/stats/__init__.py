"""Statistical machinery for fault-sampling campaigns.

Implements the finite-population sample-size formula of the paper's Eq. 1
(originally from Leveugle et al., DATE 2009), the corresponding error-margin
inversion, binomial confidence intervals, stratified-allocation helpers and
the Bernoulli-assumption (homogeneity) diagnostics that motivate the paper.
"""

from repro.stats.confidence import (
    PAPER_T_VALUES,
    confidence_to_t,
)
from repro.stats.sample_size import (
    sample_size,
    sample_size_exact,
    sample_size_infinite,
)
from repro.stats.error_margin import (
    error_margin,
    margin_contains,
)
from repro.stats.intervals import (
    ConfidenceInterval,
    clopper_pearson_interval,
    normal_interval,
    wilson_interval,
)
from repro.stats.power import (
    resolvable_difference,
    two_proportion_sample_size,
    two_proportion_z_test,
)
from repro.stats.allocation import (
    neyman_allocation,
    proportional_allocation,
)
from repro.stats.homogeneity import (
    HomogeneityResult,
    chi_square_homogeneity,
)

__all__ = [
    "PAPER_T_VALUES",
    "confidence_to_t",
    "sample_size",
    "sample_size_exact",
    "sample_size_infinite",
    "error_margin",
    "margin_contains",
    "ConfidenceInterval",
    "clopper_pearson_interval",
    "normal_interval",
    "wilson_interval",
    "resolvable_difference",
    "two_proportion_sample_size",
    "two_proportion_z_test",
    "neyman_allocation",
    "proportional_allocation",
    "HomogeneityResult",
    "chi_square_homogeneity",
]
