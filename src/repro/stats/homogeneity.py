"""Empirical checks of the 4th Bernoulli assumption.

The paper's central argument is that Eq. 1 is only valid inside a
(sub)population whose faults share the same success probability *p*.  Given
exhaustive (or sampled) per-subpopulation critical counts, the chi-square
homogeneity test quantifies how badly that assumption is violated at a
given granularity — e.g. it rejects homogeneity across layers (so
network-wise sampling is invalid for per-layer questions) but typically
cannot reject it across weights within one (bit, layer) cell.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np
from scipy.stats import chi2


@dataclass(frozen=True)
class HomogeneityResult:
    """Outcome of a chi-square homogeneity test across subpopulations."""

    statistic: float
    dof: int
    p_value: float
    pooled_rate: float

    def rejects_homogeneity(self, alpha: float = 0.01) -> bool:
        """Whether equal-*p* across subpopulations is rejected at *alpha*."""
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        return self.p_value < alpha


def chi_square_homogeneity(
    trials: Sequence[int], successes: Sequence[int]
) -> HomogeneityResult:
    """Chi-square test that all subpopulations share one success rate.

    Parameters
    ----------
    trials:
        Number of trials per subpopulation (all > 0).
    successes:
        Number of successes per subpopulation (0 <= s_k <= trials_k).

    Groups are compared against the pooled rate; the statistic follows a
    chi-square distribution with ``K - 1`` degrees of freedom under the
    null hypothesis of homogeneity.
    """
    trials = np.asarray(trials, dtype=np.float64)
    successes = np.asarray(successes, dtype=np.float64)
    if trials.shape != successes.shape or trials.ndim != 1:
        raise ValueError("trials and successes must be 1-D and equally long")
    if trials.size < 2:
        raise ValueError("need at least two subpopulations to compare")
    if np.any(trials <= 0):
        raise ValueError("every subpopulation needs at least one trial")
    if np.any(successes < 0) or np.any(successes > trials):
        raise ValueError("successes must be within [0, trials] per group")

    pooled = float(successes.sum() / trials.sum())
    if pooled in (0.0, 1.0):
        # Degenerate: every trial in every group agreed; perfectly
        # homogeneous by construction.
        return HomogeneityResult(
            statistic=0.0, dof=int(trials.size - 1), p_value=1.0, pooled_rate=pooled
        )
    expected_s = trials * pooled
    expected_f = trials * (1.0 - pooled)
    failures = trials - successes
    stat = float(
        np.sum((successes - expected_s) ** 2 / expected_s)
        + np.sum((failures - expected_f) ** 2 / expected_f)
    )
    dof = int(trials.size - 1)
    p_value = float(chi2.sf(stat, dof))
    return HomogeneityResult(
        statistic=stat, dof=dof, p_value=p_value, pooled_rate=pooled
    )
