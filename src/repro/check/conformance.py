"""Conformance suite: engine-level and per-op empirical correctness.

**Engine level** (:func:`run_conformance`): the vectorized engine's
throughput comes from *not* running kernels for rows it can certify;
its correctness claim is that the predictions it reports are
nevertheless bit-identical to the exact engine's.  That claim is
attested structurally (``check_plan_vectorized`` declares the
fingerprints compatible) — this check runs both engines over the same
campaign-representative fault sample and compares the full per-fault
prediction matrices and classified outcomes row by row.  The module
engine (bit-identical by the capture contract) and the fused engine
(numeric-changing by design; executed and reported, never gated) ride
along, so all four engines exercise the backend interface per run.
With ``backend=`` set to a non-reference backend, the comparison is
instead that backend's plan engine against the reference plan engine,
judged by *tolerance* (their fingerprints differ by construction, so no
bit-exactness is attested).

**Op level** (:func:`run_op_conformance`): the op_db registry
(:mod:`repro.check.opdb`) supplies deterministic samples per op kind;
every registered backend runs every sample under three checks —
cross-backend agreement at the backend's declared tolerance class,
falsification of claimed batch-invariance (stacked vs separate runs
must match bitwise), and reference plan-vs-module equivalence.  A
backend that mis-declares either trait fails here, which is what the
mutation tests assert.

A *flip* is any (fault, image) cell where the two engines predict
different classes; an *outcome flip* is a fault whose campaign
classification differs.  ``tolerance`` is the permitted flip fraction —
``0.0`` by default, and forced to ``0.0`` whenever the engines attest
bit-exactness (the fingerprint-compatibility claim admits no slack).

``repro-check conform`` is the CLI front end; CI runs it on the mini
reference models (and ``conform --ops`` over the op_db) and fails the
build on any out-of-tolerance flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:
    from repro.backends import Backend
    from repro.check.opdb import BuiltSample
    from repro.nn.module import Module
    from repro.runtime import PlanEngine


@dataclass(frozen=True)
class ConformanceReport:
    """Outcome of one vectorized-vs-exact conformance run."""

    model: str
    faults: int
    eval_size: int
    #: (fault, image) cells predicting different classes.
    prediction_flips: int
    #: Faults whose campaign outcome classification differs.
    outcome_flips: int
    #: Permitted flip fraction (0.0 when bit-exactness is attested).
    tolerance: float
    #: Engines declared their fingerprints compatible (bit-exact claim).
    bit_exact_attested: bool
    #: Faults fully retired by pre-certification (no kernel work).
    precertified: int
    #: (fault, image) rows certified during seeding or the suffix walk.
    certified_rows: int
    #: Rows that ran the full suffix and were argmax-classified.
    survivor_rows: int
    ok: bool
    #: Fault indices of out-of-tolerance outcome flips (first 32).
    flipped_faults: tuple[int, ...] = field(default=())
    #: Kernel backend of the engine under test ("numpy" = reference).
    backend: str = "numpy"
    #: Module-engine (fault, image) cells differing from the exact plan
    #: engine; None when the module engine did not run.
    module_prediction_flips: int | None = None
    #: Fused-engine outcome flips vs the exact plan engine — reported,
    #: never gated (BN-folding is numeric-changing by design); None when
    #: the fused engine did not run.
    fused_outcome_flips: int | None = None

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "faults": self.faults,
            "eval_size": self.eval_size,
            "prediction_flips": self.prediction_flips,
            "outcome_flips": self.outcome_flips,
            "tolerance": self.tolerance,
            "bit_exact_attested": self.bit_exact_attested,
            "precertified": self.precertified,
            "certified_rows": self.certified_rows,
            "survivor_rows": self.survivor_rows,
            "ok": self.ok,
            "flipped_faults": list(self.flipped_faults),
            "backend": self.backend,
            "module_prediction_flips": self.module_prediction_flips,
            "fused_outcome_flips": self.fused_outcome_flips,
        }


def _sample_faults(engine: PlanEngine, count: int, seed: int) -> list:
    """Campaign-representative fault sample (mirrors the throughput bench).

    Layers proportional to weight count, bits uniform over all 32
    positions, both stuck-at models, masked faults excluded — the same
    population the exhaustive artifacts enumerate.
    """
    from repro.faults import Fault, FaultModel

    rng = np.random.default_rng(seed)
    layers = engine.layers
    sizes = np.array([layer.size for layer in layers], dtype=np.float64)
    weights = sizes / sizes.sum()
    models = [FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1]
    faults: list = []
    while len(faults) < count:
        layer = int(rng.choice(len(layers), p=weights))
        fault = Fault(
            layer=layer,
            index=int(rng.integers(layers[layer].size)),
            bit=int(rng.integers(0, 32)),
            model=models[int(rng.integers(2))],
        )
        if not engine.injector.is_masked(fault):
            faults.append(fault)
    return faults


def run_conformance(
    model: str | Module,
    *,
    eval_size: int = 64,
    faults: int = 128,
    seed: int = 0,
    tolerance: float = 0.0,
    batch_size: int = 16,
    backend: str | None = None,
    include_module: bool | None = None,
    include_fused: bool | None = None,
) -> ConformanceReport:
    """Compare engines fault by fault over one campaign-representative sample.

    *model* is either a model name from the registry (the pretrained
    reference checkpoint is used, training it first if absent) or an
    already-built :class:`~repro.nn.module.Module`.

    With the default (reference) *backend*, the engine under test is the
    vectorized engine against the exact plan engine, plus — unless
    disabled — a module-engine bit-identity check (gating) and a
    fused-engine run (reported only).  With a non-reference *backend*,
    the engine under test is that backend's plan engine; flips are
    judged against *tolerance* alone.
    """
    # Lazy: check is imported by runtime's plan layer; the engines pull
    # in the whole runtime stack.
    from repro.backends import resolve_backend
    from repro.data import SynthCIFAR
    from repro.runtime import PlanEngine, VectorizedPlanEngine

    if isinstance(model, str):
        name = model
        from repro.models import create_model, pretrained_path
        from repro.train import train_reference_model

        if not pretrained_path(name).is_file():
            train_reference_model(name)
        model = create_model(name, pretrained=True)
    else:
        name = type(model).__name__

    resolved = resolve_backend(backend)
    reference_run = resolved.is_reference
    if include_module is None:
        include_module = reference_run
    if include_fused is None:
        include_fused = reference_run

    data = SynthCIFAR("test", size=eval_size, seed=1234)
    exact = PlanEngine(
        model, data.images, data.labels, batch_size=batch_size
    )
    if reference_run:
        under_test = VectorizedPlanEngine(
            model, data.images, data.labels, batch_size=batch_size
        )
    else:
        under_test = PlanEngine(
            model, data.images, data.labels, batch_size=batch_size,
            backend=resolved,
        )
    from repro.check.plan import fingerprints_compatible

    attested = fingerprints_compatible(
        under_test.plan_fingerprint, exact.plan_fingerprint
    )
    if attested:
        tolerance = 0.0

    sample = _sample_faults(exact, faults, seed)
    preds_exact = exact.predictions_for_faults(sample)
    preds_test = under_test.predictions_for_faults(sample)
    cells = np.asarray(preds_exact) != np.asarray(preds_test)
    prediction_flips = int(cells.sum())

    outcomes_exact = exact.classify_many(sample)
    outcomes_test = under_test.classify_many(sample)
    flipped = [
        i
        for i, (a, b) in enumerate(zip(outcomes_exact, outcomes_test))
        if a != b
    ]
    flip_fraction = len(flipped) / max(len(sample), 1)
    ok = flip_fraction <= tolerance and (
        not attested or prediction_flips == 0
    )

    module_flips = None
    if include_module:
        from repro.faults.engine import InferenceEngine

        module_engine = InferenceEngine(model, data.images, data.labels)
        preds_module = np.asarray(module_engine.predictions_for_faults(sample))
        module_flips = int((preds_module != np.asarray(preds_exact)).sum())
        ok = ok and module_flips == 0

    fused_flips = None
    if include_fused:
        fused_engine = PlanEngine(
            model, data.images, data.labels, batch_size=batch_size,
            fuse=True,
        )
        outcomes_fused = fused_engine.classify_many(sample)
        fused_flips = sum(
            1 for a, b in zip(outcomes_exact, outcomes_fused) if a != b
        )

    return ConformanceReport(
        model=name,
        faults=len(sample),
        eval_size=eval_size,
        prediction_flips=prediction_flips,
        outcome_flips=len(flipped),
        tolerance=tolerance,
        bit_exact_attested=attested,
        precertified=getattr(under_test, "precertified", 0),
        certified_rows=getattr(under_test, "certified_rows", 0),
        survivor_rows=getattr(under_test, "survivor_rows", 0),
        ok=ok,
        flipped_faults=tuple(flipped[:32]),
        backend=resolved.name,
        module_prediction_flips=module_flips,
        fused_outcome_flips=fused_flips,
    )


# -- op-level conformance (op_db driven) -----------------------------------


@dataclass(frozen=True)
class OpConformanceResult:
    """Verdict of one (backend, kind, sample, check) combination."""

    backend: str
    kind: str
    sample: str
    #: "agreement" | "batch_invariance" | "module_equivalence"
    check: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "kind": self.kind,
            "sample": self.sample,
            "check": self.check,
            "ok": self.ok,
            "detail": self.detail,
        }


def _run_built(backend: Backend, built: BuiltSample) -> Any:
    """Execute one built op_db sample on *backend*."""
    if built.op is not None:
        return backend.run_op(built.op, built.inputs)
    if built.kind == "gemm":
        return backend.gemm(*built.inputs)
    if built.kind == "im2col":
        return backend.im2col(built.inputs[0], *built.args)
    raise ValueError(f"op_db sample kind {built.kind!r} has no runner")


def _outputs_agree(out: Any, ref_out: Any, tolerance_class: str) -> tuple[bool, str]:
    out = np.asarray(out)
    ref_out = np.asarray(ref_out)
    if out.shape != ref_out.shape:
        return False, f"shape {out.shape} != reference {ref_out.shape}"
    if tolerance_class == "bitexact":
        if np.array_equal(out, ref_out):
            return True, ""
        bad = int((out != ref_out).sum())
        return False, f"{bad} element(s) differ bitwise"
    if np.allclose(out, ref_out, rtol=1e-5, atol=1e-6):
        return True, ""
    err = float(np.max(np.abs(out - ref_out)))
    return False, f"max abs error {err:.3g} beyond relative tolerance"


def _claims_invariance(backend: Backend, built: BuiltSample) -> bool:
    if built.op is not None:
        return bool(backend.batch_invariant(built.op))
    return backend.OP_INVARIANCE[built.kind] == "always"


def _check_batch_invariance(
    backend: Backend, built: BuiltSample, rng: np.random.Generator
) -> tuple[bool, str]:
    """Falsify a claimed invariance: stacked run must bit-equal split runs.

    A second batch of fresh inputs (same shapes, same op/parameters) is
    concatenated along the batch axis; the stacked output's slices must
    be bitwise equal to the two separate runs.
    """
    alt = [
        rng.standard_normal(x.shape).astype(np.float32) for x in built.inputs
    ]
    split_a = np.asarray(_run_built(backend, built))
    alt_built = type(built)(
        kind=built.kind, op=built.op, inputs=alt, args=built.args,
        module=built.module,
    )
    split_b = np.asarray(_run_built(backend, alt_built))
    stacked_built = type(built)(
        kind=built.kind,
        op=built.op,
        inputs=[
            np.concatenate([x, a], axis=0)
            for x, a in zip(built.inputs, alt)
        ],
        args=built.args,
        module=built.module,
    )
    try:
        stacked = np.asarray(_run_built(backend, stacked_built))
    except Exception as exc:  # noqa: BLE001 — any crash falsifies the claim
        return False, (
            "claimed batch-invariant but the stacked run raised "
            f"{type(exc).__name__}: {exc}"
        )
    expected = np.concatenate([split_a, split_b], axis=0)
    if np.array_equal(stacked, expected):
        return True, ""
    bad = int((stacked != expected).sum())
    return False, (
        f"claimed batch-invariant but stacking changed {bad} element(s)"
    )


def run_op_conformance(
    *,
    backends: list[str | Backend] | None = None,
    kinds: list[str] | None = None,
    seed: int = 0,
) -> list[OpConformanceResult]:
    """Run the op_db suite: every sample × every backend × every check.

    *backends* is a list of backend names or instances (default: every
    registered backend that constructs — graceful degradation for
    optional libraries); *kinds* restricts the op kinds.  Returns one
    :class:`OpConformanceResult` per executed check; a mis-declared
    tolerance or batch-invariance class surfaces as ``ok=False`` rows.
    """
    from repro.backends import Backend, available_backends, get_backend
    from repro.check.opdb import OP_SAMPLES

    reference = get_backend("numpy")
    if backends is None:
        resolved = [get_backend(name) for name in available_backends()]
    else:
        resolved = [
            entry if isinstance(entry, Backend) else get_backend(entry)
            for entry in backends
        ]
    selected = sorted(OP_SAMPLES) if kinds is None else [
        kind for kind in sorted(OP_SAMPLES) if kind in set(kinds)
    ]

    results: list[OpConformanceResult] = []
    for ki, kind in enumerate(selected):
        for si, sample in enumerate(OP_SAMPLES[kind]):
            built = sample.build(np.random.default_rng((seed, ki, si)))
            ref_out = _run_built(reference, built)
            if built.module is not None:
                ok = bool(
                    np.array_equal(
                        np.asarray(ref_out),
                        built.module.forward_fast(built.inputs[0]),
                    )
                )
                results.append(
                    OpConformanceResult(
                        backend=reference.name,
                        kind=kind,
                        sample=sample.name,
                        check="module_equivalence",
                        ok=ok,
                        detail=""
                        if ok
                        else "plan kernel != module forward_fast bitwise",
                    )
                )
            for backend in resolved:
                out = _run_built(backend, built)
                ok, detail = _outputs_agree(
                    out, ref_out, backend.tolerance(kind)
                )
                results.append(
                    OpConformanceResult(
                        backend=backend.name,
                        kind=kind,
                        sample=sample.name,
                        check="agreement",
                        ok=ok,
                        detail=detail,
                    )
                )
                if _claims_invariance(backend, built):
                    ok, detail = _check_batch_invariance(
                        backend,
                        built,
                        np.random.default_rng((seed + 1, ki, si)),
                    )
                    results.append(
                        OpConformanceResult(
                            backend=backend.name,
                            kind=kind,
                            sample=sample.name,
                            check="batch_invariance",
                            ok=ok,
                            detail=detail,
                        )
                    )
    return results
