"""Conformance suite: vectorized engine vs the exact plan engine.

The vectorized engine's throughput comes from *not* running kernels for
rows it can certify; its correctness claim is that the predictions it
reports are nevertheless bit-identical to the exact engine's.  That
claim is attested structurally (``check_plan_vectorized`` declares the
fingerprints compatible) — this module is the empirical check behind
the attestation: run both engines over the same campaign-representative
fault sample and compare the full per-fault prediction matrices and
classified outcomes row by row.

A *flip* is any (fault, image) cell where the two engines predict
different classes; an *outcome flip* is a fault whose campaign
classification differs.  ``tolerance`` is the permitted flip fraction —
``0.0`` by default, and forced to ``0.0`` whenever the engines attest
bit-exactness (the fingerprint-compatibility claim admits no slack).

``repro-check conform`` is the CLI front end; CI runs it on the mini
reference models and fails the build on any out-of-tolerance flip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class ConformanceReport:
    """Outcome of one vectorized-vs-exact conformance run."""

    model: str
    faults: int
    eval_size: int
    #: (fault, image) cells predicting different classes.
    prediction_flips: int
    #: Faults whose campaign outcome classification differs.
    outcome_flips: int
    #: Permitted flip fraction (0.0 when bit-exactness is attested).
    tolerance: float
    #: Engines declared their fingerprints compatible (bit-exact claim).
    bit_exact_attested: bool
    #: Faults fully retired by pre-certification (no kernel work).
    precertified: int
    #: (fault, image) rows certified during seeding or the suffix walk.
    certified_rows: int
    #: Rows that ran the full suffix and were argmax-classified.
    survivor_rows: int
    ok: bool
    #: Fault indices of out-of-tolerance outcome flips (first 32).
    flipped_faults: tuple[int, ...] = field(default=())

    def to_dict(self) -> dict:
        return {
            "model": self.model,
            "faults": self.faults,
            "eval_size": self.eval_size,
            "prediction_flips": self.prediction_flips,
            "outcome_flips": self.outcome_flips,
            "tolerance": self.tolerance,
            "bit_exact_attested": self.bit_exact_attested,
            "precertified": self.precertified,
            "certified_rows": self.certified_rows,
            "survivor_rows": self.survivor_rows,
            "ok": self.ok,
            "flipped_faults": list(self.flipped_faults),
        }


def _sample_faults(engine, count: int, seed: int) -> list:
    """Campaign-representative fault sample (mirrors the throughput bench).

    Layers proportional to weight count, bits uniform over all 32
    positions, both stuck-at models, masked faults excluded — the same
    population the exhaustive artifacts enumerate.
    """
    from repro.faults import Fault, FaultModel

    rng = np.random.default_rng(seed)
    layers = engine.layers
    sizes = np.array([layer.size for layer in layers], dtype=np.float64)
    weights = sizes / sizes.sum()
    models = [FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1]
    faults: list = []
    while len(faults) < count:
        layer = int(rng.choice(len(layers), p=weights))
        fault = Fault(
            layer=layer,
            index=int(rng.integers(layers[layer].size)),
            bit=int(rng.integers(0, 32)),
            model=models[int(rng.integers(2))],
        )
        if not engine.injector.is_masked(fault):
            faults.append(fault)
    return faults


def run_conformance(
    model,
    *,
    eval_size: int = 64,
    faults: int = 128,
    seed: int = 0,
    tolerance: float = 0.0,
    batch_size: int = 16,
) -> ConformanceReport:
    """Compare vectorized and exact plan engines fault by fault.

    *model* is either a model name from the registry (the pretrained
    reference checkpoint is used, training it first if absent) or an
    already-built :class:`~repro.nn.module.Module`.
    """
    # Lazy: check is imported by runtime's plan layer; the engines pull
    # in the whole runtime stack.
    from repro.data import SynthCIFAR
    from repro.runtime import PlanEngine, VectorizedPlanEngine

    if isinstance(model, str):
        name = model
        from repro.models import create_model, pretrained_path
        from repro.train import train_reference_model

        if not pretrained_path(name).is_file():
            train_reference_model(name)
        model = create_model(name, pretrained=True)
    else:
        name = type(model).__name__

    data = SynthCIFAR("test", size=eval_size, seed=1234)
    exact = PlanEngine(
        model, data.images, data.labels, batch_size=batch_size
    )
    vectorized = VectorizedPlanEngine(
        model, data.images, data.labels, batch_size=batch_size
    )
    from repro.check.plan import fingerprints_compatible

    attested = fingerprints_compatible(
        vectorized.plan_fingerprint, exact.plan_fingerprint
    )
    if attested:
        tolerance = 0.0

    sample = _sample_faults(exact, faults, seed)
    preds_exact = exact.predictions_for_faults(sample)
    preds_vec = vectorized.predictions_for_faults(sample)
    cells = np.asarray(preds_exact) != np.asarray(preds_vec)
    prediction_flips = int(cells.sum())

    outcomes_exact = exact.classify_many(sample)
    outcomes_vec = vectorized.classify_many(sample)
    flipped = [
        i
        for i, (a, b) in enumerate(zip(outcomes_exact, outcomes_vec))
        if a != b
    ]
    flip_fraction = len(flipped) / max(len(sample), 1)
    ok = flip_fraction <= tolerance and (
        not attested or prediction_flips == 0
    )
    return ConformanceReport(
        model=name,
        faults=len(sample),
        eval_size=eval_size,
        prediction_flips=prediction_flips,
        outcome_flips=len(flipped),
        tolerance=tolerance,
        bit_exact_attested=attested,
        precertified=vectorized.precertified,
        certified_rows=vectorized.certified_rows,
        survivor_rows=vectorized.survivor_rows,
        ok=ok,
        flipped_faults=tuple(flipped[:32]),
    )
