"""Committed lint baselines: CI fails only on *new* findings.

A baseline entry identifies a finding by ``(relative path, rule,
sha1 of the stripped source line)`` — stable across line-number churn
but invalidated when the offending line itself changes.  Matching is
multiset-style so two identical lines in one file need two entries.

The committed baseline for ``src/repro`` is intentionally empty (every
real finding was fixed or carries an inline justification); the
machinery exists so downstream additions can be adopted incrementally.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path

from repro.check.lint import LintFinding
from repro.store import atomic_write_bytes

BaselineKey = tuple[str, str, str]


def _finding_key(finding: LintFinding, root: Path) -> BaselineKey:
    path = Path(finding.path)
    try:
        rel = path.resolve().relative_to(Path(root).resolve())
    except ValueError:
        rel = path
    digest = hashlib.sha1(finding.snippet.encode("utf-8")).hexdigest()
    return (rel.as_posix(), finding.rule, digest)


def load_baseline(path: Path) -> Counter:
    """Baseline file -> multiset of finding keys (empty if missing)."""
    path = Path(path)
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    return Counter(
        (entry["file"], entry["rule"], entry["hash"])
        for entry in payload.get("findings", [])
    )


def save_baseline(path: Path, findings: list[LintFinding], root: Path) -> None:
    entries = [
        {"file": key[0], "rule": key[1], "hash": key[2]}
        for key in sorted(_finding_key(f, root) for f in findings)
    ]
    payload = json.dumps(
        {"version": 1, "findings": entries}, indent=2, sort_keys=True
    )
    atomic_write_bytes(Path(path), (payload + "\n").encode("utf-8"))


def new_findings(
    findings: list[LintFinding], baseline: Counter, root: Path
) -> list[LintFinding]:
    """Findings not absorbed by the baseline multiset."""
    remaining = Counter(baseline)
    fresh = []
    for finding in findings:
        key = _finding_key(finding, root)
        if remaining[key] > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh
