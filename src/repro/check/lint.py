"""AST-based determinism linter for the repro codebase.

Bit-identical distributed merges (PR 3) and plan/module engine
equivalence (PR 4) rest on the absence of a handful of bug classes that
never show up in unit tests but wreck reproducibility at campaign
scale.  This linter encodes them as static rules:

========  ==============================================================
 rule     finding
========  ==============================================================
 D201     unseeded RNG (``np.random.*`` legacy API, ``default_rng()``
          with no seed, stdlib ``random``)
 D202     iteration over a ``set``/``frozenset`` in an ordered context
 D203     wall clock (``time.time``/``datetime.now``/…) used in a
          function that also serializes or hashes data
 D204     file writes bypassing the :mod:`repro.store` atomic helpers
 D205     ``json.dump``/``json.dumps`` without ``sort_keys=True``
 D206     unsorted directory listings (``glob``/``iterdir``/``listdir``)
          iterated in an ordered context
========  ==============================================================

A finding on line *N* is suppressed by a ``# repro-check: ignore[RULE]``
comment on that line; suppressions should carry a justification and are
forbidden under ``src/repro/runtime`` (enforced by tests).  CI compares
findings against a committed baseline (:mod:`repro.check.baseline`) so
only *new* findings fail the build.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.check.diagnostics import LINT_RULES

_IGNORE_RE = re.compile(r"#\s*repro-check:\s*ignore\[([A-Z]?\d+(?:\s*,\s*[A-Z]?\d+)*)\]")

#: repro.store helpers that make a write atomic (rule D204's allow-list).
_ATOMIC_HELPERS = frozenset(
    {
        "atomic_write",
        "atomic_write_bytes",
        "atomic_append_line",
        "atomic_savez",
        "save_verified_npz",
        "write_manifest",
    }
)

#: Calls whose result (or side effect) is serialized/hashed output —
#: a wall-clock read in the same function can leak into artifacts (D203).
_SERIALIZATION_SINKS = frozenset(
    {"dump", "dumps", "sha256", "sha1", "md5", "blake2b", "blake2s"}
) | _ATOMIC_HELPERS

_WALL_CLOCK = frozenset({"time", "time_ns", "now", "utcnow", "today"})
_WALL_CLOCK_BASES = frozenset({"time", "datetime", "date", "dt"})

_LISTING_CALLS = frozenset({"glob", "rglob", "iterdir", "listdir", "scandir"})

#: Wrappers that erase iteration order (or impose one), so an unordered
#: iterable inside them is fine for D202/D206.
_ORDER_SAFE_WRAPPERS = frozenset(
    {"sorted", "set", "frozenset", "len", "sum", "min", "max", "any", "all",
     "Counter"}
)

_RNG_SAFE_ATTRS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


@dataclass(frozen=True)
class LintFinding:
    """One determinism-lint finding."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    snippet: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def _call_name(node: ast.Call) -> str:
    """Trailing name of the called expression (``json.dumps`` -> ``dumps``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted name for an expression (``np.random.rand``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return isinstance(node, ast.Call) and _call_name(node) in ("set", "frozenset")


def _is_listing_call(node: ast.expr) -> bool:
    return isinstance(node, ast.Call) and _call_name(node) in _LISTING_CALLS


class _Linter(ast.NodeVisitor):
    def __init__(self, path: Path, source: str, tree: ast.AST) -> None:
        self.path = path
        self.lines = source.splitlines()
        self.findings: list[LintFinding] = []
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        # Per-scope bookkeeping for D203: scopes (functions + module)
        # that contain serialization sinks, and their wall-clock reads.
        self._scope_stack: list[dict] = [{"sinks": False, "clocks": []}]

    # -- plumbing ---------------------------------------------------------

    def _add(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 1)
        snippet = self.lines[line - 1] if 0 < line <= len(self.lines) else ""
        self.findings.append(
            LintFinding(
                rule=rule,
                path=str(self.path),
                line=line,
                col=getattr(node, "col_offset", 0),
                message=message,
                snippet=snippet.strip(),
            )
        )

    def _enclosing_call_names(self, node: ast.AST, limit: int = 4) -> list[str]:
        """Names of call expressions wrapping *node* (innermost first)."""
        names = []
        current = self._parents.get(node)
        while current is not None and limit > 0:
            if isinstance(current, ast.Call):
                names.append(_call_name(current))
                limit -= 1
            elif isinstance(current, ast.stmt):
                break
            current = self._parents.get(current)
        return names

    def _in_order_safe_wrapper(self, node: ast.AST) -> bool:
        return any(
            name in _ORDER_SAFE_WRAPPERS
            for name in self._enclosing_call_names(node)
        )

    # -- scopes (D203) ----------------------------------------------------

    def _visit_scope(self, node: ast.AST) -> None:
        self._scope_stack.append({"sinks": False, "clocks": []})
        self.generic_visit(node)
        scope = self._scope_stack.pop()
        if scope["sinks"]:
            for clock_node, name in scope["clocks"]:
                self._add(
                    "D203",
                    clock_node,
                    f"wall-clock read {name}() in a scope that serializes/"
                    "hashes data — timestamps must not reach fingerprints "
                    "or artifact contents",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scope(node)

    # -- imports (D201) ---------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        if any(alias.name == "random" for alias in node.names):
            self._add(
                "D201",
                node,
                "stdlib random imported — use seeded np.random.Generator "
                "substreams instead",
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            self._add(
                "D201",
                node,
                "stdlib random imported — use seeded np.random.Generator "
                "substreams instead",
            )
        self.generic_visit(node)

    # -- calls (D201, D203, D204, D205, D206 wrappers) -------------------

    def visit_Call(self, node: ast.Call) -> None:
        dotted = _dotted(node.func)
        name = _call_name(node)

        # D201: unseeded RNG.
        parts = dotted.split(".")
        if (
            len(parts) >= 2
            and parts[-2] == "random"
            and parts[0] in ("np", "numpy", "random")
        ):
            if parts[-1] not in _RNG_SAFE_ATTRS:
                self._add(
                    "D201",
                    node,
                    f"{dotted}() draws from an implicitly seeded global "
                    "stream — results become run-order dependent",
                )
        if name == "default_rng" and not node.args and not node.keywords:
            self._add(
                "D201",
                node,
                "default_rng() without a seed draws OS entropy — thread a "
                "SeedSequence substream instead",
            )

        # D203 bookkeeping: sinks + wall-clock reads in this scope.
        scope = self._scope_stack[-1]
        if name in _SERIALIZATION_SINKS:
            scope["sinks"] = True
        base = dotted.split(".")[0] if "." in dotted else ""
        if name in _WALL_CLOCK and base in _WALL_CLOCK_BASES:
            scope["clocks"].append((node, dotted))

        # D204: writes bypassing repro.store atomic helpers.
        if name == "open":
            mode = None
            # builtin open(path, mode) vs Path.open(mode)
            mode_index = 0 if isinstance(node.func, ast.Attribute) else 1
            if len(node.args) > mode_index and isinstance(
                node.args[mode_index], ast.Constant
            ):
                mode = node.args[mode_index].value
            for kw in node.keywords:
                if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                    mode = kw.value.value
            if isinstance(mode, str) and any(c in mode for c in "wax+"):
                self._add(
                    "D204",
                    node,
                    f"open(..., {mode!r}) writes without the repro.store "
                    "temp+fsync+rename discipline — a crash leaves a torn "
                    "file",
                )
        elif name in ("write_text", "write_bytes"):
            self._add(
                "D204",
                node,
                f".{name}() writes in place — use repro.store.atomic_write "
                "helpers",
            )
        elif dotted in ("np.save", "np.savez", "np.savez_compressed",
                        "numpy.save", "numpy.savez", "numpy.savez_compressed"):
            if not self._writes_to_memory_buffer(node):
                self._add(
                    "D204",
                    node,
                    f"{dotted}() writes a file in place — use "
                    "repro.store.atomic_savez / save_verified_npz",
                )

        # D205: json serialization without a canonical key order.
        if dotted in ("json.dump", "json.dumps"):
            sort_kw = next(
                (kw for kw in node.keywords if kw.arg == "sort_keys"), None
            )
            unsorted = sort_kw is None or (
                isinstance(sort_kw.value, ast.Constant)
                and not sort_kw.value.value
            )
            if unsorted:
                self._add(
                    "D205",
                    node,
                    f"{dotted}() without sort_keys=True — dict insertion "
                    "order leaks into serialized bytes",
                )

        # D202/D206: unordered iterables materialised into ordered
        # containers (list(...)/tuple(...) of a set or dir listing).
        if name in ("list", "tuple", "enumerate") and node.args:
            arg = node.args[0]
            if _is_set_expr(arg):
                self._add(
                    "D202",
                    arg,
                    f"{name}() over a set has undefined element order",
                )
            if _is_listing_call(arg):
                self._add(
                    "D206",
                    arg,
                    f"{name}() over a directory listing has filesystem-"
                    "dependent order — wrap it in sorted()",
                )

        self.generic_visit(node)

    def _writes_to_memory_buffer(self, node: ast.Call) -> bool:
        """np.save*(buf, ...) into an io.BytesIO is not a file write."""
        if not node.args:
            return False
        target = node.args[0]
        if isinstance(target, ast.Call):
            return _call_name(target) in ("BytesIO", "StringIO")
        if isinstance(target, ast.Name):
            # Heuristic: conventional buffer names used with BytesIO.
            return target.id in ("buf", "buffer", "bio", "stream", "fh")
        return False

    # -- iteration contexts (D202, D206) ---------------------------------

    def _check_iter(self, iter_node: ast.expr, unordered_ok: bool) -> None:
        if _is_set_expr(iter_node) and not unordered_ok:
            self._add(
                "D202",
                iter_node,
                "iterating a set — element order is undefined and may flow "
                "into ordered output",
            )
        if _is_listing_call(iter_node) and not unordered_ok:
            self._add(
                "D206",
                iter_node,
                "iterating an unsorted directory listing — wrap it in "
                "sorted()",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iter(node.iter, unordered_ok=False)
        self.generic_visit(node)

    def _visit_comp(
        self, node: ast.ListComp | ast.SetComp | ast.DictComp | ast.GeneratorExp,
        unordered_result: bool,
    ) -> None:
        for gen in node.generators:
            safe = unordered_result or self._in_order_safe_wrapper(node)
            self._check_iter(gen.iter, unordered_ok=safe)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comp(node, unordered_result=False)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comp(node, unordered_result=False)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._visit_comp(node, unordered_result=True)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._visit_comp(node, unordered_result=True)


def _suppressed_rules(line: str) -> set[str]:
    match = _IGNORE_RE.search(line)
    if not match:
        return set()
    return {part.strip() for part in match.group(1).split(",")}


def lint_source(source: str, path: Path) -> list[LintFinding]:
    """Lint one file's source text; suppression comments are honoured."""
    tree = ast.parse(source, filename=str(path))
    linter = _Linter(path, source, tree)
    linter.visit(tree)
    # Module scope participates in D203 too.
    scope = linter._scope_stack[0]
    if scope["sinks"]:
        for clock_node, name in scope["clocks"]:
            linter._add(
                "D203",
                clock_node,
                f"wall-clock read {name}() at module scope alongside "
                "serialization calls",
            )
    lines = source.splitlines()
    kept = []
    for finding in sorted(linter.findings, key=lambda f: (f.line, f.col, f.rule)):
        line = lines[finding.line - 1] if finding.line <= len(lines) else ""
        if finding.rule in _suppressed_rules(line):
            continue
        kept.append(finding)
    return kept


def lint_file(path: Path) -> list[LintFinding]:
    return lint_source(path.read_text(encoding="utf-8"), path)


def lint_paths(paths: list[Path]) -> list[LintFinding]:
    """Lint files and (recursively) directories, in sorted order."""
    findings: list[LintFinding] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                findings.extend(lint_file(file))
        else:
            findings.extend(lint_file(path))
    return findings


def rule_catalog() -> dict[str, str]:
    return dict(LINT_RULES)
