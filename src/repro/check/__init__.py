"""Static analysis for the repro stack: plan verifier + determinism linter.

Two passes, both milliseconds-cheap, guarding invariants the campaign
stack otherwise only discovers through expensive end-to-end bit-identity
runs:

- :func:`check_plan` / :func:`verify_plan` — abstract interpretation
  over a captured :class:`~repro.runtime.plan.ExecutionPlan` (shapes,
  dtypes, SSA slots, ``affected_ops`` soundness, cache safety,
  batch-invariance audit).  Wired into every plan trust boundary:
  ``capture_plan``, ``fuse_plan``, ``PlanEngine.__init__`` and the
  distributed merge (shards must attest a verified plan fingerprint).
- :func:`lint_paths` — AST determinism rules (D201–D206) over the
  source tree, with inline suppressions and a committed baseline.
- :mod:`repro.check.protocol` — the distributed queue protocol, proved
  two ways: :func:`check_protocol` model-checks every crash
  interleaving of the abstract queue (Q310–Q314) and
  :func:`check_effects` statically matches the real ``repro.dist``
  source against its declared filesystem-effect spec (Q301–Q306).

``repro-check`` (:mod:`repro.cli.check`) is the CLI front end.
"""

from repro.check.baseline import load_baseline, new_findings, save_baseline
from repro.check.diagnostics import (
    LINT_RULES,
    PLAN_RULES,
    PROTOCOL_RULES,
    Diagnostic,
    PlanVerificationError,
)
from repro.check.protocol import (
    MUTANT_MODELS,
    ProtocolCheckResult,
    ProtocolFinding,
    ProtocolModel,
    Scenario,
    Violation,
    check_effects,
    check_protocol,
    render_trace,
)
from repro.check.kernels import (
    ABSORPTION_KINDS,
    KERNEL_TABLE,
    KernelSpec,
    ShapeError,
    absorption_spec,
)
from repro.check.lint import (
    LintFinding,
    lint_file,
    lint_paths,
    lint_source,
    rule_catalog,
)
from repro.check.conformance import (
    ConformanceReport,
    OpConformanceResult,
    run_conformance,
    run_op_conformance,
)
from repro.check.opdb import OP_SAMPLES, OpSample, opdb_kinds, samples_for
from repro.check.plan import (
    DEFAULT_INPUT_SHAPE,
    check_plan,
    check_plan_vectorized,
    compatible_fingerprints,
    declare_fingerprints_compatible,
    fingerprints_compatible,
    is_plan_verified,
    mark_plan_verified,
    plan_fingerprint,
    verify_plan,
    verify_plan_vectorized,
)

__all__ = [
    "LINT_RULES",
    "PLAN_RULES",
    "PROTOCOL_RULES",
    "Diagnostic",
    "PlanVerificationError",
    "MUTANT_MODELS",
    "ProtocolCheckResult",
    "ProtocolFinding",
    "ProtocolModel",
    "Scenario",
    "Violation",
    "check_effects",
    "check_protocol",
    "render_trace",
    "ABSORPTION_KINDS",
    "ConformanceReport",
    "KERNEL_TABLE",
    "KernelSpec",
    "ShapeError",
    "absorption_spec",
    "OP_SAMPLES",
    "OpConformanceResult",
    "OpSample",
    "opdb_kinds",
    "run_conformance",
    "run_op_conformance",
    "samples_for",
    "LintFinding",
    "lint_file",
    "lint_paths",
    "lint_source",
    "rule_catalog",
    "load_baseline",
    "new_findings",
    "save_baseline",
    "DEFAULT_INPUT_SHAPE",
    "check_plan",
    "check_plan_vectorized",
    "compatible_fingerprints",
    "declare_fingerprints_compatible",
    "fingerprints_compatible",
    "is_plan_verified",
    "mark_plan_verified",
    "plan_fingerprint",
    "verify_plan",
    "verify_plan_vectorized",
]
