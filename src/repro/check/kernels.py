"""Central static classification table for plan op kinds.

This is the vetting register the plan verifier audits against: every op
kind an :class:`~repro.runtime.plan.ExecutionPlan` may contain must have
a row here describing

- whether the op needs a live ``Module`` (its kernel reads parameters),
- its *batch-invariance* class (may K fault variants be stacked along
  the batch axis without changing a bit?), and
- its abstract shape rule (per-sample shapes, no batch dimension).

The batch-invariance classification encodes the kernel dispatch rules
of :func:`repro.nn.functional.conv2d` and is the **single source of
truth** for the reference backend: plan capture
(:func:`repro.runtime.plan._batch_invariant`) and the ``"kernel"``-class
entries of :meth:`repro.backends.Backend.batch_invariant` both read
their verdicts from this table, and the verifier's ``P120`` audit
re-checks every recorded flag against it — catching post-capture drift
in fused or hand-built plans rather than divergence between two
hand-maintained copies of the predicate.  The table's claims themselves
are kept honest *empirically*: the op_db conformance suite
(:mod:`repro.check.opdb`) stacks variant batches through every kernel
and fails if a claimed invariance does not hold bit-for-bit.  A kind
with no row here fails ``P121``: new kernels must be vetted before they
can be captured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

if TYPE_CHECKING:
    from repro.runtime.plan import OpSpec

Shape = tuple[int, ...]


class ShapeError(ValueError):
    """Abstract shape propagation cannot execute the op (rule P104)."""


def _conv_out(size: int, kernel: int, stride: int, padding: int) -> int:
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"non-positive conv output extent ({out}) for size={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def _want_rank(shapes: list[Shape], rank: int, kind: str) -> None:
    for shape in shapes:
        if len(shape) != rank:
            raise ShapeError(
                f"{kind} expects rank-{rank} per-sample input, got {shape}"
            )


def _conv_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    _want_rank(shapes, 3, op.kind)
    c, h, w = shapes[0]
    m = op.module
    if m.in_channels != c:
        raise ShapeError(
            f"conv expects {m.in_channels} input channels, got {c}"
        )
    k = m.kernel_size
    expect = (m.out_channels, m.in_channels // m.groups, k, k)
    if tuple(m.weight.data.shape) != expect:
        raise ShapeError(
            f"conv weight shape {tuple(m.weight.data.shape)} != {expect}"
        )
    if op.kind == "conv2d_bn":
        bn = op.params.get("bn")
        if bn is None or bn.num_features != m.out_channels:
            raise ShapeError(
                "fused conv2d_bn needs a bn module matching out_channels "
                f"({m.out_channels})"
            )
    return (
        m.out_channels,
        _conv_out(h, k, m.stride, m.padding),
        _conv_out(w, k, m.stride, m.padding),
    )


def _bn_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    _want_rank(shapes, 3, op.kind)
    c, h, w = shapes[0]
    m = op.module
    if m.num_features != c:
        raise ShapeError(
            f"batchnorm over {m.num_features} features applied to {c} channels"
        )
    for name in ("running_mean", "running_var"):
        if getattr(m, name).shape != (c,):
            raise ShapeError(f"batchnorm {name} shape != ({c},)")
    return (c, h, w)


def _linear_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    _want_rank(shapes, 1, op.kind)
    (f,) = shapes[0]
    m = op.module
    if m.in_features != f:
        raise ShapeError(f"linear expects {m.in_features} features, got {f}")
    if tuple(m.weight.data.shape) != (m.out_features, m.in_features):
        raise ShapeError(
            f"linear weight shape {tuple(m.weight.data.shape)} != "
            f"({m.out_features}, {m.in_features})"
        )
    return (m.out_features,)


def _avg_pool_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    _want_rank(shapes, 3, op.kind)
    c, h, w = shapes[0]
    k = op.module.kernel
    if h % k or w % k:
        raise ShapeError(f"avg_pool2d kernel {k} must divide {h}x{w}")
    return (c, h // k, w // k)


def _same_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    return shapes[0]


def _global_pool_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    _want_rank(shapes, 3, op.kind)
    return (shapes[0][0],)


def _flatten_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    total = 1
    for extent in shapes[0]:
        total *= extent
    return (total,)


def _add_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    if len(shapes) != 2 or shapes[0] != shapes[1]:
        raise ShapeError(f"add expects two equal shapes, got {shapes}")
    return shapes[0]


def _subsample_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    _want_rank(shapes, 3, op.kind)
    c, h, w = shapes[0]
    stride = op.params.get("stride")
    if not isinstance(stride, int) or stride < 1:
        raise ShapeError(f"subsample2d stride must be a positive int, got {stride!r}")
    return (c, -(-h // stride), -(-w // stride))


def _pad_channels_shape(op: OpSpec, shapes: list[Shape]) -> Shape:
    _want_rank(shapes, 3, op.kind)
    c, h, w = shapes[0]
    before, after = op.params.get("before"), op.params.get("after")
    for value in (before, after):
        if not isinstance(value, int) or value < 0:
            raise ShapeError(
                f"pad_channels padding must be non-negative ints, got "
                f"before={before!r} after={after!r}"
            )
    return (c + before + after, h, w)


def _conv_batch_invariant(op: OpSpec) -> bool:
    # Mirrors the dispatch in F.conv2d: pointwise and groups==1 im2col
    # reduce to a per-sample 3-D matmul (batch-stable); depthwise and
    # grouped convs go through einsum(optimize=True), whose contraction
    # order may change with the batch extent.
    m = op.module
    if m.kernel_size == 1 and m.padding == 0 and m.groups == 1:
        return True
    if m.groups == m.in_channels and m.out_channels == m.in_channels:
        return False
    return m.groups == 1


def _never_batch_invariant(op: OpSpec) -> bool:
    return False  # 2-D GEMM: BLAS blocking depends on the batch extent


def _always_batch_invariant(op: OpSpec) -> bool:
    return True  # elementwise / reduction over fixed axes / reshape


@dataclass(frozen=True)
class KernelSpec:
    """Static traits of one op kind."""

    kind: str
    requires_module: bool
    batch_invariant: Callable[[object], bool]
    infer_shape: Callable[[object, list], Shape]


KERNEL_TABLE: dict[str, KernelSpec] = {
    spec.kind: spec
    for spec in (
        KernelSpec("conv2d", True, _conv_batch_invariant, _conv_shape),
        KernelSpec("conv2d_bn", True, _conv_batch_invariant, _conv_shape),
        KernelSpec("batchnorm2d", True, _always_batch_invariant, _bn_shape),
        KernelSpec("linear", True, _never_batch_invariant, _linear_shape),
        KernelSpec("relu", False, _always_batch_invariant, _same_shape),
        KernelSpec("relu6", False, _always_batch_invariant, _same_shape),
        KernelSpec("avg_pool2d", True, _always_batch_invariant, _avg_pool_shape),
        KernelSpec(
            "global_avg_pool2d", False, _always_batch_invariant, _global_pool_shape
        ),
        KernelSpec("flatten", False, _always_batch_invariant, _flatten_shape),
        KernelSpec("add", False, _always_batch_invariant, _add_shape),
        KernelSpec("subsample2d", False, _always_batch_invariant, _subsample_shape),
        KernelSpec(
            "pad_channels", False, _always_batch_invariant, _pad_channels_shape
        ),
    )
}


#: Op kinds carrying an absorption row in :func:`absorption_spec` — the
#: vetting register for the *vectorized* execution mode: rows reaching an
#: op without one can never be certified and fall through to exact
#: execution (rule ``P123``).
ABSORPTION_KINDS = frozenset(
    {
        "conv2d",
        "batchnorm2d",
        "linear",
        "relu",
        "relu6",
        "avg_pool2d",
        "global_avg_pool2d",
        "flatten",
        "add",
        "subsample2d",
        "pad_channels",
    }
)


def absorption_spec(
    op: OpSpec,
    *,
    mean: bool,
    in_positions: int = 1,
    out_positions: int = 1,
    input_rank: int = 3,
) -> tuple[Any, ...] | None:
    """Sound channelwise delta-bound transfer for one op kind.

    This is the vectorized engine's certification calculus, kept here —
    next to the batch-invariance register — as the verifier-owned
    encoding of each kernel's analytic behaviour.  For a per-sample,
    per-channel bound ``b[c]`` on the magnitude of an activation delta,
    the returned spec describes a bound on the op output's delta:

    - ``("id",)``      — ``b`` carries through unchanged (contractions:
      relu/relu6 clip, pooling averages, channel subsampling),
    - ``("scale", s)`` — ``b * s``,
    - ``("diag", v)``  — ``b * v`` channelwise (batchnorm affine),
    - ``("mat", A)``   — ``A @ b`` (conv absorbed over the kernel
      window, linear absorbed over ``|W|``),
    - ``("pad", before, after)`` — channels pass through at an offset,
    - ``None``         — no sound row (the certifier must treat the op
      as absorbing nothing, i.e. an infinite bound).

    Two chains are maintained: with ``mean=False`` the bound is the
    per-channel *max* of ``|delta|`` over spatial positions; with
    ``mean=True`` it is the per-channel *mean*.  The mean chain needs
    the spatial position counts: an op that maps ``in_positions`` input
    positions onto ``out_positions`` output positions concentrates the
    summed delta by at most ``in_positions / out_positions`` (strided
    convs and subsampling), while ``global_avg_pool2d`` maps the mean
    bound straight onto its single output position — which is what makes
    the dual-chain bound sharp after relu gating spikes the max.
    """
    kind = op.kind
    if kind == "conv2d":
        weight = np.abs(op.module.weight.data).sum(axis=(2, 3))
        matrix = weight.astype(np.float64)
        if op.module.groups != 1:
            # Grouped/depthwise kernels: expand the (out_c, in_c/groups)
            # block-diagonal structure to a dense (out_c, in_c) matrix.
            out_c, in_pg = matrix.shape
            in_c = in_pg * op.module.groups
            dense = np.zeros((out_c, in_c), dtype=np.float64)
            out_pg = out_c // op.module.groups
            for g in range(op.module.groups):
                dense[
                    g * out_pg : (g + 1) * out_pg,
                    g * in_pg : (g + 1) * in_pg,
                ] = matrix[g * out_pg : (g + 1) * out_pg]
            matrix = dense
        if mean and out_positions:
            matrix = matrix * (in_positions / out_positions)
        return ("mat", matrix)
    if kind == "batchnorm2d":
        m = op.module
        scale = np.abs(
            m.weight.data / np.sqrt(m.running_var + m.eps)
        ).astype(np.float64)
        return ("diag", scale)
    if kind == "linear":
        return ("mat", np.abs(op.module.weight.data).astype(np.float64))
    if kind == "subsample2d":
        if mean and out_positions:
            return ("scale", in_positions / out_positions)
        return ("id",)
    if kind == "flatten":
        # Only the trivial rank-1 flatten (post-GAP) preserves the
        # per-channel bound; flattening spatial extents would need a
        # channel-grouped expansion nothing in the zoo requires.
        return ("id",) if input_rank <= 1 else None
    if kind in ("relu", "relu6", "avg_pool2d", "global_avg_pool2d", "add"):
        return ("id",)
    if kind == "pad_channels":
        return ("pad", op.params["before"], op.params["after"])
    return None


def param_dtype_issues(op: OpSpec) -> list[str]:
    """Non-float32 parameter arrays reachable by *op*'s kernel (P105)."""
    issues: list[str] = []
    modules = [op.module] if op.module is not None else []
    bn = op.params.get("bn")
    if bn is not None:
        modules.append(bn)
    for module in modules:
        for name in ("weight", "bias"):
            param = getattr(module, name, None)
            if param is not None and param.data.dtype != np.float32:
                issues.append(f"{type(module).__name__}.{name} is {param.data.dtype}")
        for name in ("running_mean", "running_var"):
            buf = getattr(module, name, None)
            if buf is not None and buf.dtype != np.float32:
                issues.append(f"{type(module).__name__}.{name} is {buf.dtype}")
    return issues
