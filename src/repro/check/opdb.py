"""op_db: per-op sample-input generators for kernel conformance.

The registry pairs every plan op kind (plus the ``gemm``/``im2col``
primitives the engines call directly) with deterministic sample
generators sweeping the axes that historically break kernels: layer
shapes across the dispatch paths (pointwise / padded 3x3 / strided /
depthwise / grouped convolutions), degenerate single-channel tensors,
denormal-heavy inputs (where flushed-to-zero arithmetic diverges), and
non-contiguous views (where layout-sensitive kernels misread strides).

:func:`repro.check.conformance.run_op_conformance` drives three checks
over every (kind, sample, backend) triple:

1. **cross-backend agreement** — the backend's output against the numpy
   reference, judged by the backend's *declared* tolerance class;
2. **batch-invariance falsification** — a claimed-invariant kernel must
   produce bitwise-equal rows whether samples run stacked or separately
   (``"never"`` claims are unfalsifiable and skipped — claiming
   non-invariance is always safe, it only costs chunked execution);
3. **plan-vs-module equivalence** — the reference backend's op-level
   kernel against the owning module's ``forward_fast``, bitwise.

Every kind in ``OP_KINDS`` and ``FUSED_OP_KINDS`` must have at least one
sample here — registry-completeness is asserted by tier-1 tests, so a
new op kind cannot land without a kernel-table row, a backend kernel,
*and* an op_db generator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.check.kernels import KERNEL_TABLE
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    ReLU6,
)
from repro.runtime.plan import OpSpec

#: float32 denormal scale: |values| land well below ~1.18e-38.
_DENORMAL_SCALE = np.float32(1e-41)


@dataclass
class BuiltSample:
    """One concrete op instance plus the arrays to feed it.

    ``op`` is None for the ``gemm``/``im2col`` primitives, which the
    runner calls through the backend's array-level methods with
    ``inputs`` (+ ``args``) directly.  ``module``, when set, is the
    live module whose ``forward_fast`` the reference output must match
    bitwise; it is deliberately absent for ``conv2d_bn`` (the fold is
    numeric-changing versus conv-then-bn by design).
    """

    kind: str
    op: OpSpec | None
    inputs: list[np.ndarray]
    args: tuple = ()
    module: object | None = None


@dataclass(frozen=True)
class OpSample:
    """A named, deterministic sample generator for one op kind."""

    kind: str
    name: str
    build: Callable[[np.random.Generator], BuiltSample] = field(repr=False)


def _tensor(
    rng: np.random.Generator,
    shape: tuple[int, ...],
    *,
    denormal: bool = False,
    noncontig: bool = False,
) -> np.ndarray:
    """A float32 sample tensor; optionally denormal-heavy or strided."""
    if noncontig:
        wide = rng.standard_normal(
            shape[:-1] + (2 * shape[-1],)
        ).astype(np.float32)
        x = wide[..., ::2]
    else:
        x = rng.standard_normal(shape).astype(np.float32)
    if denormal:
        # Half the elements become denormals, half stay normal — the mix
        # is what exposes flush-to-zero differences mid-reduction.
        mask = rng.random(x.shape) < 0.5
        x = np.where(mask, x * _DENORMAL_SCALE, x).astype(np.float32)
    return x


def _op(kind: str, *, module: Any = None, nin: int = 1, **params: Any) -> OpSpec:
    """A standalone OpSpec with the table-derived invariance flag."""
    op = OpSpec(
        index=0,
        kind=kind,
        inputs=tuple(range(nin)),
        output=nin,
        module=module,
        params=params,
    )
    op.batch_invariant = bool(KERNEL_TABLE[kind].batch_invariant(op))
    return op


def _randomized_bn(rng: np.random.Generator, features: int) -> BatchNorm2d:
    """BN with non-trivial affine + running statistics."""
    bn = BatchNorm2d(features)
    bn.weight.data[:] = rng.uniform(0.5, 1.5, features).astype(np.float32)
    bn.bias.data[:] = rng.standard_normal(features).astype(np.float32)
    bn.running_mean[:] = rng.standard_normal(features).astype(np.float32)
    bn.running_var[:] = rng.uniform(0.2, 2.0, features).astype(np.float32)
    return bn


def _conv_sample(
    name: str,
    in_channels: int,
    out_channels: int,
    kernel: int,
    input_hw: int,
    *,
    stride: int = 1,
    padding: int = 0,
    groups: int = 1,
    bias: bool = False,
    batch: int = 2,
    denormal: bool = False,
    noncontig: bool = False,
) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        conv = Conv2d(
            in_channels,
            out_channels,
            kernel,
            stride=stride,
            padding=padding,
            groups=groups,
            bias=bias,
            rng=rng,
        )
        x = _tensor(
            rng,
            (batch, in_channels, input_hw, input_hw),
            denormal=denormal,
            noncontig=noncontig,
        )
        return BuiltSample(
            kind="conv2d", op=_op("conv2d", module=conv), inputs=[x],
            module=conv,
        )

    return OpSample("conv2d", name, build)


def _conv_bn_sample(name: str, **conv_kwargs: Any) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        conv = Conv2d(4, 6, 3, padding=1, rng=rng, **conv_kwargs)
        bn = _randomized_bn(rng, 6)
        x = _tensor(rng, (2, 4, 8, 8))
        return BuiltSample(
            kind="conv2d_bn",
            op=_op("conv2d_bn", module=conv, bn=bn),
            inputs=[x],
        )

    return OpSample("conv2d_bn", name, build)


def _bn_sample(
    name: str, features: int, hw: int, *, denormal: bool = False
) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        bn = _randomized_bn(rng, features)
        x = _tensor(rng, (2, features, hw, hw), denormal=denormal)
        return BuiltSample(
            kind="batchnorm2d", op=_op("batchnorm2d", module=bn), inputs=[x],
            module=bn,
        )

    return OpSample("batchnorm2d", name, build)


def _linear_sample(
    name: str, in_features: int, out_features: int, *,
    bias: bool = True, denormal: bool = False, batch: int = 4,
) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        lin = Linear(in_features, out_features, bias=bias, rng=rng)
        if bias:
            lin.bias.data[:] = rng.standard_normal(out_features).astype(
                np.float32
            )
        x = _tensor(rng, (batch, in_features), denormal=denormal)
        return BuiltSample(
            kind="linear", op=_op("linear", module=lin), inputs=[x],
            module=lin,
        )

    return OpSample("linear", name, build)


def _unary_sample(
    kind: str,
    name: str,
    shape: tuple[int, ...],
    module_factory: Callable[[], Any] | None = None,
    *,
    denormal: bool = False,
    noncontig: bool = False,
    **params: Any,
) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        module = module_factory() if module_factory is not None else None
        x = _tensor(rng, shape, denormal=denormal, noncontig=noncontig)
        return BuiltSample(
            kind=kind, op=_op(kind, module=module, **params), inputs=[x],
            module=module,
        )

    return OpSample(kind, name, build)


def _add_sample(
    name: str, shape: tuple[int, ...], *, denormal: bool = False
) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        a = _tensor(rng, shape, denormal=denormal)
        b = _tensor(rng, shape, denormal=denormal)
        return BuiltSample(kind="add", op=_op("add", nin=2), inputs=[a, b])

    return OpSample("add", name, build)


def _gemm_sample(
    name: str, a_shape: tuple[int, ...], b_shape: tuple[int, ...], *,
    denormal: bool = False,
) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        a = _tensor(rng, a_shape, denormal=denormal)
        b = _tensor(rng, b_shape, denormal=denormal)
        return BuiltSample(kind="gemm", op=None, inputs=[a, b])

    return OpSample("gemm", name, build)


def _im2col_sample(
    name: str,
    shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    *,
    noncontig: bool = False,
) -> OpSample:
    def build(rng: np.random.Generator) -> BuiltSample:
        x = _tensor(rng, shape, noncontig=noncontig)
        return BuiltSample(
            kind="im2col",
            op=None,
            inputs=[x],
            args=(kernel, kernel, stride, padding),
        )

    return OpSample("im2col", name, build)


#: The registry: every op kind (and engine primitive) → its samples.
OP_SAMPLES: dict[str, tuple[OpSample, ...]] = {
    "conv2d": (
        _conv_sample("pointwise", 8, 4, 1, 6),
        _conv_sample("k3_pad1_bias", 3, 5, 3, 8, padding=1, bias=True),
        _conv_sample("k3_stride2", 4, 6, 3, 9, stride=2, padding=1),
        _conv_sample("depthwise", 6, 6, 3, 8, padding=1, groups=6),
        _conv_sample("grouped", 8, 8, 3, 8, padding=1, groups=2),
        _conv_sample("degenerate_c1", 1, 2, 3, 8, padding=1, batch=1),
        _conv_sample("denormal_heavy", 3, 4, 3, 8, padding=1, denormal=True),
        _conv_sample("noncontig_input", 3, 4, 3, 8, padding=1, noncontig=True),
    ),
    "conv2d_bn": (_conv_bn_sample("k3_pad1_fold"),),
    "batchnorm2d": (
        _bn_sample("standard", 5, 7),
        _bn_sample("degenerate_c1", 1, 8),
        _bn_sample("denormal_heavy", 4, 6, denormal=True),
    ),
    "linear": (
        _linear_sample("with_bias", 32, 10),
        _linear_sample("no_bias_batch1", 16, 4, bias=False, batch=1),
        _linear_sample("denormal_heavy", 24, 6, denormal=True),
    ),
    "relu": (
        _unary_sample("relu", "standard", (2, 4, 6, 6), ReLU),
        _unary_sample("relu", "denormal_heavy", (2, 3, 5, 5), ReLU,
                      denormal=True),
        _unary_sample("relu", "noncontig", (2, 3, 6, 6), ReLU,
                      noncontig=True),
    ),
    "relu6": (
        _unary_sample("relu6", "standard", (2, 4, 6, 6), ReLU6),
        _unary_sample("relu6", "denormal_heavy", (2, 3, 5, 5), ReLU6,
                      denormal=True),
    ),
    "avg_pool2d": (
        _unary_sample(
            "avg_pool2d", "k2", (2, 3, 8, 8), lambda: AvgPool2d(2)
        ),
        _unary_sample(
            "avg_pool2d", "k4_denormal", (2, 2, 8, 8), lambda: AvgPool2d(4),
            denormal=True,
        ),
    ),
    "global_avg_pool2d": (
        _unary_sample("global_avg_pool2d", "standard", (2, 5, 7, 7),
                      GlobalAvgPool2d),
        _unary_sample(
            "global_avg_pool2d", "denormal_heavy", (2, 4, 6, 6),
            GlobalAvgPool2d, denormal=True,
        ),
    ),
    "flatten": (
        _unary_sample("flatten", "rank4", (2, 3, 4, 4), Flatten),
        _unary_sample("flatten", "noncontig", (2, 3, 4, 4), Flatten,
                      noncontig=True),
    ),
    "add": (
        _add_sample("standard", (2, 4, 6, 6)),
        _add_sample("denormal_heavy", (2, 3, 5, 5), denormal=True),
    ),
    "subsample2d": (
        _unary_sample("subsample2d", "stride2", (2, 3, 9, 9), stride=2),
        _unary_sample("subsample2d", "stride3", (2, 2, 10, 10), stride=3),
    ),
    "pad_channels": (
        _unary_sample("pad_channels", "before1_after2", (2, 3, 5, 5),
                      before=1, after=2),
        _unary_sample("pad_channels", "after_only", (2, 2, 4, 4),
                      before=0, after=3),
    ),
    "gemm": (
        _gemm_sample("matrix_2d", (8, 16), (16, 5)),
        _gemm_sample("batched_3d", (2, 5, 7), (2, 7, 3)),
        _gemm_sample("denormal_heavy", (6, 12), (12, 4), denormal=True),
    ),
    "im2col": (
        _im2col_sample("k3_pad1", (2, 3, 8, 8), 3, 1, 1),
        _im2col_sample("k3_stride2", (2, 4, 9, 9), 3, 2, 1),
        _im2col_sample("k1", (2, 3, 6, 6), 1, 1, 0),
        _im2col_sample("noncontig", (2, 3, 8, 8), 3, 1, 1, noncontig=True),
    ),
}


def opdb_kinds() -> frozenset:
    """All kinds with at least one registered sample."""
    return frozenset(OP_SAMPLES)


def samples_for(kind: str) -> tuple[OpSample, ...]:
    """Registered samples for *kind* (empty tuple when none)."""
    return OP_SAMPLES.get(kind, ())
