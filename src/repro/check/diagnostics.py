"""Diagnostic records shared by the static verification passes.

Every finding carries a stable rule id (``P1xx`` for plan rules,
``D2xx`` for determinism-lint rules, ``Q3xx`` for queue-protocol rules)
so tests can assert on the *class* of a rejection and CI baselines can
match findings across line-number churn.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Plan-verifier rules.  Errors make :func:`repro.check.check_plan`
#: raise; warnings are surfaced by ``repro-check plan`` (and fail the
#: run only under ``--strict``).
PLAN_RULES: dict[str, str] = {
    "P101": "unknown op kind (or a fused kind appearing in an unfused plan)",
    "P102": "SSA discipline violated: duplicate slot assignment, output "
    "aliasing an input, out-of-range output slot, or bad op indexing",
    "P103": "read-before-write: an op consumes a slot no earlier op defined",
    "P104": "shape-infeasible: abstract shape propagation cannot execute "
    "the op (rank/extent/parameter mismatch)",
    "P105": "bad parameter dtype: op parameters must be float32",
    "P106": "output-slot contract violated: the plan output is undefined "
    "or not the last op's result",
    "P110": "affected_ops unsound: a transitively dependent op is missing "
    "(stale golden cache would be served) or the set is out of order",
    "P111": "affected_ops over-approximates: an independent op would be "
    "recomputed (correct but wasted work)",
    "P112": "cache-unsafe dataflow: an op's output cannot reach the plan "
    "output (a faulted module op would silently have no effect)",
    "P120": "batch_invariant flag disagrees with the static kernel "
    "classification table",
    "P121": "op kind is not classified in the kernel table (new kernels "
    "must be vetted for batch invariance before capture)",
    "P122": "vectorized mode requires an unfused plan: fused numerics "
    "carry no absorption certificates and break the exact-twin "
    "fingerprint compatibility claim",
    "P123": "no absorption row for this op: the vectorized certifier "
    "cannot bound fault propagation through it, so rows reaching it "
    "never certify (exact fallback, correct but no speedup)",
}

#: Queue-protocol rules (see :mod:`repro.check.protocol`).  Q301–Q306
#: come from the static filesystem-effect pass over the real
#: ``repro.dist`` source; Q310–Q314 from the crash-interleaving model
#: checker's safety invariants.
PROTOCOL_RULES: dict[str, str] = {
    "Q301": "declared protocol method missing from the source (the "
    "effect spec in repro.dist.effects no longer matches the code)",
    "Q302": "undeclared filesystem effect: a protocol method performs a "
    "write/rename/unlink the declared effect sequence does not allow "
    "(includes any direct effect in repro.dist.rebalance, which must "
    "act only through the ShardQueue API)",
    "Q303": "declared effect missing: a non-optional step of the "
    "protocol (e.g. the cleanup unlink after a commit) was dropped",
    "Q304": "effect order violation: an effect moved past its declared "
    "position (e.g. a rename or result write reordered across the "
    "campaign.json commit point)",
    "Q305": "non-atomic write primitive in a protocol module (open('w'), "
    "write_text, ...) — crash safety requires repro.store atomic "
    "helpers",
    "Q306": "unresolvable path role: a protocol method touches a path "
    "the effect extractor cannot classify, so its crash safety cannot "
    "be checked",
    "Q310": "shard lost: an explored schedule + crash point leaves a "
    "campaign shard (or one of its units) unrecoverable by "
    "recover_splits/release_expired",
    "Q311": "duplicate consumption: two done results feed the same unit "
    "into the merge (overlapping split partition or double-merged "
    "shard)",
    "Q312": "unrecoverable residue: recovery leaves a .splitting or "
    "leased spec behind, or the recovery drain fails to quiesce",
    "Q313": "split replay nondeterminism: the recorded split does not "
    "re-derive the campaign's shard list (resume/recovery would "
    "rebuild a different campaign)",
    "Q314": "schedule-dependent merge: the canonical merged table "
    "differs between two explored schedules (execution history leaks "
    "into results)",
}

#: Determinism-linter rules (see :mod:`repro.check.lint`).
LINT_RULES: dict[str, str] = {
    "D201": "unseeded RNG: np.random.* legacy calls, default_rng() with "
    "no seed, or stdlib random — campaign results must derive from "
    "SeedSequence plumbing",
    "D202": "set/frozenset iteration in ordered context: iteration order "
    "is undefined and may flow into serialized output",
    "D203": "wall clock reaches serialized output: time.time()/"
    "datetime.now() in a function that also writes fingerprints, "
    "hashes, or artifacts",
    "D204": "file write bypasses repro.store atomic helpers (torn files "
    "on crash; no fsync+rename discipline)",
    "D205": "json.dump(s) without sort_keys=True: dict ordering leaks "
    "into serialized/hashed bytes",
    "D206": "unsorted directory listing iterated in ordered context: "
    "glob/iterdir/listdir order is filesystem-dependent",
}


@dataclass(frozen=True)
class Diagnostic:
    """One plan-verifier finding."""

    rule: str
    severity: str  # "error" | "warning"
    message: str
    op_index: int | None = None

    def __str__(self) -> str:
        where = "" if self.op_index is None else f" op {self.op_index}:"
        return f"{self.rule} [{self.severity}]{where} {self.message}"


class PlanVerificationError(ValueError):
    """Raised by :func:`repro.check.check_plan` when a plan has errors."""

    def __init__(self, diagnostics: list[Diagnostic]) -> None:
        self.diagnostics = list(diagnostics)
        errors = [d for d in self.diagnostics if d.severity == "error"]
        lines = "\n".join(f"  {d}" for d in errors)
        super().__init__(
            f"execution plan failed verification ({len(errors)} error(s)):\n"
            f"{lines}"
        )

    @property
    def rules(self) -> set[str]:
        return {d.rule for d in self.diagnostics if d.severity == "error"}
