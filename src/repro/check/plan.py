"""Static verification of captured execution plans.

:func:`verify_plan` abstractly interprets an
:class:`~repro.runtime.plan.ExecutionPlan` without running any data:
per-sample shapes and dtypes are propagated through every op via the
central :data:`~repro.check.kernels.KERNEL_TABLE`, SSA discipline on
buffer slots is checked, each op's ``affected_ops`` dirty set is proved
sound against an independently recomputed dataflow closure (an unsound
set would silently serve stale golden prefix cache), and every
``batch_invariant`` flag is audited against the kernel table.

:func:`check_plan` is the trust-boundary wrapper: it raises
:class:`~repro.check.diagnostics.PlanVerificationError` on any error
and registers the plan's structural fingerprint as verified so that
distributed merges can refuse shards produced from unverified plans.
"""

from __future__ import annotations

import hashlib
import json

from repro.check.diagnostics import Diagnostic, PlanVerificationError
from repro.check.kernels import (
    ABSORPTION_KINDS,
    KERNEL_TABLE,
    ShapeError,
    absorption_spec,
    param_dtype_issues,
)
from repro.nn.module import Module
from repro.runtime.plan import FUSED_OP_KINDS, OP_KINDS, ExecutionPlan

#: Default abstract input: one CIFAR sample (all zoo models take 32x32x3).
DEFAULT_INPUT_SHAPE = (3, 32, 32)

#: Structural fingerprints of plans that passed :func:`check_plan` in
#: this process (fork-based dist workers inherit the parent's entries).
_VERIFIED_FINGERPRINTS: set[str] = set()

#: Pairs of fingerprints attested to classify every fault identically.
#: Campaign artifacts produced under distinct fingerprints are refused
#: by checkpoints, workers and merges *unless* a verification pass
#: declared the pair compatible (e.g. :func:`check_plan_vectorized`
#: proving the vectorized mode bit-identical to the exact plan).
_COMPATIBLE_FINGERPRINTS: dict[str, set[str]] = {}


def mark_plan_verified(fingerprint: str) -> None:
    _VERIFIED_FINGERPRINTS.add(fingerprint)


def is_plan_verified(fingerprint: str) -> bool:
    return fingerprint in _VERIFIED_FINGERPRINTS


def declare_fingerprints_compatible(a: str, b: str) -> None:
    """Record that artifacts under *a* and *b* may be mixed.

    Only verification passes should call this: a declaration asserts the
    two execution identities produce bit-identical outcomes for every
    fault, which is exactly what distributed merges rely on when they
    accept a shard attesting a different (but declared) fingerprint.
    """
    _COMPATIBLE_FINGERPRINTS.setdefault(a, set()).add(b)
    _COMPATIBLE_FINGERPRINTS.setdefault(b, set()).add(a)


def fingerprints_compatible(a: str, b: str) -> bool:
    """Whether *a* and *b* are identical or declared compatible."""
    return a == b or b in _COMPATIBLE_FINGERPRINTS.get(a, ())


def compatible_fingerprints(fingerprint: str) -> tuple[str, ...]:
    """Sorted fingerprints declared compatible with *fingerprint*.

    The registry is process-local, so a worker records this set in each
    shard result it completes: a standalone merge process (which never
    built either plan, hence holds an empty registry) accepts the shard
    against any campaign fingerprint the worker's own verification pass
    attested compatible at run time.
    """
    return tuple(sorted(_COMPATIBLE_FINGERPRINTS.get(fingerprint, ())))


def _module_signature(module: Module | None) -> list:
    if module is None:
        return []
    parts = []
    for name in ("weight", "bias"):
        param = getattr(module, name, None)
        if param is not None:
            parts.append([name, list(param.data.shape), str(param.data.dtype)])
    for name in ("kernel_size", "stride", "padding", "groups", "num_features",
                 "in_features", "out_features", "kernel", "eps"):
        value = getattr(module, name, None)
        if isinstance(value, (int, float)):
            parts.append([name, value])
    return [type(module).__name__, parts]


def _params_signature(params: dict) -> list:
    out = []
    for key in sorted(params):
        value = params[key]
        if isinstance(value, Module):
            out.append([key, _module_signature(value)])
        else:
            out.append([key, repr(value)])
    return out


def plan_fingerprint(
    plan: ExecutionPlan, *, mode: str = "exact", backend: str | None = None
) -> str:
    """Structural sha256 of *plan* (ops, slots, flags — not weight values).

    Weight *values* are covered by the engine fingerprint; this one pins
    the dataflow structure the verifier reasoned about, so a shard's
    attestation refers to exactly the verified graph.  *mode* qualifies
    the execution strategy the fingerprint attests: ``"exact"`` (the
    default, hash-stable with earlier releases) or ``"vectorized"`` —
    the variant-axis certified mode runs the same plan under a distinct
    fingerprint, exactly as fusions already do.

    The kernel backend qualifies the fingerprint the same way: a
    non-reference backend's attestation (name, version, per-op
    invariance + tolerance classes — see
    :meth:`repro.backends.Backend.attestation`) is folded into the
    payload, so shards computed under different backends can never
    silently merge.  Reference-backend plans hash exactly as before.
    *backend* defaults to the plan's own ``backend`` attribute.
    """
    if backend is None:
        backend = getattr(plan, "backend", None)
    payload = {
        "num_slots": plan.num_slots,
        "input_slot": plan.input_slot,
        "output_slot": plan.output_slot,
        "fusions": list(plan.fusions),
        "ops": [
            [
                op.kind,
                list(op.inputs),
                op.output,
                bool(op.batch_invariant),
                _params_signature(op.params),
                _module_signature(op.module),
            ]
            for op in plan.ops
        ],
    }
    if mode != "exact":
        payload["mode"] = mode
    if backend is not None and not backend.is_reference:
        payload["backend"] = backend.attestation()
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _true_affected(plan: ExecutionPlan, op_index: int) -> tuple[int, ...]:
    """Independent dataflow closure (mirrors the engine's cache contract)."""
    dirty = {plan.ops[op_index].output}
    affected = []
    for op in plan.ops[op_index + 1 :]:
        if any(slot in dirty for slot in op.inputs):
            affected.append(op.index)
            dirty.add(op.output)
    return tuple(affected)


def verify_plan(
    plan: ExecutionPlan, *, input_shape: tuple[int, ...] = DEFAULT_INPUT_SHAPE
) -> list[Diagnostic]:
    """All diagnostics for *plan*; empty list means fully clean."""
    diags: list[Diagnostic] = []

    def err(rule: str, msg: str, i: int | None = None) -> None:
        diags.append(Diagnostic(rule, "error", msg, i))

    def warn(rule: str, msg: str, i: int | None = None) -> None:
        diags.append(Diagnostic(rule, "warning", msg, i))

    if not plan.ops:
        err("P106", "plan has no ops")
        return diags
    if not 0 <= plan.input_slot < plan.num_slots:
        err("P103", f"input slot {plan.input_slot} out of range")
        return diags

    known_kinds = OP_KINDS | (FUSED_OP_KINDS if plan.fusions else frozenset())
    defined: dict[int, int] = {plan.input_slot: -1}  # slot -> producing op
    shapes: dict[int, tuple[int, ...] | None] = {plan.input_slot: tuple(input_shape)}
    structural_errors = False

    for position, op in enumerate(plan.ops):
        if op.index != position:
            err("P102", f"op.index {op.index} != position {position}", position)
            structural_errors = True
        if op.kind not in known_kinds:
            if op.kind in FUSED_OP_KINDS:
                err(
                    "P101",
                    f"fused kind {op.kind!r} in a plan with no declared fusions",
                    op.index,
                )
            else:
                err("P101", f"unknown op kind {op.kind!r}", op.index)
            structural_errors = True

        for slot in op.inputs:
            if not 0 <= slot < plan.num_slots:
                err("P103", f"reads out-of-range slot {slot}", op.index)
                structural_errors = True
            elif slot not in defined:
                err("P103", f"reads slot {slot} before any op defines it", op.index)
                structural_errors = True
        if not 0 <= op.output < plan.num_slots:
            err("P102", f"writes out-of-range slot {op.output}", op.index)
            structural_errors = True
        elif op.output in defined:
            owner = defined[op.output]
            what = "the network input" if owner < 0 else f"op {owner}'s output"
            err(
                "P102",
                f"output slot {op.output} aliases {what} "
                "(plans are single-assignment)",
                op.index,
            )
            structural_errors = True
        else:
            defined[op.output] = op.index

        spec = KERNEL_TABLE.get(op.kind)
        if spec is None:
            if op.kind in known_kinds:
                err(
                    "P121",
                    f"kind {op.kind!r} has no row in the kernel "
                    "classification table",
                    op.index,
                )
            shapes[op.output] = None
            continue
        if spec.requires_module and op.module is None:
            err("P104", f"{op.kind} op has no module to read parameters from",
                op.index)
            shapes[op.output] = None
            continue

        for issue in param_dtype_issues(op):
            err("P105", issue, op.index)

        in_shapes = [shapes.get(slot) for slot in op.inputs]
        if any(shape is None for shape in in_shapes) or len(in_shapes) == 0:
            shapes[op.output] = None
            continue
        try:
            shapes[op.output] = spec.infer_shape(op, in_shapes)
        except ShapeError as exc:
            err("P104", str(exc), op.index)
            shapes[op.output] = None
            continue

        expected_flag = spec.batch_invariant(op)
        if bool(op.batch_invariant) != expected_flag:
            err(
                "P120",
                f"{op.kind} is marked batch_invariant={bool(op.batch_invariant)} "
                f"but the kernel table classifies it as {expected_flag}",
                op.index,
            )

    if plan.output_slot not in defined or defined[plan.output_slot] < 0:
        err("P106", f"output slot {plan.output_slot} is never written")
    elif defined[plan.output_slot] != plan.ops[-1].index:
        warn(
            "P106",
            f"output slot {plan.output_slot} is written by op "
            f"{defined[plan.output_slot]}, not the final op",
        )

    if structural_errors:
        # Dataflow is ill-defined; reachability/affected proofs would
        # only produce cascading noise.
        return diags

    # -- cache safety: every op's output must reach the plan output ------
    producer = {op.output: op.index for op in plan.ops}
    reach: set[int] = set()
    stack = [defined[plan.output_slot]] if defined.get(plan.output_slot, -1) >= 0 else []
    while stack:
        index = stack.pop()
        if index in reach:
            continue
        reach.add(index)
        for slot in plan.ops[index].inputs:
            parent = producer.get(slot)
            if parent is not None and parent not in reach:
                stack.append(parent)
    for op in plan.ops:
        if op.index in reach:
            continue
        if op.module is not None:
            err(
                "P112",
                f"{op.kind} op's output cannot reach the plan output — "
                "faults injected into its parameters would be invisible",
                op.index,
            )
        else:
            warn("P112", f"dead {op.kind} op never reaches the plan output",
                 op.index)

    # -- affected_ops soundness (the golden prefix-cache contract) -------
    for op in plan.ops:
        true_set = _true_affected(plan, op.index)
        reported = plan.affected_ops(op.index)
        if list(reported) != sorted(set(reported)) or any(
            not (op.index < r < len(plan.ops)) for r in reported
        ):
            err(
                "P110",
                f"affected_ops({op.index}) = {reported} is not a strictly "
                "increasing sequence of downstream op indices",
                op.index,
            )
            continue
        missing = sorted(set(true_set) - set(reported))
        if missing:
            err(
                "P110",
                f"affected_ops({op.index}) omits dependent op(s) {missing} — "
                "their stale golden activations would be served from cache",
                op.index,
            )
        extra = sorted(set(reported) - set(true_set))
        if extra:
            warn(
                "P111",
                f"affected_ops({op.index}) over-approximates: op(s) {extra} "
                f"do not depend on op {op.index} and would be recomputed "
                "needlessly",
                op.index,
            )
    return diags


def check_plan(
    plan: ExecutionPlan, *, input_shape: tuple[int, ...] = DEFAULT_INPUT_SHAPE
) -> str:
    """Verify *plan*; raise on errors, else register + return its fingerprint."""
    diagnostics = verify_plan(plan, input_shape=input_shape)
    if any(d.severity == "error" for d in diagnostics):
        raise PlanVerificationError(diagnostics)
    fingerprint = plan_fingerprint(plan)
    mark_plan_verified(fingerprint)
    return fingerprint


def _abstract_shapes(
    plan: ExecutionPlan, input_shape: tuple[int, ...]
) -> dict[int, tuple[int, ...] | None]:
    """Per-slot abstract shapes (best-effort; None where unknown)."""
    shapes: dict[int, tuple[int, ...] | None] = {
        plan.input_slot: tuple(input_shape)
    }
    for op in plan.ops:
        spec = KERNEL_TABLE.get(op.kind)
        in_shapes = [shapes.get(slot) for slot in op.inputs]
        if spec is None or not in_shapes or any(s is None for s in in_shapes):
            shapes[op.output] = None
            continue
        try:
            shapes[op.output] = spec.infer_shape(op, in_shapes)
        except ShapeError:
            shapes[op.output] = None
    return shapes


def verify_plan_vectorized(
    plan: ExecutionPlan, *, input_shape: tuple[int, ...] = DEFAULT_INPUT_SHAPE
) -> list[Diagnostic]:
    """Diagnostics for running *plan* under the vectorized mode.

    On top of every exact-mode check, the vectorized certifier needs (a)
    an unfused plan — its no-flip certificates and the bit-identity
    declaration are stated against exact numerics (``P122``) — and (b)
    an absorption row for every op so fault-propagation bounds exist;
    ops without one only disable certification beyond them (``P123``,
    warning: correct but no speedup).
    """
    diags = verify_plan(plan, input_shape=input_shape)
    if plan.fusions:
        diags.append(
            Diagnostic(
                "P122",
                "error",
                f"plan declares fusions {list(plan.fusions)}; vectorized "
                "certification is only sound against the exact unfused "
                "numerics",
            )
        )
    shapes = _abstract_shapes(plan, input_shape)
    for op in plan.ops:
        in_shape = shapes.get(op.inputs[0]) if op.inputs else None
        rank = len(in_shape) if in_shape is not None else 3
        if absorption_spec(op, mean=False, input_rank=rank) is None:
            diags.append(
                Diagnostic(
                    "P123",
                    "warning",
                    f"{op.kind} has no absorption row"
                    + (
                        f" for rank-{rank} input"
                        if op.kind in ABSORPTION_KINDS
                        else ""
                    )
                    + "; rows reaching it never certify",
                    op.index,
                )
            )
    return diags


def check_plan_vectorized(
    plan: ExecutionPlan, *, input_shape: tuple[int, ...] = DEFAULT_INPUT_SHAPE
) -> str:
    """Verify *plan* for vectorized execution; return its mode fingerprint.

    Raises on errors.  On success the vectorized fingerprint is
    registered as verified **and declared compatible with the exact
    fingerprint of the same plan**: certified rows provably keep the
    golden prediction and surviving rows run through the same
    bit-stable kernels (non-batch-invariant ops at full batch), so the
    two modes classify every fault identically — which is what lets
    checkpoints and distributed merges mix their artifacts.
    """
    diagnostics = verify_plan_vectorized(plan, input_shape=input_shape)
    if any(d.severity == "error" for d in diagnostics):
        raise PlanVerificationError(diagnostics)
    exact = plan_fingerprint(plan)
    fingerprint = plan_fingerprint(plan, mode="vectorized")
    mark_plan_verified(exact)
    mark_plan_verified(fingerprint)
    declare_fingerprints_compatible(fingerprint, exact)
    return fingerprint
