"""Abstract filesystem model with POSIX atomic-effect semantics.

The real queue (:mod:`repro.dist.queue`) only ever mutates disk state
through four primitives, each of which is atomic on POSIX:

- ``os.rename``/``os.replace`` within one directory — atomic, replaces
  an existing target, fails (``OSError``) when the source is gone;
- :func:`repro.store.atomic_write_bytes` and friends — temp + fsync +
  rename, so a file either appears whole or not at all;
- :func:`repro.store.atomic_append_line` — one ``O_APPEND`` write
  syscall, so a completed append is never torn;
- ``unlink`` — atomic removal, idempotent in the protocol (every call
  site swallows ``OSError``).

The model therefore needs no partial-file states: a crash between two
effects leaves exactly the prefix of effects applied, which is what the
checker's crash injection exploits.  Paths are plain strings relative to
the queue root (``"pending/s0"``), contents are hashable tuples, and a
whole filesystem freezes into a canonical key for state-space
memoisation.
"""

from __future__ import annotations

from typing import Iterator

#: Model file content: any hashable tuple, by convention tagged with a
#: leading kind string (``("spec", ...)``, ``("lease", ...)``, ...).
Content = tuple
#: Canonical, hashable snapshot of a whole model filesystem.
FrozenFS = frozenset[tuple[str, Content]]


class ModelFS:
    """A dict-backed filesystem where every mutation is one atomic step."""

    __slots__ = ("files",)

    def __init__(self, files: dict[str, Content] | None = None) -> None:
        self.files: dict[str, Content] = dict(files or {})

    # -- atomic effects ----------------------------------------------------

    def write(self, path: str, content: Content) -> None:
        """Atomic create-or-replace (temp + fsync + rename collapses)."""
        self.files[path] = content

    def append(self, path: str, line: Content) -> None:
        """O_APPEND append: the file accumulates a tuple of lines."""
        existing = self.files.get(path, ("log",))
        self.files[path] = existing + (line,)

    def rename(self, src: str, dst: str) -> bool:
        """Atomic rename; ``False`` mirrors the swallowed ``OSError``."""
        if src not in self.files:
            return False
        self.files[dst] = self.files.pop(src)
        return True

    def unlink(self, path: str) -> bool:
        """Atomic removal; ``False`` mirrors the swallowed ``OSError``."""
        return self.files.pop(path, None) is not None

    # -- reads (free: no effect boundary) ----------------------------------

    def read(self, path: str) -> Content | None:
        return self.files.get(path)

    def exists(self, path: str) -> bool:
        return path in self.files

    def sorted_under(self, prefix: str) -> list[str]:
        """Paths under *prefix*, sorted (the protocol always sorts globs)."""
        return sorted(p for p in self.files if p.startswith(prefix))

    def iter_items(self) -> Iterator[tuple[str, Content]]:
        return iter(sorted(self.files.items()))

    # -- snapshots ---------------------------------------------------------

    def clone(self) -> "ModelFS":
        return ModelFS(self.files)

    def freeze(self) -> FrozenFS:
        return frozenset(self.files.items())

    @classmethod
    def thaw(cls, frozen: FrozenFS) -> "ModelFS":
        return cls(dict(frozen))

    def __repr__(self) -> str:
        return f"ModelFS({len(self.files)} files)"
