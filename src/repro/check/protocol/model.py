"""The distributed queue protocol as an abstract, steppable model.

Each :class:`~repro.dist.queue.ShardQueue` operation is modelled as a
small-step state machine whose every step applies exactly one atomic
filesystem effect to a :class:`~repro.check.protocol.fs.ModelFS` — the
same granularity at which the real implementation can crash.  The
checker (:mod:`repro.check.protocol.checker`) interleaves these machines
arbitrarily and injects crashes between steps; because reads are free
and every mutation is atomic, the model's crash states are exactly the
real protocol's reachable disk states.

Shard payloads are abstracted away: a shard is an id plus a tuple of
opaque unit tokens, and a completed result records one deterministic
cell value per unit.  ``campaign.json`` becomes a ``("campaign",
shards, splits)`` tuple, specs become ``("spec", id, units, attempts)``,
leases ``("lease", worker, expired)`` — wall-clock deadlines are
replaced by an adversarial ``expire`` action, which covers every timing
the real clock could produce.

Mutant subclasses (:data:`MUTANT_MODELS`) re-introduce the corruption
classes the checker must catch — reordered unlinks, overlapping split
partitions, dropped recovery renames, corrupt split records,
execution-history leaking into results — for the mutation test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.check.protocol.fs import Content, ModelFS

#: A worker's in-memory handle on its claimed shard: ``(sid, units,
#: attempts)``.  Volatile — a crash drops it, only the filesystem
#: survives.
Held = tuple[str, tuple[str, ...], int]


class OpState(NamedTuple):
    """One in-flight operation: which op, how far along, its locals."""

    op: str
    pc: int
    data: tuple


class StepResult(NamedTuple):
    """Outcome of applying one step of an operation."""

    next: OpState | None  # None when the operation finished (or aborted)
    held: tuple | None  # ("set", Held) | ("clear",) | None (unchanged)
    label: str  # human-readable effect description for traces


@dataclass(frozen=True)
class Scenario:
    """The campaign the model checker runs: shard ids and their units."""

    #: A 3-unit shard plus a 1-unit shard: splits are enabled (including
    #: nested re-splits of the larger child) and part-count corruption
    #: is observable (3 units do not clamp parts=3 back to parts=2).
    shards: tuple[tuple[str, tuple[str, ...]], ...] = (
        ("s0", ("u0", "u1", "u2")),
        ("s1", ("u3",)),
    )
    max_attempts: int = 99
    split_parts: int = 2

    @property
    def all_units(self) -> tuple[str, ...]:
        return tuple(u for _sid, units in self.shards for u in units)


def model_split(
    sid: str, units: tuple[str, ...], parts: int
) -> tuple[tuple[str, tuple[str, ...]], ...]:
    """Abstract twin of :func:`repro.dist.spec.split_shard`.

    Pure and deterministic: round-robin unit partition, child ids
    derived from the parent id and the part count — so replaying a
    recorded ``(parent, parts)`` split always re-derives the same
    children, which is the property Q313 checks.
    """
    parts = min(parts, len(units))
    if parts < 2:
        raise ValueError(f"cannot split {sid}: {len(units)} unit(s)")
    return tuple(
        (f"{sid}.{i}o{parts}", tuple(units[i::parts])) for i in range(parts)
    )


class ProtocolModel:
    """Correct-by-construction model of the queue protocol's effects.

    Every public queue operation appears as a ``_step_<op>`` machine;
    mutation subclasses override the small hook methods (never the
    machines themselves) to introduce one precise corruption each.
    """

    name = "correct"

    def __init__(self, scenario: Scenario | None = None) -> None:
        self.scenario = scenario or Scenario()

    # -- paths -------------------------------------------------------------

    @staticmethod
    def pending(sid: str) -> str:
        return f"pending/{sid}"

    @staticmethod
    def splitting(sid: str) -> str:
        return f"pending/{sid}.splitting"

    @staticmethod
    def leased(sid: str) -> str:
        return f"leased/{sid}"

    @staticmethod
    def lease(sid: str) -> str:
        return f"leased/{sid}.lease"

    @staticmethod
    def done(sid: str) -> str:
        return f"done/{sid}"

    @staticmethod
    def poison(sid: str) -> str:
        return f"poison/{sid}"

    # -- mutation hooks ----------------------------------------------------

    #: Order of the atomic effects inside ``complete`` — the real
    #: protocol writes the result *before* retiring the spec, so a crash
    #: in between can only duplicate work, never lose it.
    COMPLETE_PHASES: tuple[str, ...] = (
        "write_result",
        "unlink_leased",
        "unlink_pending",
        "unlink_lease",
    )

    def split(
        self, sid: str, units: tuple[str, ...], parts: int
    ) -> tuple[tuple[str, tuple[str, ...]], ...]:
        return model_split(sid, units, parts)

    def cell_value(self, unit: str, attempts: int, worker: str) -> Content:
        """The merged value one unit contributes — must be pure in *unit*."""
        return ("cell", unit)

    def commit_shards(
        self, shards: tuple[str, ...], at: int, child_ids: tuple[str, ...]
    ) -> tuple[str, ...]:
        """Shard-list splice the campaign rewrite commits."""
        return shards[:at] + child_ids + shards[at + 1 :]

    def split_record_parts(self, children: tuple) -> int:
        """Part count recorded in the split record (Q313's input)."""
        return len(children)

    def recover_unrecorded(self, sid: str) -> tuple[tuple, ...]:
        """Recovery plan for a ``.splitting`` file with no split record."""
        return (("rename_back", sid),)

    # -- shared helpers ----------------------------------------------------

    def read_campaign(
        self, fs: ModelFS
    ) -> tuple[tuple[str, ...], dict[str, tuple[tuple[str, ...], int]]]:
        """``(shards, {parent: (children, parts)})`` or ``((), {})``."""
        record = fs.read("campaign")
        if record is None:
            return (), {}
        _tag, shards, splits = record
        return shards, {p: (c, n) for p, c, n in splits}

    def expand(
        self,
        specs: tuple[tuple[str, tuple[str, ...]], ...],
        splits: dict[str, tuple[tuple[str, ...], int]],
    ) -> tuple[tuple[str, tuple[str, ...]], ...] | None:
        """Replay recorded splits over the original partition.

        The abstract twin of :func:`repro.dist.queue.expand_splits`:
        returns ``None`` when a recorded split does not reproduce —
        the model-level Q313 condition.
        """
        out: list[tuple[str, tuple[str, ...]]] = []
        for sid, units in specs:
            record = splits.get(sid)
            if record is None:
                out.append((sid, units))
                continue
            children_ids, parts = record
            try:
                derived = self.split(sid, units, parts)
            except ValueError:
                return None
            if tuple(cid for cid, _u in derived) != tuple(children_ids):
                return None
            expanded = self.expand(derived, splits)
            if expanded is None:
                return None
            out.extend(expanded)
        return tuple(out)

    def spec_of(self, content: Content) -> Held:
        _tag, sid, units, attempts = content
        return (sid, units, attempts)

    def _write_spec(
        self, fs: ModelFS, path: str, sid: str, units: tuple[str, ...], attempts: int
    ) -> None:
        fs.write(path, ("spec", sid, units, attempts))

    # -- operation machines ------------------------------------------------
    #
    # Each ``_step_<op>`` applies the single effect at ``pc`` and returns
    # the successor.  The checker guarantees ``start_*`` enabledness was
    # evaluated in the same instant as pc 0 (starting an op applies its
    # first step), so machines never see stale preconditions at pc 0.

    def step(self, fs: ModelFS, actor: str, op: OpState) -> StepResult:
        return getattr(self, f"_step_{op.op}")(fs, actor, op.pc, op.data)

    # submit: campaign rewrite, then one pending write per missing shard.

    def _step_submit(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        if pc == 0:
            _shards, splits = self.read_campaign(fs)
            expanded = self.expand(self.scenario.shards, splits)
            if expanded is None:
                return StepResult(None, None, "submit refused: recorded "
                                  "split does not reproduce")
            shard_ids = tuple(sid for sid, _units in expanded)
            split_rows = tuple(
                sorted((p, c, n) for p, (c, n) in splits.items())
            )
            fs.write("campaign", ("campaign", shard_ids, split_rows))
            todo = tuple(
                (sid, units)
                for sid, units in expanded
                if not fs.exists(self.done(sid))
                and not fs.exists(self.leased(sid))
                and not fs.exists(self.poison(sid))
                and not fs.exists(self.pending(sid))
            )
            nxt = OpState("submit", 1, todo) if todo else None
            return StepResult(nxt, None, "submit: write campaign")
        sid, units = data[pc - 1]
        self._write_spec(fs, self.pending(sid), sid, units, 0)
        nxt = OpState("submit", pc + 1, data) if pc < len(data) else None
        return StepResult(nxt, None, f"submit: enqueue pending/{sid}")

    # claim: atomic rename wins the shard, then the lease file appears.

    def _step_claim(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        if pc == 0:
            sid = data[0]
            spec = fs.read(self.pending(sid))
            if spec is None:
                return StepResult(None, None, f"claim {sid}: lost the race")
            if fs.exists(self.done(sid)):
                fs.unlink(self.pending(sid))
                return StepResult(
                    None, None, f"claim {sid}: dropped (already done)"
                )
            fs.rename(self.pending(sid), self.leased(sid))
            return StepResult(
                OpState("claim", 1, (sid,) + self.spec_of(spec)[1:]),
                None,
                f"claim {sid}: rename pending -> leased",
            )
        sid, units, attempts = data
        fs.write(self.lease(sid), ("lease", actor, False))
        return StepResult(
            None,
            ("set", (sid, units, attempts)),
            f"claim {sid}: write lease for {actor}",
        )

    # complete: result first, then retire the spec copies and the lease.

    def _step_complete(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        sid, units, attempts = data
        phase = self.COMPLETE_PHASES[pc]
        if phase == "write_result":
            payload = tuple(
                (u, self.cell_value(u, attempts, actor)) for u in units
            )
            fs.write(self.done(sid), ("result", sid, units, payload))
            label = f"complete {sid}: write done/{sid}"
        elif phase == "unlink_leased":
            fs.unlink(self.leased(sid))
            label = f"complete {sid}: unlink leased/{sid}"
        elif phase == "unlink_pending":
            fs.unlink(self.pending(sid))
            label = f"complete {sid}: unlink stale pending/{sid}"
        else:
            fs.unlink(self.lease(sid))
            label = f"complete {sid}: release lease"
        if pc + 1 < len(self.COMPLETE_PHASES):
            return StepResult(OpState("complete", pc + 1, data), None, label)
        return StepResult(None, ("clear",), label)

    # fail: rewrite the leased copy with attempts+1, requeue it with one
    # atomic rename (can never clobber a concurrent claim), drop lease.

    def _step_fail(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        sid, units, attempts = data
        if pc == 0:
            self._write_spec(fs, self.leased(sid), sid, units, attempts + 1)
            return StepResult(
                OpState("fail", 1, data),
                None,
                f"fail {sid}: rewrite leased spec (attempts={attempts + 1})",
            )
        if pc == 1:
            target = (
                self.poison(sid)
                if attempts + 1 >= self.scenario.max_attempts
                else self.pending(sid)
            )
            fs.rename(self.leased(sid), target)
            return StepResult(
                OpState("fail", 2, data),
                None,
                f"fail {sid}: rename leased -> {target}",
            )
        fs.unlink(self.lease(sid))
        return StepResult(None, ("clear",), f"fail {sid}: release lease")

    # expire: the adversarial clock — one lease's deadline passes.

    def _step_expire(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        (sid,) = data
        record = fs.read(self.lease(sid))
        if record is not None:
            _tag, worker, _expired = record
            fs.write(self.lease(sid), ("lease", worker, True))
        return StepResult(None, None, f"expire: lease on {sid} times out")

    # release_expired: plan computed at start, three effects per victim.

    def release_plan(self, fs: ModelFS) -> tuple[tuple, ...]:
        """Effects a release pass would apply, from the disk state *now*.

        A leased spec whose lease file is missing counts as expired —
        the model twin of the real mtime-fallback deadline for a worker
        that crashed between its claim rename and its lease write.
        """
        effects: list[tuple] = []
        for path in fs.sorted_under("leased/"):
            if path.endswith(".lease"):
                continue
            spec = fs.read(path)
            if spec is None:
                continue
            sid, units, attempts = self.spec_of(spec)
            record = fs.read(self.lease(sid))
            expired = record is None or record[2]
            if not expired:
                continue
            effects.append(("requeue_write", sid, units, attempts))
            effects.append(("requeue_rename", sid, attempts))
            effects.append(("unlink_lease", sid))
        return tuple(effects)

    def _step_release_expired(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        effect = data[pc]
        if effect[0] == "requeue_write":
            _kind, sid, units, attempts = effect
            self._write_spec(fs, self.leased(sid), sid, units, attempts + 1)
            label = f"release {sid}: rewrite leased spec (attempts={attempts + 1})"
        elif effect[0] == "requeue_rename":
            _kind, sid, attempts = effect
            target = (
                self.poison(sid)
                if attempts + 1 >= self.scenario.max_attempts
                else self.pending(sid)
            )
            fs.rename(self.leased(sid), target)
            label = f"release {sid}: rename leased -> {target}"
        else:
            fs.unlink(self.lease(effect[1]))
            label = f"release {effect[1]}: unlink lease file"
        if pc + 1 < len(data):
            return StepResult(
                OpState("release_expired", pc + 1, data), None, label
            )
        return StepResult(None, None, label)

    # begin_split: one rename takes the parent out of workers' sight.

    def _step_begin_split(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        (sid,) = data
        spec = fs.read(self.pending(sid))
        if spec is None:
            return StepResult(None, None, f"begin_split {sid}: lost to claim")
        fs.rename(self.pending(sid), self.splitting(sid))
        return StepResult(
            None,
            ("set", self.spec_of(spec)),
            f"begin_split {sid}: rename pending -> .splitting",
        )

    # commit_split: campaign rewrite is the commit point, then children.

    def _step_commit_split(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        if pc == 0:
            sid, units, attempts, parts = data
            shards, splits = self.read_campaign(fs)
            if sid not in shards:
                return StepResult(
                    None, None, f"commit_split {sid}: refused (not in "
                    "campaign)"
                )
            children = self.split(sid, units, parts)
            child_ids = tuple(cid for cid, _u in children)
            at = shards.index(sid)
            new_shards = self.commit_shards(shards, at, child_ids)
            splits[sid] = (child_ids, self.split_record_parts(children))
            split_rows = tuple(
                sorted((p, c, n) for p, (c, n) in splits.items())
            )
            fs.write("campaign", ("campaign", new_shards, split_rows))
            return StepResult(
                OpState("commit_split", 1, (sid, children, attempts)),
                None,
                f"commit_split {sid}: rewrite campaign (commit point)",
            )
        sid, children, attempts = data
        child_index = pc - 1
        if child_index < len(children):
            cid, cunits = children[child_index]
            if (
                fs.exists(self.done(cid))
                or fs.exists(self.pending(cid))
                or fs.exists(self.leased(cid))
            ):
                label = f"commit_split {sid}: child {cid} already present"
            else:
                self._write_spec(fs, self.pending(cid), cid, cunits, attempts)
                label = f"commit_split {sid}: enqueue pending/{cid}"
            return StepResult(
                OpState("commit_split", pc + 1, data), None, label
            )
        fs.unlink(self.splitting(sid))
        return StepResult(
            None,
            ("clear",),
            f"commit_split {sid}: unlink .splitting",
        )

    # abort_split: the parent goes straight back into the queue.

    def _step_abort_split(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        (sid,) = data
        fs.rename(self.splitting(sid), self.pending(sid))
        return StepResult(
            None,
            ("clear",),
            f"abort_split {sid}: rename .splitting -> pending",
        )

    # recover_splits: heal both crash windows from the durable record.

    def recover_plan(self, fs: ModelFS) -> tuple[tuple, ...]:
        """Effects a recovery pass would apply, from the disk state now."""
        _shards, splits = self.read_campaign(fs)
        effects: list[tuple] = []
        for path in fs.sorted_under("pending/"):
            if not path.endswith(".splitting"):
                continue
            spec = fs.read(path)
            if spec is None:
                continue
            sid, units, attempts = self.spec_of(spec)
            record = splits.get(sid)
            if record is None:
                effects.extend(self.recover_unrecorded(sid))
                continue
            _children_ids, parts = record
            try:
                derived = self.split(sid, units, parts)
            except ValueError:
                derived = ()
            for cid, cunits in derived:
                effects.append(("write_child", cid, cunits, attempts))
            effects.append(("unlink_splitting", sid))
        return tuple(effects)

    def _step_recover_splits(
        self, fs: ModelFS, actor: str, pc: int, data: tuple
    ) -> StepResult:
        effect = data[pc]
        if effect[0] == "rename_back":
            fs.rename(self.splitting(effect[1]), self.pending(effect[1]))
            label = f"recover {effect[1]}: abort (rename back to pending)"
        elif effect[0] == "write_child":
            _kind, cid, cunits, attempts = effect
            if (
                fs.exists(self.done(cid))
                or fs.exists(self.pending(cid))
                or fs.exists(self.leased(cid))
            ):
                label = f"recover: child {cid} already present"
            else:
                self._write_spec(fs, self.pending(cid), cid, cunits, attempts)
                label = f"recover: enqueue pending/{cid}"
        else:
            fs.unlink(self.splitting(effect[1]))
            label = f"recover {effect[1]}: unlink .splitting"
        if pc + 1 < len(data):
            return StepResult(
                OpState("recover_splits", pc + 1, data), None, label
            )
        return StepResult(None, None, label)


# -- mutation classes ------------------------------------------------------
#
# Each mutant corrupts exactly one protocol decision, mirroring the edit
# a future refactor could plausibly make.  The mutation suite asserts
# the checker rejects every one with its characteristic Q-code.


class MutCompleteUnlinkFirst(ProtocolModel):
    """Retire the leased spec before writing the result (reordered
    unlink): a crash in the window loses the shard — Q310."""

    name = "complete-unlink-before-result"
    COMPLETE_PHASES = (
        "unlink_leased",
        "write_result",
        "unlink_pending",
        "unlink_lease",
    )


class MutOverlappingSplit(ProtocolModel):
    """Split partition bug: the first child keeps *all* parent units, so
    two children cover the same unit and the merge consumes it twice —
    Q311."""

    name = "overlapping-split-partition"

    def split(
        self, sid: str, units: tuple[str, ...], parts: int
    ) -> tuple[tuple[str, tuple[str, ...]], ...]:
        children = model_split(sid, units, parts)
        first_id, _first_units = children[0]
        return ((first_id, units),) + children[1:]


class MutDroppedAbortRename(ProtocolModel):
    """``recover_splits`` drops the abort rename for unrecorded
    ``.splitting`` parents: the shard stays invisible forever — Q312
    (and the campaign can never complete)."""

    name = "dropped-recovery-rename"

    def recover_unrecorded(self, sid: str) -> tuple[tuple, ...]:
        return ()


class MutCorruptSplitRecord(ProtocolModel):
    """The split record lies about the part count, so replaying it
    derives different children than were enqueued — Q313."""

    name = "corrupt-split-record"

    def split_record_parts(self, children: tuple) -> int:
        return len(children) + 1


class MutHistoryTaintedResult(ProtocolModel):
    """Result cells leak the attempt count (execution history), so the
    merged table depends on the schedule — Q314."""

    name = "history-tainted-result"

    def cell_value(self, unit: str, attempts: int, worker: str) -> Content:
        return ("cell", unit, attempts)


#: The mutation-harness registry: every entry must produce at least one
#: counterexample whose violations include the paired Q-code.
MUTANT_MODELS: dict[str, tuple[type[ProtocolModel], str]] = {
    MutCompleteUnlinkFirst.name: (MutCompleteUnlinkFirst, "Q310"),
    MutOverlappingSplit.name: (MutOverlappingSplit, "Q311"),
    MutDroppedAbortRename.name: (MutDroppedAbortRename, "Q312"),
    MutCorruptSplitRecord.name: (MutCorruptSplitRecord, "Q313"),
    MutHistoryTaintedResult.name: (MutHistoryTaintedResult, "Q314"),
}
