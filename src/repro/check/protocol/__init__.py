"""Model checking and effect linting for the distributed queue protocol.

The :mod:`repro.dist` shard queue moves campaign state exclusively
through POSIX-atomic filesystem effects (rename, temp+fsync+rename
writes, O_APPEND appends, unlink).  Its safety story — no shard lost, no
result merged twice, every crash recoverable — was previously backed by
example-based chaos tests; this package proves it the way
:mod:`repro.check.plan` proves execution plans:

- :func:`check_protocol` — an explicit-state model checker that
  exhaustively explores interleavings of concurrent queue operations
  (submit / claim / complete / fail / release_expired /
  begin–commit–abort_split / recover_splits) over an abstract
  filesystem (:class:`ModelFS`), injecting a crash at every
  filesystem-effect boundary and checking the protocol's safety
  invariants (diagnostics Q310–Q314).  Violations carry replayable
  operation schedules (:func:`render_trace`).
- :func:`check_effects` — a static AST pass that derives each queue
  method's ordered filesystem-effect sequence from the real source and
  checks it against the declared spec in :mod:`repro.dist.effects`
  (diagnostics Q301–Q306), so a rename reordered past a commit point
  fails CI with a named rule rather than a flaky chaos test.

``repro-check protocol`` (:mod:`repro.cli.check`) is the CLI front end.
"""

from repro.check.protocol.fs import ModelFS
from repro.check.protocol.model import (
    MUTANT_MODELS,
    ProtocolModel,
    Scenario,
    model_split,
)
from repro.check.protocol.checker import (
    ProtocolCheckResult,
    Violation,
    check_protocol,
)
from repro.check.protocol.trace import Step, render_trace
from repro.check.protocol.effects import (
    EffectRecord,
    ProtocolFinding,
    check_effects,
    extract_effects,
)

__all__ = [
    "ModelFS",
    "MUTANT_MODELS",
    "ProtocolModel",
    "Scenario",
    "model_split",
    "ProtocolCheckResult",
    "Violation",
    "check_protocol",
    "Step",
    "render_trace",
    "EffectRecord",
    "ProtocolFinding",
    "check_effects",
    "extract_effects",
]
