"""Explicit-state exploration of the queue protocol model.

The checker runs a depth-first search over every interleaving of the
operation machines in :mod:`repro.check.protocol.model`, bounded by the
number of operations *started* (``depth``).  Starting an operation
applies its first atomic effect in the same instant its preconditions
are read, so enabledness is never stale; advancing an in-flight
operation is free, so a schedule of N started ops explores all of its
effect-level interleavings.

Crash injection: with ``crash=True`` every distinct reachable
filesystem state is treated as a potential crash point — all in-memory
actor state is dropped and the deterministic *recovery drain* runs:

1. ``recover_splits`` until no ``.splitting`` residue has a plan,
2. expire every outstanding lease, then ``release_expired``,
3. (submit phase only) resubmit the campaign — the documented resume
   path for a crash *during* submission,
4. a single drain worker claims and completes pending shards to
   quiescence.

The drained state must satisfy the protocol's safety invariants:

- **Q310** — no shard lost: every campaign shard reaches ``done/``.
- **Q311** — no double consumption: each unit's result is merged once.
- **Q312** — no unrecoverable residue: recovery leaves no ``.splitting``
  or leased spec behind and always quiesces.
- **Q313** — split replay determinism: recorded splits re-derive the
  exact shard list a merge would consume.
- **Q314** — schedule independence: the canonical merged table is
  identical across every explored schedule and crash point.

States are memoised on ``(filesystem, actor states, remaining
budget)``; crash outcomes are memoised per distinct filesystem, so the
drain runs once per reachable disk state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.check.protocol.fs import FrozenFS, ModelFS
from repro.check.protocol.model import (
    Held,
    OpState,
    ProtocolModel,
    Scenario,
)
from repro.check.protocol.trace import Cons, Step, cons_to_steps

#: Iteration guard for the recovery drain; generous for model-sized
#: campaigns — exhausting it means recovery does not quiesce (Q312).
DRAIN_BOUND = 200

_WorkerState = tuple[OpState | None, Held | None]


@dataclass(frozen=True)
class Violation:
    """One invariant violation with its replayable schedule."""

    code: str
    message: str
    phase: str
    trace: tuple[Step, ...]
    recovery: tuple[str, ...] = ()


@dataclass
class ProtocolCheckResult:
    """Outcome and exploration statistics of one protocol check."""

    model: str
    depth: int
    workers: int
    crash: bool
    states: int = 0
    transitions: int = 0
    outcomes: int = 0
    merged_variants: int = 0
    wall_seconds: float = 0.0
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def codes(self) -> tuple[str, ...]:
        return tuple(sorted({v.code for v in self.violations}))

    def to_json(self) -> dict[str, object]:
        return {
            "model": self.model,
            "depth": self.depth,
            "workers": self.workers,
            "crash": self.crash,
            "states": self.states,
            "transitions": self.transitions,
            "outcomes": self.outcomes,
            "merged_variants": self.merged_variants,
            "wall_seconds": round(self.wall_seconds, 3),
            "ok": self.ok,
            "violation_codes": list(self.codes()),
        }


class _Explorer:
    def __init__(
        self,
        model: ProtocolModel,
        *,
        depth: int,
        workers: int,
        crash: bool,
        max_states: int | None,
    ) -> None:
        self.model = model
        self.scenario = model.scenario
        self.depth = depth
        self.workers = workers
        self.crash = crash
        self.max_states = max_states
        self.result = ProtocolCheckResult(
            model=model.name, depth=depth, workers=workers, crash=crash
        )
        self._violations: dict[str, Violation] = {}
        self._outcome_seen: set[tuple[str, FrozenFS]] = set()
        self._merged: dict[tuple, tuple[str, tuple[Step, ...]]] = {}
        self.truncated = False

    # -- public ------------------------------------------------------------

    def run(self, include_submit: bool = True) -> ProtocolCheckResult:
        started = time.perf_counter()
        self._explore("run")
        if include_submit:
            self._explore("submit")
        self._finalize_determinism()
        self.result.violations = [
            self._violations[c] for c in sorted(self._violations)
        ]
        self.result.merged_variants = len(self._merged)
        self.result.wall_seconds = time.perf_counter() - started
        return self.result

    # -- search ------------------------------------------------------------

    def _initial_fs(self, phase: str) -> ModelFS:
        fs = ModelFS()
        if phase == "run":
            self._run_op(fs, "sub", "submit", ())
        return fs

    def _explore(self, phase: str) -> None:
        model = self.model
        idle: _WorkerState = (None, None)
        init_state = (
            self._initial_fs(phase).freeze(),
            tuple(idle for _ in range(self.workers)),
            idle,
            "ready" if phase == "submit" else None,
        )
        memo: dict[tuple, int] = {}
        stack: list[tuple[tuple, int, Cons]] = [(init_state, self.depth, None)]
        while stack:
            state, remaining, trace = stack.pop()
            best = memo.get(state)
            if best is not None and best >= remaining:
                continue
            memo[state] = remaining
            if self.max_states and len(memo) > self.max_states:
                self.truncated = True
                break
            fsf, wstates, rstate, sstate = state
            if self.crash:
                self._evaluate(phase, fsf, trace)
            successors = self._successors(
                phase, fsf, wstates, rstate, sstate, remaining, trace
            )
            if not successors:
                if not self.crash:
                    self._evaluate(phase, fsf, trace)
                continue
            self.result.transitions += len(successors)
            stack.extend(successors)
        self.result.states += len(memo)

    def _successors(
        self,
        phase: str,
        fsf: FrozenFS,
        wstates: tuple[_WorkerState, ...],
        rstate: _WorkerState,
        sstate: object,
        remaining: int,
        trace: Cons,
    ) -> list[tuple[tuple, int, Cons]]:
        model = self.model
        succs: list[tuple[tuple, int, Cons]] = []

        def push(
            actor: str,
            opstate: OpState,
            held: Held | None,
            slot: tuple[str, int],
            cost: int,
        ) -> None:
            fs = ModelFS.thaw(fsf)
            res = model.step(fs, actor, opstate)
            if res.held is None:
                new_held = held
            elif res.held[0] == "set":
                new_held = res.held[1]
            else:
                new_held = None
            new_w = list(wstates)
            new_r = rstate
            new_s = sstate
            kind, idx = slot
            if kind == "w":
                new_w[idx] = (res.next, new_held)
            elif kind == "r":
                new_r = (res.next, new_held)
            elif kind == "s":
                new_s = res.next
            succs.append(
                (
                    (fs.freeze(), tuple(new_w), new_r, new_s),
                    remaining - cost,
                    (Step(actor, res.label), trace),
                )
            )

        # Advance in-flight operations (free: steps within an op don't
        # count against the start budget).
        for i, (op, held) in enumerate(wstates):
            if op is not None:
                push(f"w{i}", op, held, ("w", i), 0)
        if rstate[0] is not None:
            push("rb", rstate[0], rstate[1], ("r", 0), 0)
        if isinstance(sstate, OpState):
            push("sub", sstate, None, ("s", 0), 0)

        if remaining <= 0:
            return succs

        fs0 = ModelFS.thaw(fsf)
        pending = [
            (p.split("/", 1)[1], fs0.read(p))
            for p in fs0.sorted_under("pending/")
            if not p.endswith(".splitting")
        ]
        release_plan = model.release_plan(fs0)

        # Idle workers are interchangeable: only the lowest-indexed one
        # may start an operation (symmetry reduction).
        idle_workers = [
            i for i, (op, held) in enumerate(wstates)
            if op is None and held is None
        ]
        if idle_workers:
            i = idle_workers[0]
            for sid, _spec in pending:
                push(f"w{i}", OpState("claim", 0, (sid,)), None, ("w", i), 1)
            if release_plan:
                push(
                    f"w{i}",
                    OpState("release_expired", 0, release_plan),
                    None,
                    ("w", i),
                    1,
                )
        for i, (op, held) in enumerate(wstates):
            if op is None and held is not None:
                push(f"w{i}", OpState("complete", 0, held), held, ("w", i), 1)
                push(f"w{i}", OpState("fail", 0, held), held, ("w", i), 1)

        r_op, r_held = rstate
        if r_op is None and r_held is None:
            for sid, spec in pending:
                if spec is not None and len(spec[2]) >= 2:
                    push("rb", OpState("begin_split", 0, (sid,)), None, ("r", 0), 1)
            if release_plan:
                push(
                    "rb",
                    OpState("release_expired", 0, release_plan),
                    None,
                    ("r", 0),
                    1,
                )
            recover_plan = model.recover_plan(fs0)
            if recover_plan:
                push(
                    "rb",
                    OpState("recover_splits", 0, recover_plan),
                    None,
                    ("r", 0),
                    1,
                )
        elif r_op is None and r_held is not None:
            sid, units, attempts = r_held
            push(
                "rb",
                OpState(
                    "commit_split",
                    0,
                    (sid, units, attempts, self.scenario.split_parts),
                ),
                r_held,
                ("r", 0),
                1,
            )
            push("rb", OpState("abort_split", 0, (sid,)), r_held, ("r", 0), 1)

        if sstate == "ready":
            fs = ModelFS.thaw(fsf)
            res = model.step(fs, "sub", OpState("submit", 0, ()))
            succs.append(
                (
                    (fs.freeze(), wstates, rstate, res.next),
                    remaining - 1,
                    (Step("sub", res.label), trace),
                )
            )

        # The adversarial clock: any live lease may time out.
        for path in fs0.sorted_under("leased/"):
            if path.endswith(".lease"):
                record = fs0.read(path)
                if record is not None and not record[2]:
                    sid = path.split("/", 1)[1][: -len(".lease")]
                    fs = ModelFS.thaw(fsf)
                    res = self.model.step(
                        fs, "clock", OpState("expire", 0, (sid,))
                    )
                    succs.append(
                        (
                            (fs.freeze(), wstates, rstate, sstate),
                            remaining - 1,
                            (Step("clock", res.label), trace),
                        )
                    )
        return succs

    # -- crash recovery drain ---------------------------------------------

    def _run_op(
        self, fs: ModelFS, actor: str, op: str, data: tuple
    ) -> tuple[Held | None, list[str]]:
        state: OpState | None = OpState(op, 0, data)
        held: Held | None = None
        labels: list[str] = []
        while state is not None:
            res = self.model.step(fs, actor, state)
            labels.append(res.label)
            if res.held is not None:
                held = res.held[1] if res.held[0] == "set" else None
            state = res.next
        return held, labels

    def _drain(self, fs: ModelFS, resubmit: bool) -> tuple[list[str], bool]:
        model = self.model
        labels: list[str] = []
        resubmitted = not resubmit
        for _ in range(DRAIN_BOUND):
            plan = model.recover_plan(fs)
            if plan:
                labels.append("drain: recover_splits")
                labels.extend(self._run_op(fs, "rb", "recover_splits", plan)[1])
                continue
            expired_any = False
            for path in fs.sorted_under("leased/"):
                if path.endswith(".lease"):
                    record = fs.read(path)
                    if record is not None and not record[2]:
                        fs.write(path, ("lease", record[1], True))
                        expired_any = True
            if expired_any:
                labels.append("drain: expire outstanding leases")
            release_plan = model.release_plan(fs)
            if release_plan:
                labels.append("drain: release_expired")
                labels.extend(
                    self._run_op(fs, "rb", "release_expired", release_plan)[1]
                )
                continue
            if not resubmitted:
                resubmitted = True
                labels.append("drain: resubmit campaign (resume path)")
                labels.extend(self._run_op(fs, "sub", "submit", ())[1])
                continue
            pending = [
                p for p in fs.sorted_under("pending/")
                if not p.endswith(".splitting")
            ]
            if pending:
                sid = pending[0].split("/", 1)[1]
                held, claim_labels = self._run_op(
                    fs, "drain", "claim", (sid,)
                )
                labels.extend(claim_labels)
                if held is not None:
                    labels.extend(
                        self._run_op(fs, "drain", "complete", held)[1]
                    )
                continue
            return labels, True
        return labels, False

    # -- invariants --------------------------------------------------------

    def _evaluate(self, phase: str, fsf: FrozenFS, trace: Cons) -> None:
        key = (phase, fsf)
        if key in self._outcome_seen:
            return
        self._outcome_seen.add(key)
        self.result.outcomes += 1

        model = self.model
        fs = ModelFS.thaw(fsf)
        steps = cons_to_steps(trace)
        drain_labels, quiesced = self._drain(fs, resubmit=(phase == "submit"))
        recovery = tuple(drain_labels)

        def record(code: str, message: str) -> None:
            if code not in self._violations:
                self._violations[code] = Violation(
                    code=code,
                    message=message,
                    phase=phase,
                    trace=steps,
                    recovery=recovery,
                )

        if not quiesced:
            record("Q312", "recovery drain did not quiesce (livelock/stall)")
            return

        shards, splits = model.read_campaign(fs)
        if not shards:
            record("Q310", "no campaign record survives recovery")
            return

        residue = [
            p
            for p in fs.sorted_under("pending/")
            if p.endswith(".splitting")
        ] + [
            p
            for p in fs.sorted_under("leased/")
            if not p.endswith(".lease")
        ]
        if residue:
            record(
                "Q312",
                "unrecoverable residue after drain: " + ", ".join(residue),
            )

        poisoned = {
            sid for sid in shards if fs.exists(model.poison(sid))
        }
        missing = [
            sid
            for sid in shards
            if sid not in poisoned and not fs.exists(model.done(sid))
        ]
        if missing:
            record(
                "Q310",
                "shard(s) lost — in campaign but never done: "
                + ", ".join(missing),
            )

        expanded = model.expand(self.scenario.shards, splits)
        if expanded is None:
            record(
                "Q313",
                "recorded split does not replay deterministically "
                "(re-derived children differ from the split record)",
            )
        elif tuple(sid for sid, _u in expanded) != tuple(shards):
            record(
                "Q313",
                "campaign shard list diverges from deterministic split "
                f"replay: {list(shards)} vs {[s for s, _ in expanded]}",
            )

        if missing or poisoned:
            return

        counts: dict[str, int] = {}
        merged: list[tuple[str, tuple]] = []
        for sid in shards:
            result = fs.read(model.done(sid))
            if result is None:
                continue
            _tag, _sid, _units, payload = result
            for unit, value in payload:
                counts[unit] = counts.get(unit, 0) + 1
                merged.append((unit, value))
        duplicated = sorted(u for u, n in counts.items() if n > 1)
        if duplicated:
            record(
                "Q311",
                "unit(s) consumed more than once by the merge: "
                + ", ".join(duplicated),
            )
        absent = sorted(set(self.scenario.all_units) - set(counts))
        if absent:
            record(
                "Q310",
                "unit(s) missing from the merged table: " + ", ".join(absent),
            )
        if not duplicated and not absent:
            merged_key = tuple(sorted(merged))
            self._merged.setdefault(merged_key, (phase, steps))

    def _finalize_determinism(self) -> None:
        if len(self._merged) <= 1 or "Q314" in self._violations:
            return
        (key_a, (phase_a, trace_a)), (key_b, (_phase_b, trace_b)) = sorted(
            self._merged.items()
        )[:2]
        diff = sorted(set(key_a) ^ set(key_b))
        self._violations["Q314"] = Violation(
            code="Q314",
            message=(
                "merged table depends on the schedule: "
                f"{len(self._merged)} distinct outcomes; first differing "
                f"cells: {diff[:4]} (second schedule: "
                + "; ".join(s.label for s in trace_b[-4:])
                + ")"
            ),
            phase=phase_a,
            trace=trace_a,
            recovery=(),
        )


def check_protocol(
    model: ProtocolModel | None = None,
    *,
    scenario: Scenario | None = None,
    depth: int = 5,
    workers: int = 2,
    crash: bool = True,
    include_submit: bool = True,
    max_states: int | None = None,
) -> ProtocolCheckResult:
    """Exhaustively check the queue protocol model.

    Explores every interleaving of up to ``depth`` started operations
    across ``workers`` concurrent workers plus a rebalancer, a
    submitter (in the submit phase) and an adversarial lease clock,
    with a crash injected at every reachable filesystem state when
    ``crash`` is set.  Returns a :class:`ProtocolCheckResult` whose
    ``violations`` is empty exactly when all safety invariants hold.
    """
    if model is None:
        model = ProtocolModel(scenario)
    explorer = _Explorer(
        model,
        depth=depth,
        workers=workers,
        crash=crash,
        max_states=max_states,
    )
    return explorer.run(include_submit=include_submit)
