"""Counterexample traces as replayable operation schedules."""

from __future__ import annotations

from typing import TYPE_CHECKING, NamedTuple, Optional, TypeAlias

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.check.protocol.checker import Violation


class Step(NamedTuple):
    """One scheduled atomic effect: which actor did what."""

    actor: str
    label: str


#: Shared-prefix cons list of steps: ``None`` or ``(step, parent)``.
Cons: TypeAlias = Optional[tuple[Step, "Cons"]]


def cons_to_steps(trace: Cons) -> tuple[Step, ...]:
    """Unwind the checker's shared-prefix cons list into step order."""
    steps: list[Step] = []
    node = trace
    while node is not None:
        step, node = node
        steps.append(step)
    steps.reverse()
    return tuple(steps)


def render_trace(violation: "Violation") -> str:
    """Render a violation as a numbered, replayable schedule.

    The schedule section lists the atomic effects in the order the
    checker executed them; replaying them against a real tmpdir queue
    (and stopping at the crash marker) reproduces the violating disk
    state, which is exactly how the counterexample regression tests in
    ``tests/test_check_protocol_replay.py`` are built.
    """
    lines = [
        f"{violation.code} [{violation.phase} phase]: {violation.message}",
        "  schedule:",
    ]
    if violation.trace:
        for i, step in enumerate(violation.trace, start=1):
            lines.append(f"    {i:2d}. [{step.actor}] {step.label}")
    else:
        lines.append("     (empty — violated in the initial state)")
    lines.append("    -- crash: all in-memory state lost --")
    if violation.recovery:
        lines.append("  recovery drain:")
        for label in violation.recovery:
            lines.append(f"    - {label}")
    return "\n".join(lines)
