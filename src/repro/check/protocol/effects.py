"""Static filesystem-effect extraction for the queue protocol.

Walks the AST of the :mod:`repro.dist` protocol modules and derives,
for each function, the ordered sequence of atomic filesystem effects it
performs — renames, :mod:`repro.store` atomic writes, O_APPEND appends
and unlinks — with each touched path resolved to a protocol *role*
(``pending``, ``leased``, ``lease``, ``done``, ``poison``,
``splitting``, ``campaign``).  The derived sequences are matched
against the declared spec in :mod:`repro.dist.effects`, yielding stable
diagnostics:

- **Q301** — a declared protocol method is missing from the source.
- **Q302** — an effect the spec does not declare (including *any*
  direct effect in ``repro.dist.rebalance``, which must act only
  through the queue API).
- **Q303** — a declared, non-optional effect is missing.
- **Q304** — effects out of declared order (e.g. a rename moved past a
  commit point).
- **Q305** — a non-atomic write primitive (``open(.., "w")``,
  ``write_text``, ...) in a protocol module.
- **Q306** — an effect on a path whose role cannot be resolved.

Role resolution is a tiny abstract interpreter over each function body:
assignments propagate role sets, branches union them (``fail``'s
pending-or-poison target), same-class helper calls are inlined
(``commit_split`` absorbs ``_enqueue_children``), and ``Lease``
method calls collapse to their declared lease-file effects.
"""

from __future__ import annotations

import ast
import importlib
import inspect
from dataclasses import dataclass

from repro.dist.effects import PROTOCOL_SPEC, DeclaredEffect

#: repro.store primitives → effect kind.
_WRITE_FUNCS = {
    "atomic_write",
    "atomic_write_bytes",
    "atomic_savez",
    "save_verified_npz",
}
_APPEND_FUNCS = {"atomic_append_line"}
#: ``Lease`` methods and their summarized effect on the lease file.
_LEASE_SUMMARY = {
    "acquire": "write",
    "_write": "write",
    "renew": "write",
    "maybe_renew": "write",
    "release": "unlink",
}
_RAW_WRITE_ATTRS = {"write_text", "write_bytes"}


@dataclass(frozen=True)
class EffectRecord:
    """One extracted effect: kind, resolved roles, source line."""

    kind: str  # "write" | "append" | "unlink" | "rename" | "raw_write"
    roles: frozenset[str]
    line: int

    def __str__(self) -> str:
        roles = "|".join(sorted(self.roles)) or "?"
        return f"{self.kind}[{roles}]@{self.line}"


@dataclass(frozen=True)
class ProtocolFinding:
    """One static protocol-spec violation."""

    code: str
    qualname: str
    message: str
    path: str
    line: int

    def __str__(self) -> str:
        return (
            f"{self.path}:{self.line}: {self.code} [{self.qualname}] "
            f"{self.message}"
        )


# -- role resolution -------------------------------------------------------

_DIR_ROLES = {
    "pending_dir": "pending",
    "leased_dir": "leased",
    "done_dir": "done",
    "poison_dir": "poison",
    "campaign_path": "campaign",
    "root": "root",
}
_CALL_ROLES = {
    "splitting_path": "splitting",
    "result_path": "done",
}


def _literal_text(node: ast.AST) -> str:
    """Concatenated literal fragments and referenced constant names."""
    parts: list[str] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            parts.append(sub.value)
        elif isinstance(sub, ast.Name):
            parts.append(sub.id)
    return "".join(parts)


class _RoleResolver:
    def __init__(
        self, cls_name: str | None, env: dict[str, frozenset[str]]
    ) -> None:
        self.cls_name = cls_name
        self.env = env

    def roles(self, node: ast.AST) -> frozenset[str]:
        if isinstance(node, ast.Name):
            return self.env.get(node.id, frozenset())
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                role = _DIR_ROLES.get(node.attr)
                if role:
                    return frozenset({role})
                if node.attr == "path" and self.cls_name == "Lease":
                    return frozenset({"lease"})
                return frozenset()
            # ``path.name`` / ``path.stem``: same file, same role.
            if node.attr in {"name", "stem"}:
                return self.roles(node.value)
            return frozenset()
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute):
                if (
                    isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in _CALL_ROLES
                ):
                    return frozenset({_CALL_ROLES[func.attr]})
                if func.attr == "glob" and node.args:
                    base = self.roles(func.value)
                    pattern = _literal_text(node.args[0])
                    if "SPLITTING_SUFFIX" in pattern or ".splitting" in pattern:
                        return frozenset({"splitting"})
                    return base
            if isinstance(func, ast.Name):
                if func.id in {"Path", "sorted"} and node.args:
                    return self.roles(node.args[0])
            return frozenset()
        if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
            left = self.roles(node.left)
            text = _literal_text(node.right)
            if "SPLITTING_SUFFIX" in text or ".splitting" in text:
                return frozenset({"splitting"})
            if ".lease" in text:
                return frozenset({"lease"})
            if "CAMPAIGN_NAME" in text or "campaign.json" in text:
                return frozenset({"campaign"})
            return left - {"root"}
        if isinstance(node, ast.Tuple):
            out: frozenset[str] = frozenset()
            for element in node.elts:
                out = out | self.roles(element)
            return out
        return frozenset()


# -- extraction ------------------------------------------------------------


class _FunctionExtractor:
    """Extract one function's ordered effect sequence (helpers inlined)."""

    def __init__(
        self,
        cls_name: str | None,
        class_methods: dict[str, ast.FunctionDef],
        visiting: frozenset[str],
    ) -> None:
        self.cls_name = cls_name
        self.class_methods = class_methods
        self.visiting = visiting
        self.env: dict[str, frozenset[str]] = {}
        self.resolver = _RoleResolver(cls_name, self.env)
        self.effects: list[EffectRecord] = []

    def run(self, node: ast.FunctionDef) -> list[EffectRecord]:
        for statement in node.body:
            self._visit(statement)
        return self.effects

    # statements ----------------------------------------------------------

    def _visit(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self._scan_expr(node.value)
            if len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                self.env[node.targets[0].id] = self.resolver.roles(node.value)
            return
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            self._scan_expr(node.value)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = self.resolver.roles(node.value)
            return
        if isinstance(node, ast.Expr):
            self._scan_expr(node.value)
            return
        if isinstance(node, ast.For):
            iter_roles = self.resolver.roles(node.iter)
            if isinstance(node.target, ast.Name):
                self.env[node.target.id] = iter_roles
            for statement in node.body:
                self._visit(statement)
            for statement in node.orelse:
                self._visit(statement)
            return
        if isinstance(node, ast.If):
            before = dict(self.env)
            for statement in node.body:
                self._visit(statement)
            body_env = self.env
            self.env = dict(before)
            self.resolver.env = self.env
            for statement in node.orelse:
                self._visit(statement)
            # Branch envs merge by union: a variable assigned a
            # different role per branch carries both (fail's target).
            for name, roles in body_env.items():
                self.env[name] = self.env.get(name, frozenset()) | roles
            self.resolver.env = self.env
            return
        if isinstance(node, ast.Try):
            for statement in node.body:
                self._visit(statement)
            for handler in node.handlers:
                for statement in handler.body:
                    self._visit(statement)
            for statement in node.orelse + node.finalbody:
                self._visit(statement)
            return
        if isinstance(node, (ast.While, ast.With)):
            body = node.body
            if isinstance(node, ast.With):
                for item in node.items:
                    self._scan_expr(item.context_expr)
            for statement in body:
                self._visit(statement)
            return
        if isinstance(node, ast.Return) and node.value is not None:
            self._scan_expr(node.value)
            return
        # Remaining statement kinds carry no filesystem effects.

    # expressions ----------------------------------------------------------

    def _scan_expr(self, node: ast.expr) -> None:
        for call in [
            sub for sub in ast.walk(node) if isinstance(sub, ast.Call)
        ]:
            self._scan_call(call)

    def _emit(self, kind: str, roles: frozenset[str], line: int) -> None:
        self.effects.append(EffectRecord(kind=kind, roles=roles, line=line))

    def _scan_call(self, node: ast.Call) -> None:
        func = node.func
        # repro.store atomic writes / appends.
        if isinstance(func, ast.Name):
            if func.id in _WRITE_FUNCS and node.args:
                self._emit(
                    "write", self.resolver.roles(node.args[0]), node.lineno
                )
                return
            if func.id in _APPEND_FUNCS and node.args:
                self._emit(
                    "append", self.resolver.roles(node.args[0]), node.lineno
                )
                return
            if func.id == "open" and len(node.args) >= 2:
                mode = node.args[1]
                if isinstance(mode, ast.Constant) and any(
                    ch in str(mode.value) for ch in "wax+"
                ):
                    self._emit("raw_write", frozenset(), node.lineno)
                return
        if not isinstance(func, ast.Attribute):
            return
        # os.rename / os.replace.
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and func.attr in {"rename", "replace"}
            and len(node.args) == 2
        ):
            src = self.resolver.roles(node.args[0])
            dst = self.resolver.roles(node.args[1])
            pairs = frozenset(
                f"{s}->{d}" for s in sorted(src) for d in sorted(dst)
            )
            self._emit("rename", pairs, node.lineno)
            return
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "os"
            and func.attr in {"write", "truncate"}
        ):
            self._emit("raw_write", frozenset(), node.lineno)
            return
        # path.unlink()
        if func.attr == "unlink":
            self._emit(
                "unlink", self.resolver.roles(func.value), node.lineno
            )
            return
        if func.attr in _RAW_WRITE_ATTRS:
            self._emit("raw_write", frozenset(), node.lineno)
            return
        # Lease.acquire(...) / lease.release() / self.lease.maybe_renew():
        # collapse to the summarized lease-file effect, except when the
        # receiver is a same-class method (inlined below instead).
        receiver = func.value
        same_class = (
            isinstance(receiver, ast.Name) and receiver.id == "self"
        ) and func.attr in self.class_methods
        if func.attr in _LEASE_SUMMARY and not same_class:
            is_lease_receiver = (
                (isinstance(receiver, ast.Name) and "lease" in receiver.id.lower())
                or (isinstance(receiver, ast.Name) and receiver.id == "Lease")
                or (
                    isinstance(receiver, ast.Attribute)
                    and "lease" in receiver.attr.lower()
                )
                or self.cls_name == "Lease"
            )
            if is_lease_receiver:
                self._emit(
                    "write" if _LEASE_SUMMARY[func.attr] == "write" else "unlink",
                    frozenset({"lease"}),
                    node.lineno,
                )
                return
        # Same-class helper call: inline its effects in place.
        if same_class and func.attr not in self.visiting:
            inner = _FunctionExtractor(
                self.cls_name,
                self.class_methods,
                self.visiting | {func.attr},
            )
            self.effects.extend(inner.run(self.class_methods[func.attr]))
            return
        # In-class helper called through a local instance (Lease.acquire
        # does ``lease._write(now)``).
        if (
            func.attr in self.class_methods
            and func.attr not in self.visiting
            and not isinstance(receiver, ast.Name)
        ):
            return


def _module_functions(
    tree: ast.Module,
) -> dict[str, tuple[str | None, ast.FunctionDef, dict[str, ast.FunctionDef]]]:
    """``qualname -> (class name, node, same-class method map)``."""
    out: dict[
        str, tuple[str | None, ast.FunctionDef, dict[str, ast.FunctionDef]]
    ] = {}
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(node, ast.FunctionDef):
                out[node.name] = (None, node, {})
        elif isinstance(node, ast.ClassDef):
            methods = {
                item.name: item
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            for name, method in methods.items():
                out[f"{node.name}.{name}"] = (node.name, method, methods)
    return out


def extract_effects(
    source: str, module_name: str = "<string>"
) -> dict[str, list[EffectRecord]]:
    """Derive every function's ordered effect sequence from *source*."""
    tree = ast.parse(source)
    sequences: dict[str, list[EffectRecord]] = {}
    for qualname, (cls_name, node, methods) in _module_functions(tree).items():
        extractor = _FunctionExtractor(cls_name, methods, frozenset({node.name}))
        effects = extractor.run(node)
        if effects:
            sequences[qualname] = effects
    return sequences


# -- matching --------------------------------------------------------------


def match_effects(
    qualname: str,
    extracted: list[EffectRecord],
    declared: tuple[DeclaredEffect, ...],
    path: str,
) -> list[ProtocolFinding]:
    """Match one extracted sequence against its declared slots."""
    findings: list[ProtocolFinding] = []
    position = 0
    consumed: set[int] = set()

    def matches(slot: DeclaredEffect, effect: EffectRecord) -> bool:
        return slot.kind == effect.kind and effect.roles <= slot.roles

    for effect in extracted:
        if effect.kind == "raw_write":
            findings.append(
                ProtocolFinding(
                    code="Q305",
                    qualname=qualname,
                    message="non-atomic write primitive in a protocol "
                    "method (use repro.store atomic helpers)",
                    path=path,
                    line=effect.line,
                )
            )
            continue
        if not effect.roles:
            findings.append(
                ProtocolFinding(
                    code="Q306",
                    qualname=qualname,
                    message=f"cannot resolve the path role of {effect}",
                    path=path,
                    line=effect.line,
                )
            )
            continue
        slot_index = next(
            (
                j
                for j in range(position, len(declared))
                if matches(declared[j], effect)
            ),
            None,
        )
        if slot_index is None:
            earlier = next(
                (
                    j
                    for j in range(position)
                    if matches(declared[j], effect)
                ),
                None,
            )
            if earlier is not None:
                findings.append(
                    ProtocolFinding(
                        code="Q304",
                        qualname=qualname,
                        message=(
                            f"effect {effect} out of declared order: it "
                            f"belongs before slot {position} "
                            "(a rename/write moved past a commit point?)"
                        ),
                        path=path,
                        line=effect.line,
                    )
                )
                consumed.add(earlier)
            else:
                findings.append(
                    ProtocolFinding(
                        code="Q302",
                        qualname=qualname,
                        message=f"undeclared filesystem effect {effect}",
                        path=path,
                        line=effect.line,
                    )
                )
            continue
        consumed.add(slot_index)
        position = slot_index if declared[slot_index].repeat else slot_index + 1
    for j, slot in enumerate(declared):
        if j not in consumed and not slot.optional:
            roles = "|".join(sorted(slot.roles))
            findings.append(
                ProtocolFinding(
                    code="Q303",
                    qualname=qualname,
                    message=(
                        f"declared effect {slot.kind}[{roles}] (slot {j}) "
                        "is missing from the implementation"
                    ),
                    path=path,
                    line=extracted[-1].line if extracted else 0,
                )
            )
    return findings


def check_effects(
    spec: dict[str, dict[str, tuple[DeclaredEffect, ...]]] | None = None,
    *,
    sources: dict[str, tuple[str, str]] | None = None,
) -> list[ProtocolFinding]:
    """Check protocol modules against the declared effect spec.

    *sources* maps module name to ``(source text, display path)`` and
    defaults to the live source of each module in the spec — the
    mutation tests pass doctored sources instead.
    """
    spec = PROTOCOL_SPEC if spec is None else spec
    findings: list[ProtocolFinding] = []
    for module_name, declared_methods in sorted(spec.items()):
        if sources is not None and module_name in sources:
            source, path = sources[module_name]
        else:
            module = importlib.import_module(module_name)
            source = inspect.getsource(module)
            path = getattr(module, "__file__", module_name) or module_name
        sequences = extract_effects(source, module_name)
        for qualname in sorted(declared_methods):
            declared = declared_methods[qualname]
            if qualname not in sequences:
                if any(not slot.optional for slot in declared):
                    findings.append(
                        ProtocolFinding(
                            code="Q301",
                            qualname=qualname,
                            message=(
                                "declared protocol method is missing from "
                                f"{module_name} (or performs no effects)"
                            ),
                            path=path,
                            line=0,
                        )
                    )
                continue
            findings.extend(
                match_effects(
                    qualname, sequences[qualname], declared, path
                )
            )
        for qualname in sorted(set(sequences) - set(declared_methods)):
            for effect in sequences[qualname]:
                findings.append(
                    ProtocolFinding(
                        code="Q305" if effect.kind == "raw_write" else "Q302",
                        qualname=qualname,
                        message=(
                            "non-atomic write primitive in a protocol module"
                            if effect.kind == "raw_write"
                            else (
                                f"undeclared filesystem effect {effect} in "
                                "a method outside the protocol spec"
                            )
                        ),
                        path=path,
                        line=effect.line,
                    )
                )
    return findings
