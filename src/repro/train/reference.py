"""Reference training recipes for the model zoo.

:func:`train_reference_model` trains a registry model on SynthCIFAR with a
fixed recipe and stores the weights where
:func:`repro.models.create_model(..., pretrained=True)` finds them.  The
mini models converge to >90% test accuracy in a couple of minutes on one
CPU core; the full-size models accept the same recipe but are only needed
for weight-distribution analyses, where He initialisation suffices.
"""

from __future__ import annotations

from repro.data import SynthCIFAR
from repro.models import MODELS, create_model, pretrained_path
from repro.nn import save_state
from repro.train.schedule import cosine_lr
from repro.train.trainer import TrainConfig, Trainer, evaluate_accuracy

#: Default recipe per model family; minis need little data to saturate.
_RECIPES = {
    "resnet8_mini": {"epochs": 20, "train_size": 2000, "lr": 0.05},
    "resnet14_mini": {"epochs": 20, "train_size": 2000, "lr": 0.05},
    "resnet20_mini": {"epochs": 20, "train_size": 2000, "lr": 0.05},
    "mobilenetv2_mini": {"epochs": 25, "train_size": 2000, "lr": 0.05},
    "vgg_mini": {"epochs": 20, "train_size": 2000, "lr": 0.05},
    "resnet20": {"epochs": 10, "train_size": 2000, "lr": 0.05},
    "mobilenetv2": {"epochs": 10, "train_size": 2000, "lr": 0.05},
}


def train_reference_model(
    name: str,
    *,
    epochs: int | None = None,
    train_size: int | None = None,
    seed: int = 0,
    log_every: int = 0,
    save: bool = True,
    telemetry=None,
) -> tuple[object, float]:
    """Train registry model *name* on SynthCIFAR and save its weights.

    Returns ``(model, test_accuracy)``.  With ``save=True`` the state dict
    lands at :func:`repro.models.pretrained_path`.  *telemetry* journals
    per-epoch progress (see :class:`~repro.train.trainer.Trainer`).
    """
    if name not in MODELS:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODELS)}")
    recipe = dict(_RECIPES.get(name, {"epochs": 20, "train_size": 2000, "lr": 0.05}))
    if epochs is not None:
        recipe["epochs"] = epochs
    if train_size is not None:
        recipe["train_size"] = train_size

    train_data = SynthCIFAR("train", size=recipe["train_size"], seed=1234)
    test_data = SynthCIFAR("test", size=512, seed=1234)
    model = create_model(name, seed=seed)
    config = TrainConfig(
        epochs=recipe["epochs"],
        lr=recipe["lr"],
        seed=seed,
        lr_schedule=cosine_lr(recipe["lr"], recipe["epochs"]),
        log_every=log_every,
    )
    trainer = Trainer(model, config, telemetry=telemetry)
    trainer.fit(
        train_data.images,
        train_data.labels,
        val_images=test_data.images,
        val_labels=test_data.labels,
    )
    accuracy = evaluate_accuracy(model, test_data.images, test_data.labels)
    model.eval()
    if save:
        save_state(model, pretrained_path(name))
    return model, accuracy
