"""Learning-rate schedules as plain ``epoch -> lr`` callables."""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence


def step_lr(
    base_lr: float, milestones: Sequence[int], gamma: float = 0.1
) -> Callable[[int], float]:
    """Multiply the LR by *gamma* at each epoch in *milestones*."""
    if base_lr <= 0:
        raise ValueError(f"base_lr must be > 0, got {base_lr}")
    if sorted(milestones) != list(milestones):
        raise ValueError("milestones must be sorted ascending")

    def schedule(epoch: int) -> float:
        passed = sum(1 for m in milestones if epoch >= m)
        return base_lr * gamma**passed

    return schedule


def cosine_lr(
    base_lr: float, total_epochs: int, *, min_lr: float = 0.0
) -> Callable[[int], float]:
    """Cosine annealing from *base_lr* to *min_lr* over *total_epochs*."""
    if base_lr <= 0:
        raise ValueError(f"base_lr must be > 0, got {base_lr}")
    if total_epochs <= 0:
        raise ValueError(f"total_epochs must be > 0, got {total_epochs}")

    def schedule(epoch: int) -> float:
        progress = min(max(epoch, 0), total_epochs) / total_epochs
        return min_lr + (base_lr - min_lr) * 0.5 * (1 + math.cos(math.pi * progress))

    return schedule
