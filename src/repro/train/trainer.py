"""Trainer loop and evaluation."""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.data import iterate_batches
from repro.nn.module import Module
from repro.telemetry import Telemetry, resolve_telemetry
from repro.tensor import Tensor, no_grad, ops
from repro.train.optim import SGD


def evaluate_accuracy(
    model: Module, images: np.ndarray, labels: np.ndarray, *, batch_size: int = 256
) -> float:
    """Top-1 accuracy of *model* over the given data (inference mode)."""
    model.eval()
    correct = 0
    with no_grad():
        for start in range(0, len(images), batch_size):
            batch = images[start : start + batch_size]
            logits = model.forward_fast(batch)
            predictions = logits.argmax(axis=1)
            correct += int((predictions == labels[start : start + batch_size]).sum())
    return correct / len(images)


@dataclass
class TrainConfig:
    """Hyper-parameters of a training run."""

    epochs: int = 30
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 5e-4
    seed: int = 0
    lr_schedule: Callable[[int], float] | None = None
    log_every: int = 0
    history: list[dict] = field(default_factory=list, repr=False)


class Trainer:
    """Minimal SGD training loop over in-memory data.

    With *telemetry*, each epoch is profiled (``train.epoch`` span) and
    journaled as an ``epoch_done`` event carrying loss, learning rate,
    wall time and (when a validation set is given) accuracy; the
    ``train.samples`` counter accumulates throughput.
    """

    def __init__(
        self,
        model: Module,
        config: TrainConfig,
        *,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.model = model
        self.config = config
        self.telemetry = resolve_telemetry(telemetry)
        self.optimizer = SGD(
            model.parameters(),
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )

    def fit(
        self,
        train_images: np.ndarray,
        train_labels: np.ndarray,
        *,
        val_images: np.ndarray | None = None,
        val_labels: np.ndarray | None = None,
    ) -> list[dict]:
        """Train for ``config.epochs``; returns a per-epoch history."""
        cfg = self.config
        tele = self.telemetry
        rng = np.random.default_rng(cfg.seed)
        if tele.enabled:
            tele.emit(
                "campaign_start",
                kind="train",
                total=cfg.epochs,
                batch_size=cfg.batch_size,
                train_images=int(len(train_images)),
            )
        for epoch in range(cfg.epochs):
            if cfg.lr_schedule is not None:
                self.optimizer.lr = cfg.lr_schedule(epoch)
            self.model.train()
            epoch_loss = 0.0
            batches = 0
            start_time = time.time()
            with tele.span("train.epoch", emit=True, epoch=epoch):
                for batch_x, batch_y in iterate_batches(
                    train_images, train_labels, cfg.batch_size, shuffle=True, rng=rng
                ):
                    self.optimizer.zero_grad()
                    logits = self.model(Tensor(batch_x))
                    loss = ops.cross_entropy(logits, batch_y)
                    loss.backward()
                    self.optimizer.step()
                    epoch_loss += loss.item()
                    batches += 1
            record = {
                "epoch": epoch,
                "loss": epoch_loss / max(batches, 1),
                "lr": self.optimizer.lr,
                "seconds": time.time() - start_time,
            }
            if val_images is not None and val_labels is not None:
                with tele.span("train.evaluate"):
                    record["val_accuracy"] = evaluate_accuracy(
                        self.model, val_images, val_labels
                    )
            cfg.history.append(record)
            if tele.enabled:
                tele.emit("epoch_done", **record)
                tele.counter("train.samples").add(len(train_images))
                tele.gauge("train.lr").set(self.optimizer.lr)
                tele.gauge("train.loss").set(record["loss"])
            if cfg.log_every and epoch % cfg.log_every == 0:
                val = record.get("val_accuracy")
                val_text = f" val_acc={val:.3f}" if val is not None else ""
                print(
                    f"epoch {epoch:3d} loss={record['loss']:.4f} "
                    f"lr={record['lr']:.4f}{val_text}"
                )
        if tele.enabled:
            tele.emit("campaign_end", epochs=cfg.epochs)
        return cfg.history
