"""Training utilities: SGD optimiser, schedules, trainer loop, evaluation."""

from repro.train.optim import SGD
from repro.train.schedule import cosine_lr, step_lr
from repro.train.trainer import TrainConfig, Trainer, evaluate_accuracy
from repro.train.reference import train_reference_model

__all__ = [
    "SGD",
    "cosine_lr",
    "step_lr",
    "TrainConfig",
    "Trainer",
    "evaluate_accuracy",
    "train_reference_model",
]
