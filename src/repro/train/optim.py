"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.nn.module import Parameter


class SGD:
    """SGD with classical momentum and decoupled L2 weight decay.

    The update is ``v = momentum * v + grad + weight_decay * w`` followed by
    ``w -= lr * v`` — the same scheme ``torch.optim.SGD`` uses.
    """

    def __init__(
        self,
        parameters,
        lr: float,
        *,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if lr <= 0.0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0.0:
            raise ValueError(f"weight_decay must be >= 0, got {weight_decay}")
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        """Apply one update using the accumulated gradients."""
        for param, velocity in zip(self.parameters, self._velocity):
            if param.grad is None:
                continue
            update = param.grad
            if self.weight_decay:
                update = update + self.weight_decay * param.data
            velocity *= self.momentum
            velocity += update
            param.data -= self.lr * velocity
