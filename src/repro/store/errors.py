"""Domain errors for the artifact store."""

from __future__ import annotations

import os


class ArtifactError(RuntimeError):
    """Base class for artifact-store failures."""


class CorruptArtifactError(ArtifactError):
    """An artifact failed integrity validation.

    Carries the offending path, what went wrong, and the exact command
    that regenerates the artifact, so the error a user sees five stack
    frames up is actionable instead of a bare ``BadZipFile``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        reason: str,
        regenerate: str | None = None,
    ) -> None:
        self.path = os.fspath(path)
        self.reason = reason
        self.regenerate = regenerate
        message = f"artifact {self.path} is corrupt: {reason}"
        if regenerate:
            message += f"; regenerate with `{regenerate}`"
        super().__init__(message)
