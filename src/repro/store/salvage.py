"""Best-effort recovery of ``.npz`` members from a damaged zip archive.

``zipfile`` (and therefore ``np.load``) reads a zip through its *central
directory* at the end of the file; truncation destroys the directory and
every member becomes unreadable — even the ones whose bytes are fully
intact.  The zip *local file headers* interleaved with the data survive,
though: each member is preceded by a ``PK\\x03\\x04`` record carrying its
name, compression method and sizes.  This module walks those records
directly and decompresses every member whose data is present and whose
CRC-32 checks out.
"""

from __future__ import annotations

import io
import os
import struct
import zlib
from pathlib import Path

import numpy as np

_LOCAL_HEADER_SIGNATURE = b"PK\x03\x04"
_LOCAL_HEADER_STRUCT = struct.Struct("<4s5H3I2H")
_STORED, _DEFLATED = 0, 8
_ZIP64_EXTRA_ID = 0x0001
_ZIP64_SENTINEL = 0xFFFFFFFF


def _zip64_sizes(
    extra: bytes, compressed_size: int, uncompressed_size: int
) -> tuple[int, int]:
    """Resolve (compressed, uncompressed) sizes through the zip64 extra field.

    numpy writes every member with ``force_zip64``: the 32-bit header
    fields hold ``0xFFFFFFFF`` and the real sizes live in the extra
    record — uncompressed first, then compressed, each present only when
    its header field carries the sentinel.
    """
    offset = 0
    while offset + 4 <= len(extra):
        field_id, field_size = struct.unpack_from("<HH", extra, offset)
        payload = extra[offset + 4 : offset + 4 + field_size]
        offset += 4 + field_size
        if field_id != _ZIP64_EXTRA_ID:
            continue
        cursor = 0
        if uncompressed_size == _ZIP64_SENTINEL and cursor + 8 <= len(payload):
            (uncompressed_size,) = struct.unpack_from("<Q", payload, cursor)
            cursor += 8
        if compressed_size == _ZIP64_SENTINEL and cursor + 8 <= len(payload):
            (compressed_size,) = struct.unpack_from("<Q", payload, cursor)
        break
    return compressed_size, uncompressed_size


def salvage_npz(path: str | os.PathLike) -> dict[str, np.ndarray]:
    """Recover whatever arrays survive in a damaged ``.npz`` at *path*.

    Returns a dict of the members that decompressed cleanly, passed their
    recorded CRC-32, and parsed as ``.npy``; damaged or truncated members
    are skipped silently.  An archive with an intact central directory is
    salvaged just the same (the reader never consults the directory), so
    the result on a healthy file equals ``dict(np.load(path))``.
    """
    blob = Path(path).read_bytes()
    recovered: dict[str, np.ndarray] = {}
    offset = 0
    while True:
        offset = blob.find(_LOCAL_HEADER_SIGNATURE, offset)
        if offset < 0 or offset + _LOCAL_HEADER_STRUCT.size > len(blob):
            break
        (
            _signature,
            _version,
            flags,
            method,
            _mtime,
            _mdate,
            crc32,
            compressed_size,
            uncompressed_size,
            name_length,
            extra_length,
        ) = _LOCAL_HEADER_STRUCT.unpack_from(blob, offset)
        header_end = offset + _LOCAL_HEADER_STRUCT.size
        data_start = header_end + name_length + extra_length
        name = blob[header_end : header_end + name_length].decode(
            "utf-8", errors="replace"
        )
        extra = blob[header_end + name_length : data_start]
        compressed_size, _ = _zip64_sizes(
            extra, compressed_size, uncompressed_size
        )
        # Flag bit 3 means sizes live in a trailing data descriptor the
        # writer fills in post-hoc; numpy's seekable writer backpatches the
        # header (or the zip64 extra) instead, so an unresolved size marks
        # an unfinished member.
        if flags & 0x8 or compressed_size in (0, _ZIP64_SENTINEL):
            offset += len(_LOCAL_HEADER_SIGNATURE)
            continue
        payload = blob[data_start : data_start + compressed_size]
        offset = data_start + compressed_size
        if len(payload) < compressed_size:
            continue  # member data itself is truncated
        try:
            if method == _DEFLATED:
                raw = zlib.decompress(payload, wbits=-15)
            elif method == _STORED:
                raw = payload
            else:
                continue
        except zlib.error:
            continue
        if zlib.crc32(raw) & 0xFFFFFFFF != crc32:
            continue
        if not name.endswith(".npy"):
            continue
        try:
            array = np.lib.format.read_array(io.BytesIO(raw), allow_pickle=False)
        except Exception:
            continue
        recovered[name[: -len(".npy")]] = array
    return recovered
