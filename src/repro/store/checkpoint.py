"""Chunk-level checkpointing for long campaigns.

An exhaustive campaign is a few hundred independent (layer, bit) cells;
the checkpoint persists each finished cell as one atomically-written
``.npy`` next to a ``meta.json`` describing the campaign configuration.
A killed run reopens the directory, keeps every cell whose configuration
still matches, and recomputes only the rest — producing a bit-identical
table because cell outcomes are deterministic.
"""

from __future__ import annotations

import io
import json
import os
import shutil
from pathlib import Path

import numpy as np

from repro.store.atomic import atomic_write_bytes

_META_NAME = "meta.json"


class CampaignCheckpoint:
    """Resumable store of per-chunk campaign outcomes.

    Parameters
    ----------
    directory:
        Checkpoint directory (created on first write).
    config:
        JSON-serialisable description of the campaign (model hash, format,
        policy, eval size, ...).  A directory holding a different config
        is wiped rather than resumed — stale chunks must never leak into a
        new campaign.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` sink; every
        persisted chunk is journaled as a ``checkpoint_write`` event and
        counted in the ``checkpoint.writes`` metric.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        *,
        config: dict,
        telemetry=None,
    ) -> None:
        from repro.telemetry import resolve_telemetry

        self.directory = Path(directory)
        self.config = config
        self.telemetry = resolve_telemetry(telemetry)
        if self.directory.exists() and not self._config_matches():
            shutil.rmtree(self.directory)

    def _config_matches(self) -> bool:
        try:
            with open(self.directory / _META_NAME, encoding="utf-8") as stream:
                return json.load(stream) == self.config
        except (OSError, json.JSONDecodeError):
            return False

    def _chunk_path(self, key: str) -> Path:
        return self.directory / f"{key}.npy"

    # -- persistence -------------------------------------------------------

    def completed(self) -> set[str]:
        """Keys of every chunk already persisted."""
        if not self.directory.is_dir():
            return set()
        return {path.stem for path in self.directory.glob("*.npy")}

    def load(self, key: str) -> np.ndarray | None:
        """Persisted outcomes for *key*, or ``None`` (also on damage)."""
        path = self._chunk_path(key)
        if not path.is_file():
            return None
        try:
            return np.load(path, allow_pickle=False)
        except (OSError, ValueError):
            return None  # half-written chunk from a pre-atomic writer

    def store(self, key: str, outcomes: np.ndarray) -> None:
        """Atomically persist one chunk."""
        if not (self.directory / _META_NAME).is_file():
            self.directory.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(
                self.directory / _META_NAME,
                (json.dumps(self.config, indent=2, sort_keys=True) + "\n").encode(
                    "utf-8"
                ),
            )
        buffer = io.BytesIO()
        np.save(buffer, np.ascontiguousarray(outcomes))
        atomic_write_bytes(self._chunk_path(key), buffer.getvalue())
        if self.telemetry.enabled:
            self.telemetry.emit(
                "checkpoint_write", key=key, bytes=buffer.getbuffer().nbytes
            )
            self.telemetry.counter("checkpoint.writes").add(1)

    def discard(self) -> None:
        """Delete the checkpoint (after the final artifact is persisted)."""
        if self.directory.exists():
            shutil.rmtree(self.directory, ignore_errors=True)
