"""Per-directory ``MANIFEST.json`` with SHA-256 checksums.

Each artifact directory (``artifacts/weights``, ``artifacts/exhaustive``)
carries a manifest mapping file names to their checksum and size.  Writers
update the manifest atomically after every artifact write; readers verify
the checksum before trusting an artifact, which catches both truncation
and silent staleness (an artifact swapped without going through the
store).
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path

from repro.store.atomic import atomic_write_bytes

MANIFEST_NAME = "MANIFEST.json"
_MANIFEST_VERSION = 1


def sha256_file(path: str | os.PathLike, *, chunk_size: int = 1 << 20) -> str:
    """Hex SHA-256 digest of a file, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as stream:
        while chunk := stream.read(chunk_size):
            digest.update(chunk)
    return digest.hexdigest()


def manifest_path(directory: str | os.PathLike) -> Path:
    return Path(directory) / MANIFEST_NAME


def load_manifest(directory: str | os.PathLike) -> dict:
    """Manifest entries for *directory* (``{}`` when absent or unreadable)."""
    path = manifest_path(directory)
    try:
        with open(path, encoding="utf-8") as stream:
            data = json.load(stream)
    except (OSError, json.JSONDecodeError):
        return {}
    entries = data.get("artifacts")
    return entries if isinstance(entries, dict) else {}


def _save_manifest(directory: Path, entries: dict) -> None:
    payload = {
        "version": _MANIFEST_VERSION,
        "artifacts": {name: entries[name] for name in sorted(entries)},
    }
    atomic_write_bytes(
        manifest_path(directory),
        (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )


def record_artifact(path: str | os.PathLike) -> dict:
    """Record (or refresh) *path* in its directory's manifest.

    Returns the manifest entry written.  Must be called after the artifact
    itself has been renamed into place.
    """
    path = Path(path)
    entry = {
        "sha256": sha256_file(path),
        "size": path.stat().st_size,
        "updated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    entries = load_manifest(path.parent)
    entries[path.name] = entry
    _save_manifest(path.parent, entries)
    return entry


def forget_artifact(path: str | os.PathLike) -> None:
    """Drop *path* from its directory's manifest, if listed."""
    path = Path(path)
    entries = load_manifest(path.parent)
    if path.name in entries:
        del entries[path.name]
        _save_manifest(path.parent, entries)


def write_manifest(
    directory: str | os.PathLike,
    *,
    pattern: str = "*.npz",
    names: list[str] | None = None,
) -> dict:
    """Rebuild the manifest for *directory*.

    Covers every *pattern* file, or exactly *names* when given (so callers
    can exclude files that failed structural validation).
    """
    directory = Path(directory)
    entries = {}
    paths = (
        [directory / name for name in names]
        if names is not None
        else sorted(directory.glob(pattern))
    )
    for path in paths:
        entries[path.name] = {
            "sha256": sha256_file(path),
            "size": path.stat().st_size,
            "updated": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        }
    _save_manifest(directory, entries)
    return entries


def verify_artifact(path: str | os.PathLike) -> str | None:
    """Check *path* against its directory manifest.

    Returns ``None`` when the checksum matches or the file is simply not
    listed (no manifest yet — legal for hand-placed artifacts), otherwise
    a human-readable description of the mismatch.
    """
    path = Path(path)
    if not path.is_file():
        return "file is missing"
    entry = load_manifest(path.parent).get(path.name)
    if entry is None:
        return None
    size = path.stat().st_size
    if size != entry.get("size"):
        return (
            f"size mismatch (manifest records {entry.get('size')} bytes, "
            f"file has {size})"
        )
    digest = sha256_file(path)
    if digest != entry.get("sha256"):
        return (
            "SHA-256 mismatch (file changed without going through the "
            "store, or is stale/corrupt)"
        )
    return None


@dataclass
class DirectoryReport:
    """Outcome of verifying one artifact directory."""

    directory: Path
    ok: list[str] = field(default_factory=list)
    unlisted: list[str] = field(default_factory=list)
    #: name -> failure description (checksum/size/zip problems).
    failed: dict[str, str] = field(default_factory=dict)
    #: manifest entries whose files are gone.
    missing: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.failed and not self.missing


def verify_directory(
    directory: str | os.PathLike, *, pattern: str = "*.npz"
) -> DirectoryReport:
    """Verify every *pattern* file in *directory* against its manifest.

    Zip-structure validation is left to callers (see
    :func:`repro.store.npz.validate_npz`); this checks existence and
    checksums only.
    """
    directory = Path(directory)
    report = DirectoryReport(directory=directory)
    entries = load_manifest(directory)
    present = {path.name for path in directory.glob(pattern)}
    for name in sorted(entries):
        if name not in present:
            report.missing.append(name)
    for name in sorted(present):
        problem = verify_artifact(directory / name)
        if problem is None and name not in entries:
            report.unlisted.append(name)
        elif problem is None:
            report.ok.append(name)
        else:
            report.failed[name] = problem
    return report
