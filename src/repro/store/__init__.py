"""Verified artifact store.

Every artifact the reproduction depends on — trained weights, exhaustive
outcome tables, campaign checkpoints — goes through this package:

- :mod:`repro.store.atomic` writes files atomically (temp file + fsync +
  rename), so a killed process never leaves a half-written archive behind.
- :mod:`repro.store.manifest` maintains a ``MANIFEST.json`` per artifact
  directory with the SHA-256 of every artifact, and verifies it on load.
- :mod:`repro.store.npz` is the verified ``.npz`` reader/writer: it
  validates the zip structure and the manifest checksum before handing
  arrays out, and raises :class:`~repro.store.errors.CorruptArtifactError`
  naming the offending file and the exact regeneration command.
- :mod:`repro.store.salvage` recovers intact members from an ``.npz``
  whose zip central directory is damaged (the seed-corruption incident
  that motivated this package).
- :mod:`repro.store.checkpoint` persists campaign progress chunk by
  chunk, so a killed exhaustive run resumes where it stopped.
"""

from repro.store.atomic import (
    atomic_append_line,
    atomic_savez,
    atomic_write,
    atomic_write_bytes,
)
from repro.store.checkpoint import CampaignCheckpoint
from repro.store.errors import ArtifactError, CorruptArtifactError
from repro.store.manifest import (
    MANIFEST_NAME,
    load_manifest,
    record_artifact,
    sha256_file,
    verify_artifact,
    verify_directory,
    write_manifest,
)
from repro.store.npz import (
    load_verified_npz,
    save_verified_npz,
    validate_artifact,
    validate_npz,
)
from repro.store.salvage import salvage_npz

__all__ = [
    "ArtifactError",
    "CorruptArtifactError",
    "CampaignCheckpoint",
    "MANIFEST_NAME",
    "atomic_append_line",
    "atomic_savez",
    "atomic_write",
    "atomic_write_bytes",
    "load_manifest",
    "load_verified_npz",
    "record_artifact",
    "salvage_npz",
    "save_verified_npz",
    "sha256_file",
    "validate_artifact",
    "validate_npz",
    "verify_artifact",
    "verify_directory",
    "write_manifest",
]
