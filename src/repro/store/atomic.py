"""Atomic file writes: temp file + fsync + rename.

A write that dies mid-way must never leave a partial file at the final
path — the seed artifacts of this repository were truncated zip archives
produced by exactly that failure mode.  All writers here stage into a
temporary file in the destination directory, fsync it, then ``os.replace``
it over the final name (atomic on POSIX when source and destination share
a filesystem, which the same-directory temp file guarantees).
"""

from __future__ import annotations

import io
import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import BinaryIO, Iterator

import numpy as np


@contextmanager
def atomic_write(path: str | os.PathLike) -> Iterator[BinaryIO]:
    """Context manager yielding a binary stream that lands atomically.

    On clean exit the staged bytes are fsynced and renamed over *path*;
    on any exception the temp file is removed and *path* is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as stream:
            yield stream
            stream.flush()
            os.fsync(stream.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Atomically write *data* to *path*."""
    with atomic_write(path) as stream:
        stream.write(data)


def atomic_append_line(path: str | os.PathLike, line: str) -> None:
    """Append one text line to *path* as a single ``write`` syscall.

    ``O_APPEND`` makes each write land at the (current) end of file even
    when several processes append concurrently — POSIX guarantees the
    offset update and the write are one atomic step — and writing the
    whole line in one syscall means readers never observe an interleaved
    or torn line from a *completed* append.  A crash mid-write can still
    truncate the final line, which is why journal readers must tolerate a
    malformed last record.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not line.endswith("\n"):
        line += "\n"
    data = line.encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, data)
    finally:
        os.close(fd)


def atomic_savez(path: str | os.PathLike, **arrays: np.ndarray) -> None:
    """Atomic, compressed equivalent of :func:`numpy.savez_compressed`.

    The archive is assembled fully in memory (artifacts here are small),
    then staged and renamed, so readers never observe a truncated zip.
    """
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    atomic_write_bytes(path, buffer.getvalue())
