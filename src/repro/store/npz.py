"""Verified ``.npz`` reader/writer built on the atomic store.

``save_verified_npz`` writes atomically and records the artifact in its
directory's ``MANIFEST.json``.  ``load_verified_npz`` validates the zip
structure and the manifest checksum *before* handing arrays out; every
failure mode surfaces as a :class:`~repro.store.errors.CorruptArtifactError`
naming the file and the regeneration command.
"""

from __future__ import annotations

import os
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.store.atomic import atomic_savez
from repro.store.errors import CorruptArtifactError
from repro.store.manifest import record_artifact, verify_artifact


def save_verified_npz(
    path: str | os.PathLike,
    arrays: dict[str, np.ndarray],
    *,
    manifest: bool = True,
) -> None:
    """Atomically write *arrays* to *path* and update the manifest."""
    atomic_savez(path, **arrays)
    if manifest:
        record_artifact(path)


def validate_npz(path: str | os.PathLike) -> str | None:
    """Structural zip validation of an ``.npz`` file.

    Returns ``None`` when the archive is readable end to end, otherwise a
    description of the damage (missing central directory, truncated or
    CRC-failing members, ...).
    """
    path = Path(path)
    if not path.is_file():
        return "file is missing"
    if path.stat().st_size == 0:
        return "file is empty"
    try:
        with zipfile.ZipFile(path) as archive:
            bad_member = archive.testzip()
    except zipfile.BadZipFile as exc:
        return f"truncated or damaged zip archive ({exc})"
    except (OSError, zlib.error) as exc:
        return f"unreadable archive ({exc})"
    if bad_member is not None:
        return f"member {bad_member!r} fails its CRC check"
    return None


def validate_artifact(path: str | os.PathLike) -> str | None:
    """Full integrity check: manifest checksum, then zip structure."""
    return verify_artifact(path) or validate_npz(path)


def load_verified_npz(
    path: str | os.PathLike,
    *,
    regenerate: str | None = None,
) -> dict[str, np.ndarray]:
    """Load an ``.npz`` after validating manifest checksum and structure.

    *regenerate* is the command to include in the error when validation
    fails (e.g. ``python examples/train_models.py --model resnet8_mini``).
    """
    path = Path(path)
    problem = validate_artifact(path)
    if problem is not None:
        raise CorruptArtifactError(path, reason=problem, regenerate=regenerate)
    try:
        with np.load(path, allow_pickle=False) as archive:
            return {name: archive[name] for name in archive.files}
    except (zipfile.BadZipFile, OSError, ValueError, zlib.error) as exc:
        raise CorruptArtifactError(
            path,
            reason=f"archive validated but failed to load ({exc})",
            regenerate=regenerate,
        ) from exc
