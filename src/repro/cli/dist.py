"""``repro-dist``: drive a sharded campaign across processes and hosts.

One campaign lives in one queue directory; the subcommands mirror the
shard lifecycle:

- ``submit`` — plan the campaign, split it into shards and publish them
  (idempotent: resubmitting the same campaign resumes it);
- ``work`` — drain shards from the queue until it is empty.  Run as many
  ``work`` processes as you like, on any host that sees the queue
  directory; each verifies its rebuilt engine against the campaign's
  config fingerprint before classifying anything;
- ``status`` — show pending/leased/done/poisoned shards and lease
  deadlines;
- ``merge`` — deterministically reassemble the shard results into the
  campaign result (bit-identical to a serial run), refusing incomplete
  queues and mismatched config fingerprints.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.cli import (
    add_telemetry_arguments,
    finish_telemetry,
    telemetry_from_args,
)
from repro.data import SynthCIFAR
from repro.dist import (
    DistError,
    ExhaustiveContext,
    SampledContext,
    ShardQueue,
    ShardWorker,
    config_hash,
    make_exhaustive_shards,
    make_sampled_shards,
    merge_exhaustive,
    merge_sampled,
    sampled_config,
    verify_context_config,
)
from repro.faults import (
    FaultSpace,
    InferenceOracle,
    TableOracle,
)
from repro.models import MODELS, create_model
from repro.sfi import (
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
)

_PLANNERS = {
    "network-wise": NetworkWiseSFI,
    "layer-wise": LayerWiseSFI,
    "data-unaware": DataUnawareSFI,
    "data-aware": DataAwareSFI,
}


def _build_engine(runtime: dict, *, telemetry=None):
    """Rebuild the campaign's engine/space from its runtime record.

    Deterministic: pretrained weights plus the seeded synthetic eval
    set, so every host reconstructs the same engine fingerprint (and
    ``verify_context_config`` can prove it did).
    """
    from repro.runtime import create_engine

    model = create_model(runtime["model"], pretrained=True)
    data = SynthCIFAR("test", size=int(runtime["eval_size"]), seed=1234)
    engine = create_engine(
        model,
        data.images,
        data.labels,
        # Queues submitted before engine selection existed carry no
        # "engine" key; they were computed by the module engine.
        kind=runtime.get("engine", "module"),
        policy=runtime.get("policy", "accuracy_drop"),
        fuse=bool(runtime.get("fuse", False)),
        telemetry=telemetry,
    )
    return engine, FaultSpace(engine.layers)


def _build_plan(runtime: dict, space: FaultSpace):
    planner = _PLANNERS[runtime["method"]](
        float(runtime["error_margin"]), float(runtime["confidence"])
    )
    return planner.plan(space)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dist",
        description=(
            "Shard a fault-injection campaign into a file-backed work "
            "queue, drain it with any number of workers, and merge the "
            "results bit-identically to a serial run."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", help="split a campaign into shards and enqueue them"
    )
    submit.add_argument("root", type=Path, help="queue directory")
    submit.add_argument(
        "--kind",
        default="exhaustive",
        choices=("exhaustive", "sampled"),
        help="campaign kind (default: exhaustive)",
    )
    submit.add_argument(
        "--model",
        default="resnet8_mini",
        choices=sorted(name for name in MODELS if name.endswith("_mini")),
    )
    submit.add_argument("--eval-size", type=int, default=64)
    submit.add_argument("--policy", default="accuracy_drop")
    submit.add_argument(
        "--engine",
        default="plan",
        choices=("plan", "plan_vectorized", "module"),
        help="execution engine; unfused plan, vectorized and module "
        "outcomes are bit-identical (default: plan)",
    )
    submit.add_argument(
        "--fuse",
        action="store_true",
        help="enable the plan engine's numeric-changing fusions "
        "(BN-folding, workspace reuse); changes the campaign fingerprint",
    )
    submit.add_argument(
        "--shards", type=int, default=4, help="shard count (default: 4)"
    )
    submit.add_argument(
        "--method",
        default="data-unaware",
        choices=sorted(_PLANNERS),
        help="SFI method for --kind sampled (default: data-unaware)",
    )
    submit.add_argument("--error-margin", type=float, default=0.01)
    submit.add_argument("--confidence", type=float, default=0.99)
    submit.add_argument("--seed", type=int, default=0)

    work = sub.add_parser(
        "work", help="claim and execute shards until the queue is drained"
    )
    work.add_argument("root", type=Path, help="queue directory")
    work.add_argument(
        "--worker-id",
        default=None,
        help="stable worker name for leases/telemetry (default: host:pid)",
    )
    work.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="lease lifetime; renewed on every completed unit "
        "(default: 30)",
    )
    work.add_argument("--max-attempts", type=int, default=3)
    work.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="stop after completing this many shards (default: drain)",
    )
    work.add_argument(
        "--no-wait",
        action="store_true",
        help="exit when no shard is claimable instead of idling through "
        "other workers' leases and backoff windows",
    )
    work.add_argument(
        "--live",
        action="store_true",
        help="sampled campaigns: really inject each fault instead of "
        "replaying the cached exhaustive outcomes",
    )
    work.add_argument(
        "--engine",
        default=None,
        choices=("plan", "plan_vectorized"),
        help="exhaustive campaigns: run this worker's shards on a "
        "different engine than the campaign was submitted with; "
        "accepted only when the verifier attests both engines' "
        "fingerprints outcome-compatible",
    )
    add_telemetry_arguments(work)

    status = sub.add_parser("status", help="show the queue's state")
    status.add_argument("root", type=Path, help="queue directory")
    status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    merge = sub.add_parser(
        "merge", help="reassemble shard results into the campaign result"
    )
    merge.add_argument("root", type=Path, help="queue directory")
    merge.add_argument(
        "--out",
        type=Path,
        default=None,
        help="exhaustive campaigns: save the merged OutcomeTable here "
        "(verified .npz)",
    )
    add_telemetry_arguments(merge)
    return parser


# -- submit ----------------------------------------------------------------


def _cmd_submit(args) -> int:
    engine, space = _build_engine(
        {
            "model": args.model,
            "eval_size": args.eval_size,
            "policy": args.policy,
            "engine": args.engine,
            "fuse": args.fuse,
        }
    )
    runtime = {
        "model": args.model,
        "eval_size": args.eval_size,
        "policy": args.policy,
        "engine": args.engine,
        "fuse": bool(args.fuse),
        "golden_accuracy": engine.golden_accuracy,
    }
    if getattr(engine, "plan_fingerprint", None) is not None:
        # Pin the verified plan structure: the merge refuses shard
        # results that do not attest this fingerprint.
        runtime["plan_sha256"] = engine.plan_fingerprint
    if args.kind == "exhaustive":
        config, specs = make_exhaustive_shards(
            engine, space, shards=args.shards
        )
    else:
        plan = _build_plan(
            {
                "method": args.method,
                "error_margin": args.error_margin,
                "confidence": args.confidence,
            },
            space,
        )
        config, specs = make_sampled_shards(
            plan,
            space,
            seed=args.seed,
            shards=args.shards,
            golden_sha256=engine.fingerprint(),
        )
        runtime.update(
            method=args.method,
            error_margin=args.error_margin,
            confidence=args.confidence,
            seed=args.seed,
        )
    queue = ShardQueue(args.root)
    enqueued = queue.submit(specs, config=config, runtime=runtime)
    status = queue.status()
    print(
        f"submitted {args.kind} campaign "
        f"{config_hash(config)[:12]} for {args.model}: "
        f"{len(specs)} shard(s), {enqueued} enqueued "
        f"({len(status.done)} already done)"
    )
    print(f"drain it with: repro-dist work {args.root}")
    return 0


# -- work ------------------------------------------------------------------


def _cmd_work(args) -> int:
    queue = ShardQueue(args.root)
    campaign = queue.campaign()
    config = campaign["config"]
    runtime = campaign.get("runtime", {})
    telemetry = telemetry_from_args(args)
    if config["kind"] == "exhaustive":
        if args.engine:
            runtime = dict(runtime, engine=args.engine)
        engine, space = _build_engine(runtime, telemetry=telemetry)
        expected_plan = campaign.get("runtime", {}).get("plan_sha256")
        rebuilt_plan = getattr(engine, "plan_fingerprint", None)
        if expected_plan is not None and rebuilt_plan != expected_plan:
            # A mixed-engine fleet is legitimate exactly when the
            # verifier attested both plans bit-identical in outcomes.
            from repro.check import fingerprints_compatible

            if not fingerprints_compatible(
                str(rebuilt_plan), expected_plan
            ):
                raise DistError(
                    "execution-plan mismatch: the campaign was submitted "
                    f"for verified plan {expected_plan[:12]}, this worker "
                    f"captured {str(rebuilt_plan)[:12]} — refusing to "
                    "classify shards (not attested outcome-compatible)"
                )
        context = ExhaustiveContext(engine, space)
        verify_context_config(context, config)
    else:
        if args.engine:
            raise DistError(
                "--engine only applies to exhaustive campaigns; sampled "
                "workers replay or inject under the submitted engine"
            )
        engine, space = _build_engine(runtime, telemetry=telemetry)
        plan = _build_plan(runtime, space)
        rebuilt = sampled_config(
            plan,
            space,
            seed=int(runtime["seed"]),
            golden_sha256=engine.fingerprint(),
        )
        if config_hash(rebuilt) != campaign["config_hash"]:
            raise DistError(
                "this worker rebuilt a different sampled campaign "
                f"(config {config_hash(rebuilt)[:12]} vs submitted "
                f"{campaign['config_hash'][:12]}); model weights, eval "
                "set or planner inputs do not match the submission"
            )
        if args.live:
            oracle = InferenceOracle(engine)
        else:
            # Replay from the cached exhaustive table: bit-exact against
            # live injection and orders of magnitude faster.
            from repro.sfi.artifacts import load_or_run_exhaustive

            table, _space, _engine = load_or_run_exhaustive(
                runtime["model"],
                eval_size=int(runtime["eval_size"]),
                policy=runtime.get("policy", "accuracy_drop"),
                engine_kind=runtime.get("engine", "module"),
                fuse=bool(runtime.get("fuse", False)),
                telemetry=telemetry,
            )
            oracle = TableOracle(table, space)
        context = SampledContext(oracle, space, plan)
        verify_context_config(context, config)
    worker = ShardWorker(
        queue,
        context,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        telemetry=telemetry,
    )
    completed = worker.run(max_shards=args.max_shards, wait=not args.no_wait)
    status = queue.status()
    print(
        f"worker {worker.worker_id}: completed {completed} shard(s); "
        f"queue now {len(status.done)} done, {len(status.pending)} "
        f"pending, {len(status.leased)} leased, "
        f"{len(status.poisoned)} poisoned"
    )
    finish_telemetry(telemetry, args)
    return 0


# -- status ----------------------------------------------------------------


def _cmd_status(args) -> int:
    queue = ShardQueue(args.root)
    campaign = queue.campaign()
    status = queue.status()
    if args.json:
        print(
            json.dumps(
                {
                    "campaign_id": campaign["campaign_id"],
                    "kind": campaign["config"]["kind"],
                    "shards": len(campaign["shards"]),
                    "pending": status.pending,
                    "leased": status.leased,
                    "done": status.done,
                    "poisoned": status.poisoned,
                    "complete": status.complete,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    runtime = campaign.get("runtime", {})
    model = runtime.get("model", "?")
    print(
        f"campaign {campaign['campaign_id']} "
        f"[{campaign['config']['kind']}] on {model}: "
        f"{len(campaign['shards'])} shard(s)"
    )
    print(
        f"  done {len(status.done)}  pending {len(status.pending)}  "
        f"leased {len(status.leased)}  poisoned {len(status.poisoned)}"
    )
    for lease in status.leased:
        expires = lease["expires_in"]
        state = (
            f"expires in {expires:.1f}s" if expires > 0 else "EXPIRED"
        )
        print(
            f"  leased {lease['shard_id']} by {lease['worker']} "
            f"({lease['heartbeats']} heartbeats, {state})"
        )
    for spec in queue.poisoned():
        last = spec.history[-1] if spec.history else "unknown"
        print(
            f"  poisoned {spec.shard_id} after {spec.attempts} "
            f"attempts (last: {last})"
        )
    if status.complete and status.done:
        print(f"  all shards done — merge with: repro-dist merge {args.root}")
    return 0


# -- merge -----------------------------------------------------------------


def _cmd_merge(args) -> int:
    queue = ShardQueue(args.root)
    campaign = queue.campaign()
    telemetry = telemetry_from_args(args)
    if campaign["config"]["kind"] == "exhaustive":
        table = merge_exhaustive(queue, telemetry=telemetry)
        _criticals, population = table.total_counts()
        print(
            f"merged {len(campaign['shards'])} shard(s): "
            f"{population:,} faults, "
            f"network critical rate {table.total_rate() * 100:.3f}%"
        )
        if args.out is not None:
            table.save(args.out)
            print(f"table saved to {args.out}")
    else:
        runtime = campaign.get("runtime", {})
        _engine, space = _build_engine(runtime)
        result = merge_sampled(queue, space, telemetry=telemetry)
        print(result.summary())
        if args.out is not None:
            print(
                "repro-dist: note: --out applies to exhaustive campaigns "
                "only; sampled results are printed",
                file=sys.stderr,
            )
    finish_telemetry(telemetry, args)
    return 0


_COMMANDS = {
    "submit": _cmd_submit,
    "work": _cmd_work,
    "status": _cmd_status,
    "merge": _cmd_merge,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except DistError as exc:
        print(f"repro-dist: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
