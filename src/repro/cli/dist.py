"""``repro-dist``: drive a sharded campaign across processes and hosts.

One campaign lives in one queue directory; the subcommands mirror the
shard lifecycle:

- ``submit`` — plan the campaign, split it into shards and publish them
  (idempotent: resubmitting the same campaign resumes it);
- ``work`` — drain shards from the queue until it is empty.  Run as many
  ``work`` processes as you like, on any host that sees the queue
  directory; each verifies its rebuilt engine against the campaign's
  config fingerprint before classifying anything;
- ``status`` — show pending/leased/done/poisoned shards and lease
  deadlines;
- ``rebalance`` — observe per-worker pace from the lease files and
  split oversized *pending* shards for stragglers (the merge stays
  bit-identical: splitting only re-partitions work units along the
  stable shard-id rules);
- ``merge`` — deterministically reassemble the shard results into the
  campaign result (bit-identical to a serial run), refusing incomplete
  queues and mismatched config fingerprints.

``submit --auto`` closes the telemetry loop: a cost model fitted from a
measured journal (``--fit``) picks the engine kind, batch size and shard
granularity, and the resulting prediction is recorded with the campaign
so ``repro-stats`` can report predicted-vs-actual error afterwards.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.cli import (
    add_telemetry_arguments,
    finish_telemetry,
    telemetry_from_args,
)
from repro.data import SynthCIFAR
from repro.dist import (
    DistError,
    ExhaustiveContext,
    Rebalancer,
    SampledContext,
    ShardQueue,
    ShardWorker,
    config_hash,
    make_exhaustive_shards,
    make_sampled_shards,
    merge_exhaustive,
    merge_sampled,
    sampled_config,
    verify_context_config,
)
from repro.faults import (
    FaultSpace,
    InferenceOracle,
    TableOracle,
)
from repro.models import MODELS, create_model
from repro.sfi import (
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
)
from repro.telemetry import (
    CostModel,
    CostModelError,
    choose_submit_settings,
    fit_cost_model,
    load_bench,
    summarize_journal,
)

_PLANNERS = {
    "network-wise": NetworkWiseSFI,
    "layer-wise": LayerWiseSFI,
    "data-unaware": DataUnawareSFI,
    "data-aware": DataAwareSFI,
}


def _build_engine(runtime: dict, *, telemetry=None):
    """Rebuild the campaign's engine/space from its runtime record.

    Deterministic: pretrained weights plus the seeded synthetic eval
    set, so every host reconstructs the same engine fingerprint (and
    ``verify_context_config`` can prove it did).
    """
    from repro.runtime import create_engine

    model = create_model(runtime["model"], pretrained=True)
    data = SynthCIFAR("test", size=int(runtime["eval_size"]), seed=1234)
    engine = create_engine(
        model,
        data.images,
        data.labels,
        # Queues submitted before engine selection existed carry no
        # "engine" key; they were computed by the module engine.
        kind=runtime.get("engine", "module"),
        policy=runtime.get("policy", "accuracy_drop"),
        fuse=bool(runtime.get("fuse", False)),
        # Queues without a "backend" key predate kernel backends (or were
        # submitted on the reference); the worker's env still applies.
        backend=runtime.get("backend"),
        telemetry=telemetry,
    )
    return engine, FaultSpace(engine.layers)


def _build_plan(runtime: dict, space: FaultSpace):
    planner = _PLANNERS[runtime["method"]](
        float(runtime["error_margin"]), float(runtime["confidence"])
    )
    return planner.plan(space)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-dist",
        description=(
            "Shard a fault-injection campaign into a file-backed work "
            "queue, drain it with any number of workers, and merge the "
            "results bit-identically to a serial run."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    submit = sub.add_parser(
        "submit", help="split a campaign into shards and enqueue them"
    )
    submit.add_argument("root", type=Path, help="queue directory")
    submit.add_argument(
        "--kind",
        default="exhaustive",
        choices=("exhaustive", "sampled"),
        help="campaign kind (default: exhaustive)",
    )
    submit.add_argument(
        "--model",
        default="resnet8_mini",
        choices=sorted(name for name in MODELS if name.endswith("_mini")),
    )
    submit.add_argument("--eval-size", type=int, default=64)
    submit.add_argument("--policy", default="accuracy_drop")
    submit.add_argument(
        "--engine",
        default="plan",
        choices=("plan", "plan_vectorized", "module"),
        help="execution engine; unfused plan, vectorized and module "
        "outcomes are bit-identical (default: plan)",
    )
    submit.add_argument(
        "--fuse",
        action="store_true",
        help="enable the plan engine's numeric-changing fusions "
        "(BN-folding, workspace reuse); changes the campaign fingerprint",
    )
    submit.add_argument(
        "--backend",
        default=None,
        help="kernel backend (default: REPRO_BACKEND or the numpy "
        "reference); a non-reference backend's attestation joins the "
        "campaign fingerprint and workers rebuild with the same backend",
    )
    submit.add_argument(
        "--shards", type=int, default=4, help="shard count (default: 4)"
    )
    submit.add_argument(
        "--method",
        default="data-unaware",
        choices=sorted(_PLANNERS),
        help="SFI method for --kind sampled (default: data-unaware)",
    )
    submit.add_argument("--error-margin", type=float, default=0.01)
    submit.add_argument("--confidence", type=float, default=0.99)
    submit.add_argument("--seed", type=int, default=0)
    auto = submit.add_argument_group(
        "cost-model tuning (submit --auto)"
    )
    auto.add_argument(
        "--auto",
        action="store_true",
        help="pick engine kind, batch size and shard granularity from a "
        "cost model fitted from measured telemetry (needs --fit or "
        "--cost-model; exhaustive campaigns only)",
    )
    auto.add_argument(
        "--fit",
        type=Path,
        action="append",
        default=None,
        metavar="JOURNAL",
        help="fit the cost model from this telemetry journal (repeatable)",
    )
    auto.add_argument(
        "--cost-model",
        type=Path,
        default=None,
        metavar="JSON",
        help="load a saved cost model instead of fitting",
    )
    auto.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="JSON",
        help="engine-throughput bench for relative engine speeds "
        "(default: BENCH_engine.json when present)",
    )
    auto.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count the fleet will run with (shapes the --auto "
        "shard choice and the recorded prediction; default: 1)",
    )
    auto.add_argument(
        "--target-shard-seconds",
        type=float,
        default=30.0,
        help="target predicted wall time per shard for --auto "
        "(default: 30)",
    )
    add_telemetry_arguments(submit)

    work = sub.add_parser(
        "work", help="claim and execute shards until the queue is drained"
    )
    work.add_argument("root", type=Path, help="queue directory")
    work.add_argument(
        "--worker-id",
        default=None,
        help="stable worker name for leases/telemetry (default: host:pid)",
    )
    work.add_argument(
        "--lease-seconds",
        type=float,
        default=30.0,
        help="lease lifetime; renewed on every completed unit "
        "(default: 30)",
    )
    work.add_argument("--max-attempts", type=int, default=3)
    work.add_argument(
        "--max-shards",
        type=int,
        default=None,
        help="stop after completing this many shards (default: drain)",
    )
    work.add_argument(
        "--no-wait",
        action="store_true",
        help="exit when no shard is claimable instead of idling through "
        "other workers' leases and backoff windows",
    )
    work.add_argument(
        "--live",
        action="store_true",
        help="sampled campaigns: really inject each fault instead of "
        "replaying the cached exhaustive outcomes",
    )
    work.add_argument(
        "--engine",
        default=None,
        choices=("plan", "plan_vectorized"),
        help="exhaustive campaigns: run this worker's shards on a "
        "different engine than the campaign was submitted with; "
        "accepted only when the verifier attests both engines' "
        "fingerprints outcome-compatible",
    )
    work.add_argument(
        "--backend",
        default=None,
        help="exhaustive campaigns: run this worker's shards on a "
        "different kernel backend than the campaign was submitted "
        "with; refused unless the two backend-qualified plan "
        "fingerprints were declared outcome-compatible",
    )
    work.add_argument(
        "--heartbeat-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="minimum seconds between worker_heartbeat events (default: "
        "REPRO_HEARTBEAT_INTERVAL env, else one event per completed "
        "unit; leases renew per unit regardless)",
    )
    add_telemetry_arguments(work)

    status = sub.add_parser("status", help="show the queue's state")
    status.add_argument("root", type=Path, help="queue directory")
    status.add_argument(
        "--json", action="store_true", help="machine-readable output"
    )

    rebalance = sub.add_parser(
        "rebalance",
        help="split oversized pending shards for stragglers (one pass, "
        "or --watch until the queue drains)",
    )
    rebalance.add_argument("root", type=Path, help="queue directory")
    rebalance.add_argument(
        "--target-shard-seconds",
        type=float,
        default=30.0,
        help="split pending shards predicted to exceed this wall time "
        "at the observed fleet pace (default: 30)",
    )
    rebalance.add_argument(
        "--straggler-ratio",
        type=float,
        default=0.5,
        help="a worker below this fraction of the median unit rate is a "
        "straggler; the slowest pace then prices pending shards "
        "(default: 0.5)",
    )
    rebalance.add_argument(
        "--min-units",
        type=int,
        default=2,
        help="never produce child shards smaller than this many units "
        "(default: 2)",
    )
    rebalance.add_argument(
        "--watch",
        action="store_true",
        help="keep rebalancing until the queue drains instead of one pass",
    )
    rebalance.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between --watch passes (default: 1)",
    )
    add_telemetry_arguments(rebalance)

    merge = sub.add_parser(
        "merge", help="reassemble shard results into the campaign result"
    )
    merge.add_argument("root", type=Path, help="queue directory")
    merge.add_argument(
        "--out",
        type=Path,
        default=None,
        help="exhaustive campaigns: save the merged OutcomeTable here "
        "(verified .npz)",
    )
    add_telemetry_arguments(merge)
    return parser


# -- submit ----------------------------------------------------------------


def _submit_cost_model(args) -> CostModel | None:
    """Build the submit-time cost model, or ``None`` when not asked for."""
    if args.cost_model is not None:
        model = CostModel.load(args.cost_model)
    elif args.fit:
        summaries = []
        for journal in args.fit:
            summaries.extend(summarize_journal(journal))
        model = fit_cost_model(summaries)
    elif args.auto:
        raise CostModelError(
            "submit --auto needs measurements: pass --fit <journal> "
            "(a campaign run with --trace) or --cost-model <json>"
        )
    else:
        return None
    bench_path = args.bench
    if bench_path is None and Path("BENCH_engine.json").is_file():
        bench_path = Path("BENCH_engine.json")
    if bench_path is not None:
        model.engine_rates = dict(load_bench(bench_path))
    return model


def _cmd_submit(args) -> int:
    cost_model = _submit_cost_model(args)
    if args.auto:
        if args.kind != "exhaustive":
            raise DistError(
                "submit --auto tunes exhaustive campaigns; sampled "
                "campaigns are priced by their plan instead"
            )
        # The auto choice needs the fault space before the engine is
        # built; the module-engine space is identical (same model), so
        # build cheap, choose, then rebuild with the chosen engine.
        probe_model = create_model(args.model, pretrained=True)
        choice = choose_submit_settings(
            cost_model,
            FaultSpace(probe_model),
            workers=args.workers,
            target_shard_seconds=args.target_shard_seconds,
            model=args.model,
        )
        args.engine = choice.engine
        args.shards = choice.shards
        print(
            f"auto: engine={choice.engine} batch={choice.batch_size} "
            f"shards={choice.shards} -> predicted "
            f"{choice.prediction.wall_seconds:.2f}s wall at "
            f"{args.workers} worker(s)"
        )
    engine, space = _build_engine(
        {
            "model": args.model,
            "eval_size": args.eval_size,
            "policy": args.policy,
            "engine": args.engine,
            "fuse": args.fuse,
            "backend": args.backend,
        }
    )
    runtime = {
        "model": args.model,
        "eval_size": args.eval_size,
        "policy": args.policy,
        "engine": args.engine,
        "fuse": bool(args.fuse),
        "golden_accuracy": engine.golden_accuracy,
    }
    engine_backend = getattr(engine, "backend", None)
    if engine_backend is not None and not engine_backend.is_reference:
        # Pin the resolved backend by name so every worker rebuilds with
        # it regardless of the worker host's own REPRO_BACKEND.
        runtime["backend"] = engine_backend.name
    if getattr(engine, "plan_fingerprint", None) is not None:
        # Pin the verified plan structure: the merge refuses shard
        # results that do not attest this fingerprint.
        runtime["plan_sha256"] = engine.plan_fingerprint
    if args.kind == "exhaustive":
        config, specs = make_exhaustive_shards(
            engine, space, shards=args.shards
        )
    else:
        plan = _build_plan(
            {
                "method": args.method,
                "error_margin": args.error_margin,
                "confidence": args.confidence,
            },
            space,
        )
        config, specs = make_sampled_shards(
            plan,
            space,
            seed=args.seed,
            shards=args.shards,
            golden_sha256=engine.fingerprint(),
        )
        runtime.update(
            method=args.method,
            error_margin=args.error_margin,
            confidence=args.confidence,
            seed=args.seed,
        )
    prediction = None
    if cost_model is not None:
        if args.kind == "exhaustive":
            prediction = cost_model.predict_exhaustive(
                space,
                engine=args.engine,
                workers=args.workers,
                shards=len(specs),
                model=args.model,
            )
        else:
            prediction = cost_model.predict_sampled(
                plan,
                engine=args.engine,
                workers=args.workers,
                shards=len(specs),
                model=args.model,
            )
        # Recorded with the campaign AND journalled, so repro-stats can
        # hold the model to account once the fleet has run.
        runtime["prediction"] = prediction.to_dict()
        print(
            f"predicted: {prediction.wall_seconds:.2f}s wall at "
            f"{args.workers} worker(s), {prediction.fault_evals:,} "
            "fault-evals"
        )
    queue = ShardQueue(args.root)
    enqueued = queue.submit(specs, config=config, runtime=runtime)
    telemetry = telemetry_from_args(args)
    if telemetry is not None and telemetry.enabled and prediction is not None:
        telemetry.emit("campaign_predicted", **prediction.event_fields())
    status = queue.status()
    print(
        f"submitted {args.kind} campaign "
        f"{config_hash(config)[:12]} for {args.model}: "
        f"{len(specs)} shard(s), {enqueued} enqueued "
        f"({len(status.done)} already done)"
    )
    print(f"drain it with: repro-dist work {args.root}")
    finish_telemetry(telemetry, args)
    return 0


# -- work ------------------------------------------------------------------


def _cmd_work(args) -> int:
    queue = ShardQueue(args.root)
    campaign = queue.campaign()
    config = campaign["config"]
    runtime = campaign.get("runtime", {})
    telemetry = telemetry_from_args(args)
    if config["kind"] == "exhaustive":
        if args.engine:
            runtime = dict(runtime, engine=args.engine)
        if args.backend:
            runtime = dict(runtime, backend=args.backend)
        engine, space = _build_engine(runtime, telemetry=telemetry)
        expected_plan = campaign.get("runtime", {}).get("plan_sha256")
        rebuilt_plan = getattr(engine, "plan_fingerprint", None)
        if expected_plan is not None and rebuilt_plan != expected_plan:
            # A mixed-engine fleet is legitimate exactly when the
            # verifier attested both plans bit-identical in outcomes.
            from repro.check import fingerprints_compatible

            if not fingerprints_compatible(
                str(rebuilt_plan), expected_plan
            ):
                raise DistError(
                    "execution-plan mismatch: the campaign was submitted "
                    f"for verified plan {expected_plan[:12]}, this worker "
                    f"captured {str(rebuilt_plan)[:12]} — refusing to "
                    "classify shards (not attested outcome-compatible)"
                )
        context = ExhaustiveContext(engine, space)
        verify_context_config(context, config)
    else:
        if args.engine or args.backend:
            raise DistError(
                "--engine/--backend only apply to exhaustive campaigns; "
                "sampled workers replay or inject under the submitted "
                "engine and backend"
            )
        engine, space = _build_engine(runtime, telemetry=telemetry)
        plan = _build_plan(runtime, space)
        rebuilt = sampled_config(
            plan,
            space,
            seed=int(runtime["seed"]),
            golden_sha256=engine.fingerprint(),
        )
        if config_hash(rebuilt) != campaign["config_hash"]:
            raise DistError(
                "this worker rebuilt a different sampled campaign "
                f"(config {config_hash(rebuilt)[:12]} vs submitted "
                f"{campaign['config_hash'][:12]}); model weights, eval "
                "set or planner inputs do not match the submission"
            )
        if args.live:
            oracle = InferenceOracle(engine)
        else:
            # Replay from the cached exhaustive table: bit-exact against
            # live injection and orders of magnitude faster.
            from repro.sfi.artifacts import load_or_run_exhaustive

            table, _space, _engine = load_or_run_exhaustive(
                runtime["model"],
                eval_size=int(runtime["eval_size"]),
                policy=runtime.get("policy", "accuracy_drop"),
                engine_kind=runtime.get("engine", "module"),
                fuse=bool(runtime.get("fuse", False)),
                backend=runtime.get("backend"),
                telemetry=telemetry,
            )
            oracle = TableOracle(table, space)
        context = SampledContext(oracle, space, plan)
        verify_context_config(context, config)
    worker = ShardWorker(
        queue,
        context,
        worker_id=args.worker_id,
        lease_seconds=args.lease_seconds,
        max_attempts=args.max_attempts,
        heartbeat_interval=args.heartbeat_interval,
        telemetry=telemetry,
    )
    completed = worker.run(max_shards=args.max_shards, wait=not args.no_wait)
    status = queue.status()
    print(
        f"worker {worker.worker_id}: completed {completed} shard(s); "
        f"queue now {len(status.done)} done, {len(status.pending)} "
        f"pending, {len(status.leased)} leased, "
        f"{len(status.poisoned)} poisoned"
    )
    finish_telemetry(telemetry, args)
    return 0


# -- status ----------------------------------------------------------------


def _cmd_status(args) -> int:
    queue = ShardQueue(args.root)
    campaign = queue.campaign()
    status = queue.status()
    if args.json:
        print(
            json.dumps(
                {
                    "campaign_id": campaign["campaign_id"],
                    "kind": campaign["config"]["kind"],
                    "shards": len(campaign["shards"]),
                    "pending": status.pending,
                    "leased": status.leased,
                    "done": status.done,
                    "poisoned": status.poisoned,
                    "complete": status.complete,
                },
                indent=2,
                sort_keys=True,
            )
        )
        return 0
    runtime = campaign.get("runtime", {})
    model = runtime.get("model", "?")
    print(
        f"campaign {campaign['campaign_id']} "
        f"[{campaign['config']['kind']}] on {model}: "
        f"{len(campaign['shards'])} shard(s)"
    )
    print(
        f"  done {len(status.done)}  pending {len(status.pending)}  "
        f"leased {len(status.leased)}  poisoned {len(status.poisoned)}"
    )
    for lease in status.leased:
        expires = lease["expires_in"]
        state = (
            f"expires in {expires:.1f}s" if expires > 0 else "EXPIRED"
        )
        print(
            f"  leased {lease['shard_id']} by {lease['worker']} "
            f"({lease['heartbeats']} heartbeats, {state})"
        )
    for spec in queue.poisoned():
        last = spec.history[-1] if spec.history else "unknown"
        print(
            f"  poisoned {spec.shard_id} after {spec.attempts} "
            f"attempts (last: {last})"
        )
    if status.complete and status.done:
        print(f"  all shards done — merge with: repro-dist merge {args.root}")
    return 0


# -- rebalance -------------------------------------------------------------


def _prior_seconds_per_unit(campaign: dict) -> float | None:
    """Pace prior from the campaign's recorded submit-time prediction.

    Lets the rebalancer split a too-coarse campaign before any lease has
    been observed.  Exhaustive campaigns only: the unit count (cells) is
    derivable from the config, a sampled plan's item count is not.
    """
    runtime = campaign.get("runtime", {})
    prediction = runtime.get("prediction")
    config = campaign.get("config", {})
    if not prediction or config.get("kind") != "exhaustive":
        return None
    layer_sizes = config.get("layer_sizes")
    bits = config.get("bits")
    serial = prediction.get("serial_seconds")
    if not layer_sizes or not bits or not serial:
        return None
    cells = len(layer_sizes) * int(bits)
    if cells <= 0:
        return None
    return float(serial) / cells


def _cmd_rebalance(args) -> int:
    queue = ShardQueue(args.root)
    campaign = queue.campaign()
    telemetry = telemetry_from_args(args)
    rebalancer = Rebalancer(
        queue,
        target_shard_seconds=args.target_shard_seconds,
        straggler_ratio=args.straggler_ratio,
        min_units=args.min_units,
        seconds_per_unit=_prior_seconds_per_unit(campaign),
        telemetry=telemetry,
    )
    while True:
        report = rebalancer.tick()
        for shard_id in report.recovered:
            print(f"recovered interrupted split of {shard_id}")
        pace = (
            f"{report.seconds_per_unit:.3f}s/unit"
            if report.seconds_per_unit
            else "unknown pace"
        )
        stragglers = (
            f", stragglers: {', '.join(report.stragglers)}"
            if report.stragglers
            else ""
        )
        print(
            f"observed {len(report.rates)} lease(s) ({pace}{stragglers}); "
            f"split {report.split_count} shard(s)"
        )
        for parent, children in report.splits:
            print(f"  {parent} -> {', '.join(children)}")
        if not args.watch:
            break
        status = queue.status()
        if not status.pending and not status.leased:
            break
        time.sleep(args.interval)
    finish_telemetry(telemetry, args)
    return 0


# -- merge -----------------------------------------------------------------


def _cmd_merge(args) -> int:
    queue = ShardQueue(args.root)
    campaign = queue.campaign()
    telemetry = telemetry_from_args(args)
    if campaign["config"]["kind"] == "exhaustive":
        table = merge_exhaustive(queue, telemetry=telemetry)
        _criticals, population = table.total_counts()
        print(
            f"merged {len(campaign['shards'])} shard(s): "
            f"{population:,} faults, "
            f"network critical rate {table.total_rate() * 100:.3f}%"
        )
        if args.out is not None:
            table.save(args.out)
            print(f"table saved to {args.out}")
    else:
        runtime = campaign.get("runtime", {})
        _engine, space = _build_engine(runtime)
        result = merge_sampled(queue, space, telemetry=telemetry)
        print(result.summary())
        if args.out is not None:
            print(
                "repro-dist: note: --out applies to exhaustive campaigns "
                "only; sampled results are printed",
                file=sys.stderr,
            )
    finish_telemetry(telemetry, args)
    return 0


_COMMANDS = {
    "submit": _cmd_submit,
    "work": _cmd_work,
    "status": _cmd_status,
    "rebalance": _cmd_rebalance,
    "merge": _cmd_merge,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except (DistError, CostModelError) as exc:
        print(f"repro-dist: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
