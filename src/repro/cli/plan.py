"""``repro-plan``: print SFI campaign plans for a model."""

from __future__ import annotations

import argparse

from repro.faults import FaultSpace
from repro.models import MODELS, create_model
from repro.analysis import render_plan_table
from repro.sfi import (
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
)
from repro.stats import proportional_allocation


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description=(
            "Compute statistical fault-injection sample sizes (paper Eq. 1/3) "
            "for a model, in the paper's Table I layout."
        ),
    )
    parser.add_argument(
        "--model",
        default="resnet20",
        choices=sorted(MODELS),
        help="model to plan for (default: resnet20)",
    )
    parser.add_argument(
        "--error-margin",
        type=float,
        default=0.01,
        help="target error margin e (default: 0.01)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.99,
        help="confidence level (default: 0.99)",
    )
    parser.add_argument(
        "--pretrained",
        action="store_true",
        help="use trained weights for the data-aware profile",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    model = create_model(args.model, pretrained=args.pretrained)
    space = FaultSpace(model)
    planners = [
        NetworkWiseSFI(args.error_margin, args.confidence),
        LayerWiseSFI(args.error_margin, args.confidence),
        DataUnawareSFI(args.error_margin, args.confidence),
        DataAwareSFI(args.error_margin, args.confidence),
    ]
    plans = [planner.plan(space) for planner in planners]
    layer_params = [layer.size for layer in space.layers]
    network_allocation = proportional_allocation(
        plans[0].total_injections,
        [space.layer_population(l) for l in range(len(space.layers))],
    )
    print(f"model: {args.model}  population N = {space.total_population:,}")
    print(
        render_plan_table(
            plans,
            layer_params,
            network_wise_allocation=network_allocation,
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
