"""``repro-plan``: print SFI campaign plans for a model."""

from __future__ import annotations

import argparse

from repro.analysis import render_plan_table
from repro.cli import (
    add_telemetry_arguments,
    finish_telemetry,
    telemetry_from_args,
)
from repro.faults import FaultSpace
from repro.models import MODELS, create_model
from repro.sfi import (
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
)
from repro.stats import proportional_allocation
from repro.telemetry import resolve_telemetry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description=(
            "Compute statistical fault-injection sample sizes (paper Eq. 1/3) "
            "for a model, in the paper's Table I layout."
        ),
    )
    parser.add_argument(
        "--model",
        default="resnet20",
        choices=sorted(MODELS),
        help="model to plan for (default: resnet20)",
    )
    parser.add_argument(
        "--error-margin",
        type=float,
        default=0.01,
        help="target error margin e (default: 0.01)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.99,
        help="confidence level (default: 0.99)",
    )
    parser.add_argument(
        "--pretrained",
        action="store_true",
        help="use trained weights for the data-aware profile",
    )
    add_telemetry_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = telemetry_from_args(args)
    tele = resolve_telemetry(telemetry)
    model = create_model(args.model, pretrained=args.pretrained)
    space = FaultSpace(model)
    planners = [
        NetworkWiseSFI(args.error_margin, args.confidence),
        LayerWiseSFI(args.error_margin, args.confidence),
        DataUnawareSFI(args.error_margin, args.confidence),
        DataAwareSFI(args.error_margin, args.confidence),
    ]
    plans = []
    for planner in planners:
        with tele.span("plan.compute", emit=True, method=planner.method):
            plans.append(planner.plan(space))
    layer_params = [layer.size for layer in space.layers]
    network_allocation = proportional_allocation(
        plans[0].total_injections,
        [space.layer_population(l) for l in range(len(space.layers))],
    )
    print(f"model: {args.model}  population N = {space.total_population:,}")
    print(
        render_plan_table(
            plans,
            layer_params,
            network_wise_allocation=network_allocation,
        )
    )
    finish_telemetry(telemetry, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
