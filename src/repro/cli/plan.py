"""``repro-plan``: print SFI campaign plans — and price them.

The base mode reproduces the paper's Table I layout (sample sizes per
subpopulation).  ``--predict`` adds the cost side: a
:class:`~repro.telemetry.costmodel.CostModel` fitted from measured
telemetry journals (``--fit``) and the engine-throughput bench
(``--bench``) prices every engine kind × batch size × worker count
before anything runs, and the headline prediction can be journalled
(``--trace``) so ``repro-stats`` later reports predicted-vs-actual
error.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis import render_plan_table
from repro.cli import (
    add_telemetry_arguments,
    finish_telemetry,
    telemetry_from_args,
)
from repro.faults import FaultSpace
from repro.models import MODELS, create_model
from repro.sfi import (
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
)
from repro.stats import proportional_allocation
from repro.telemetry import (
    CostModel,
    CostModelError,
    fit_cost_model,
    load_bench,
    resolve_telemetry,
    summarize_journal,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-plan",
        description=(
            "Compute statistical fault-injection sample sizes (paper Eq. 1/3) "
            "for a model, in the paper's Table I layout; with --predict, "
            "price the campaigns from measured telemetry before running."
        ),
    )
    parser.add_argument(
        "--model",
        default="resnet20",
        choices=sorted(MODELS),
        help="model to plan for (default: resnet20)",
    )
    parser.add_argument(
        "--error-margin",
        type=float,
        default=0.01,
        help="target error margin e (default: 0.01)",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.99,
        help="confidence level (default: 0.99)",
    )
    parser.add_argument(
        "--pretrained",
        action="store_true",
        help="use trained weights for the data-aware profile",
    )
    predict = parser.add_argument_group(
        "cost prediction (requires --fit or --cost-model)"
    )
    predict.add_argument(
        "--predict",
        action="store_true",
        help="print predicted wall clock / fault-evaluations per engine "
        "kind x batch size x worker count, fitted from measured telemetry",
    )
    predict.add_argument(
        "--fit",
        type=Path,
        action="append",
        default=None,
        metavar="JOURNAL",
        help="fit the cost model from this telemetry journal "
        "(repeatable; cell_done events are the model's input)",
    )
    predict.add_argument(
        "--cost-model",
        type=Path,
        default=None,
        metavar="JSON",
        help="load a previously saved cost model instead of fitting",
    )
    predict.add_argument(
        "--save-cost-model",
        type=Path,
        default=None,
        metavar="JSON",
        help="save the fitted cost model for later predictions",
    )
    predict.add_argument(
        "--bench",
        type=Path,
        default=None,
        metavar="JSON",
        help="engine-throughput bench for relative engine speeds "
        "(default: BENCH_engine.json when present)",
    )
    predict.add_argument(
        "--engine",
        default=None,
        choices=("module", "plan", "plan_vectorized"),
        help="engine for the headline prediction (default: the fastest "
        "benched engine, else the measured one)",
    )
    predict.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="batch size for the headline prediction (default: the "
        "bench's batch for the chosen engine)",
    )
    predict.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker count for the headline prediction (default: 1)",
    )
    predict.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count capping parallelism in the headline "
        "prediction (default: unconstrained)",
    )
    predict.add_argument(
        "--predict-out",
        type=Path,
        default=None,
        metavar="JSON",
        help="write the full prediction report (cost model, table, "
        "headline) to this JSON file",
    )
    add_telemetry_arguments(parser)
    return parser


def _worker_axis(limit: int) -> list[int]:
    """1, 2, 4, ... up to (and including) *limit*."""
    counts = []
    w = 1
    while w < max(1, limit):
        counts.append(w)
        w *= 2
    counts.append(max(1, limit))
    return sorted(set(counts))


def _build_cost_model(args, space) -> CostModel:
    if args.cost_model is not None:
        model = CostModel.load(args.cost_model)
    elif args.fit:
        summaries = []
        for journal in args.fit:
            summaries.extend(summarize_journal(journal))
        model = fit_cost_model(summaries)
    else:
        raise CostModelError(
            "--predict needs measurements: pass --fit <journal> "
            "(a campaign run with --trace) or --cost-model <json>"
        )
    bench_path = args.bench
    if bench_path is None and Path("BENCH_engine.json").is_file():
        bench_path = Path("BENCH_engine.json")
    if bench_path is not None:
        model.engine_rates = dict(load_bench(bench_path))
    return model


def _engine_axis(cost_model: CostModel) -> list[tuple[str, str, int]]:
    """(display name, engine kind, batch size) rows for the table."""
    rows = [
        (rate.name, rate.kind, rate.batch_size)
        for rate in sorted(
            cost_model.engine_rates.values(), key=lambda r: r.name
        )
    ]
    if not rows:
        rows = [
            (
                cost_model.measured_engine,
                cost_model.measured_engine,
                cost_model.measured_batch_size,
            )
        ]
    return rows


def _predict(args, space, plans, tele) -> dict:
    """Print the prediction tables; returns the JSON-ready report."""
    cost_model = _build_cost_model(args, space)
    if args.save_cost_model is not None:
        cost_model.save(args.save_cost_model)
        print(f"cost model saved to {args.save_cost_model}")
    print(
        f"cost model: {cost_model.cells_observed} cells "
        f"({cost_model.faults_observed:,} faults) measured on "
        f"engine={cost_model.measured_engine} "
        f"batch={cost_model.measured_batch_size}; "
        f"utilisation {cost_model.utilisation * 100:.0f}%"
        + (
            f"; bench: {', '.join(sorted(cost_model.engine_rates))}"
            if cost_model.engine_rates
            else "; no bench loaded (engine scaling disabled)"
        )
    )
    workers_axis = _worker_axis(args.workers)
    engine_axis = _engine_axis(cost_model)
    table_rows = []
    header = f"  {'engine':<18s} {'batch':>5s}" + "".join(
        f" {'w=' + str(w):>12s}" for w in workers_axis
    )
    print(
        f"predicted exhaustive wall clock over "
        f"{space.total_population:,} fault-evaluations:"
    )
    print(header)
    for name, kind, batch_size in engine_axis:
        cells = []
        for w in workers_axis:
            prediction = cost_model.predict_exhaustive(
                space,
                engine=kind,
                batch_size=batch_size,
                workers=w,
                shards=args.shards,
                model=args.model,
            )
            cells.append(prediction)
        table_rows.append(
            {
                "engine": name,
                "kind": kind,
                "batch_size": batch_size,
                "predictions": [p.to_dict() for p in cells],
            }
        )
        print(
            f"  {name:<18s} {batch_size:>5d}"
            + "".join(f" {p.wall_seconds:>11.2f}s" for p in cells)
        )

    headline = cost_model.predict_exhaustive(
        space,
        engine=args.engine,
        batch_size=args.batch_size,
        workers=args.workers,
        shards=args.shards,
        model=args.model,
    )
    print(
        f"headline: engine={headline.engine} batch={headline.batch_size} "
        f"workers={headline.workers} shards={headline.shards or '-'} -> "
        f"{headline.wall_seconds:.2f}s wall "
        f"({headline.faults_per_sec:,.0f} fault-evals/sec)"
    )

    sampled = []
    print(
        f"predicted sampled campaigns (engine={headline.engine} "
        f"batch={headline.batch_size} workers={headline.workers}):"
    )
    print(f"  {'method':<14s} {'injections':>12s} {'wall(s)':>10s}")
    for plan in plans:
        prediction = cost_model.predict_sampled(
            plan,
            engine=headline.engine,
            batch_size=headline.batch_size,
            workers=args.workers,
            shards=args.shards,
            model=args.model,
        )
        sampled.append({"method": plan.method, **prediction.to_dict()})
        print(
            f"  {plan.method:<14s} {prediction.fault_evals:>12,d} "
            f"{prediction.wall_seconds:>10.2f}"
        )

    if tele.enabled:
        tele.emit("campaign_predicted", **headline.event_fields())

    report = {
        "model": args.model,
        "cost_model": cost_model.to_dict(),
        "exhaustive": table_rows,
        "headline": headline.to_dict(),
        "sampled": sampled,
    }
    if args.predict_out is not None:
        from repro.store import atomic_write_bytes

        atomic_write_bytes(
            args.predict_out,
            (json.dumps(report, indent=2, sort_keys=True) + "\n").encode(
                "utf-8"
            ),
        )
        print(f"prediction report written to {args.predict_out}")
    return report


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = telemetry_from_args(args)
    tele = resolve_telemetry(telemetry)
    model = create_model(args.model, pretrained=args.pretrained)
    space = FaultSpace(model)
    planners = [
        NetworkWiseSFI(args.error_margin, args.confidence),
        LayerWiseSFI(args.error_margin, args.confidence),
        DataUnawareSFI(args.error_margin, args.confidence),
        DataAwareSFI(args.error_margin, args.confidence),
    ]
    plans = []
    for planner in planners:
        with tele.span("plan.compute", emit=True, method=planner.method):
            plans.append(planner.plan(space))
    layer_params = [layer.size for layer in space.layers]
    network_allocation = proportional_allocation(
        plans[0].total_injections,
        [space.layer_population(l) for l in range(len(space.layers))],
    )
    print(f"model: {args.model}  population N = {space.total_population:,}")
    print(
        render_plan_table(
            plans,
            layer_params,
            network_wise_allocation=network_allocation,
        )
    )
    if args.predict:
        try:
            _predict(args, space, plans, tele)
        except CostModelError as exc:
            print(f"repro-plan: error: {exc}")
            return 2
    finish_telemetry(telemetry, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
