"""``repro-analyze``: criticality analyses over cached exhaustive results."""

from __future__ import annotations

import argparse

from repro.analysis import (
    bit_ranking,
    layer_ranking,
    render_bit_frequency_figure,
)
from repro.cli import (
    add_telemetry_arguments,
    finish_telemetry,
    telemetry_from_args,
)
from repro.models import MODELS, create_model
from repro.sfi import bit_criticality, model_weight_vector
from repro.sfi.artifacts import load_or_run_exhaustive


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description=(
            "Analyse CNN fault criticality: per-layer/per-bit rankings from "
            "exhaustive ground truth, and the data-aware p(i) profile from "
            "the golden weights."
        ),
    )
    parser.add_argument(
        "--model",
        default="resnet8_mini",
        choices=sorted(MODELS),
        help="model to analyse",
    )
    parser.add_argument(
        "--eval-size", type=int, default=64, help="evaluation set size"
    )
    parser.add_argument(
        "--profile-only",
        action="store_true",
        help="only print the weight-distribution profile (no exhaustive "
        "campaign needed; works for full-size models)",
    )
    parser.add_argument(
        "--pretrained",
        action="store_true",
        help="use trained weights for the profile (default for minis)",
    )
    add_telemetry_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = telemetry_from_args(args)
    is_mini = args.model.endswith("_mini")
    model = create_model(args.model, pretrained=args.pretrained or is_mini)
    profile = bit_criticality(model_weight_vector(model))
    print(f"== data-aware profile for {args.model} ==")
    print(render_bit_frequency_figure(profile.frequencies))
    print("\nbit priors p(i), MSB first:")
    for bit in range(profile.fmt.total_bits - 1, -1, -1):
        role = profile.fmt.bit_role(bit).value
        flag = " (outlier -> p=0.5)" if profile.outliers[bit] else ""
        print(f"  bit {bit:2d} [{role:8s}] p={profile.p[bit]:.4f}{flag}")
    if args.profile_only:
        finish_telemetry(telemetry, args)
        return 0
    if not is_mini:
        print(
            "\n(exhaustive analyses are only cached for mini models; "
            "use --profile-only for full-size topologies)"
        )
        finish_telemetry(telemetry, args)
        return 0
    table, _, _ = load_or_run_exhaustive(
        args.model, eval_size=args.eval_size, telemetry=telemetry
    )
    print("\n== exhaustive criticality ==")
    print("most critical layers:")
    for row in layer_ranking(table)[:5]:
        print(
            f"  layer {row.layer:2d}: {row.rate * 100:6.3f}% "
            f"({row.criticals:,}/{row.population:,})"
        )
    print("most critical bits:")
    for row in bit_ranking(table)[:5]:
        print(
            f"  bit {row.bit:2d}: {row.rate * 100:6.3f}% "
            f"({row.criticals:,}/{row.population:,})"
        )
    finish_telemetry(telemetry, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
