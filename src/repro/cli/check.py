"""``repro-check``: static plan verification and determinism linting.

Three subcommands:

- ``repro-check plan`` — capture and verify execution plans for
  registered models (``--all-models`` covers the zoo, fused and
  unfused).  Exit 1 if any plan has errors; ``--strict`` also fails on
  warnings.  ``--timings-out`` records per-plan verifier wall time.
- ``repro-check lint`` — run the determinism rules (D201–D206) over
  source paths, honouring ``# repro-check: ignore[RULE]`` suppressions
  and an optional committed baseline.  ``--write-baseline`` adopts the
  current findings.
- ``repro-check conform`` — run the vectorized-vs-exact conformance
  suite (:func:`repro.check.run_conformance`) on reference models;
  exit 1 on any out-of-tolerance outcome flip.  ``--backend`` checks a
  non-reference kernel backend against the exact engine; ``--ops``
  runs the op_db per-kernel suite (:func:`repro.check.run_op_conformance`)
  over every op kind on every available backend instead.
- ``repro-check protocol`` — verify the distributed queue protocol:
  the static filesystem-effect pass (Q301–Q306) over the real
  ``repro.dist`` source, then the crash-interleaving model checker
  (Q310–Q314) exploring every schedule of ``--workers`` concurrent
  workers up to ``--depth`` started operations, with a crash injected
  at every effect boundary unless ``--no-crash``.  Counterexamples are
  rendered as replayable operation schedules.  ``--mutants`` also runs
  the mutation harness (each seeded protocol bug must be caught with
  its expected Q-code).  ``--timings-out`` records state-space size
  and wall time.
- ``repro-check rules`` — print the rule catalogue (all passes).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.check import LINT_RULES, PLAN_RULES, PROTOCOL_RULES, verify_plan
from repro.check.baseline import load_baseline, new_findings, save_baseline
from repro.check.lint import lint_paths
from repro.models import MODELS, create_model
from repro.runtime.plan import capture_plan
from repro.store import atomic_write_bytes

_DEFAULT_BASELINE = "check-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-check",
        description="Static checks: plan verifier and determinism linter.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="verify captured execution plans")
    plan.add_argument(
        "--model",
        action="append",
        choices=sorted(MODELS),
        help="model to capture and verify (repeatable)",
    )
    plan.add_argument(
        "--all-models",
        action="store_true",
        help="verify every registered model",
    )
    plan.add_argument(
        "--fuse",
        choices=["unfused", "fused", "both"],
        default="both",
        help="which plan variants to verify (default: both)",
    )
    plan.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings (over-approximation, dead ops) as failures",
    )
    plan.add_argument(
        "--timings-out",
        metavar="JSON",
        default=None,
        help="write per-plan verifier wall-time measurements to this file",
    )

    lint = sub.add_parser("lint", help="run the determinism linter")
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src/repro", "benchmarks"],
        help="files or directories to lint "
        "(default: src/repro benchmarks)",
    )
    lint.add_argument(
        "--baseline",
        metavar="JSON",
        default=None,
        help="committed baseline of known findings (default: "
        f"{_DEFAULT_BASELINE} when it exists)",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="adopt the current findings into the baseline file and exit 0",
    )

    conform = sub.add_parser(
        "conform",
        help="vectorized-vs-exact engine conformance on reference models",
    )
    conform.add_argument(
        "--model",
        action="append",
        choices=sorted(MODELS),
        help="model to check (repeatable; default: resnet14_mini)",
    )
    conform.add_argument(
        "--faults",
        type=int,
        default=128,
        help="campaign-representative faults per model (default: 128)",
    )
    conform.add_argument(
        "--eval-size", type=int, default=64, help="evaluation set size"
    )
    conform.add_argument("--seed", type=int, default=0)
    conform.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help="permitted outcome-flip fraction; forced to 0 when the "
        "engines attest bit-exactness (default: 0)",
    )
    conform.add_argument(
        "--out",
        metavar="JSON",
        default=None,
        help="write the per-model conformance reports to this file",
    )
    conform.add_argument(
        "--backend",
        default=None,
        help="kernel backend under test (default: REPRO_BACKEND or numpy)",
    )
    conform.add_argument(
        "--ops",
        action="store_true",
        help="run the op_db per-kernel conformance suite instead of the "
        "model-level engine suite (covers every op kind on every "
        "available backend, or just --backend when given)",
    )

    protocol = sub.add_parser(
        "protocol",
        help="model-check the distributed queue protocol and lint its "
        "filesystem effects",
    )
    protocol.add_argument(
        "--depth",
        type=int,
        default=5,
        help="operations started per explored schedule (default: 5)",
    )
    protocol.add_argument(
        "--workers",
        type=int,
        default=2,
        help="concurrent model workers (default: 2)",
    )
    protocol.add_argument(
        "--crash",
        dest="crash",
        action="store_true",
        default=True,
        help="inject a crash at every effect boundary (default: on)",
    )
    protocol.add_argument(
        "--no-crash",
        dest="crash",
        action="store_false",
        help="disable crash injection (interleavings only)",
    )
    protocol.add_argument(
        "--mutants",
        action="store_true",
        help="also run the mutation harness: each seeded protocol bug "
        "must produce its expected Q-code",
    )
    protocol.add_argument(
        "--timings-out",
        metavar="JSON",
        default=None,
        help="write explored-state counts and wall time to this file",
    )

    sub.add_parser("rules", help="print the rule catalogue")
    return parser


def _cmd_plan(args) -> int:
    names = sorted(MODELS) if args.all_models else (args.model or [])
    if not names:
        print(
            "repro-check plan: name models with --model or use --all-models",
            file=sys.stderr,
        )
        return 2
    variants = {
        "unfused": [False],
        "fused": [True],
        "both": [False, True],
    }[args.fuse]
    failed = False
    timings = []
    for name in names:
        for fuse in variants:
            model = create_model(name)
            # capture_plan verifies internally; verify again explicitly
            # to report diagnostics (including warnings) and wall time.
            plan = capture_plan(model, fuse=fuse)
            start = time.perf_counter()
            diagnostics = verify_plan(plan)
            seconds = time.perf_counter() - start
            errors = [d for d in diagnostics if d.severity == "error"]
            warnings = [d for d in diagnostics if d.severity == "warning"]
            verdict = "ok"
            if errors or (args.strict and warnings):
                verdict = "FAIL"
                failed = True
            elif warnings:
                verdict = "warn"
            print(
                f"{verdict:4s} {name:18s} fused={str(fuse):5s} "
                f"ops={len(plan):3d} verify={1e3 * seconds:6.2f} ms"
            )
            for diagnostic in diagnostics:
                print(f"     {diagnostic}")
            timings.append(
                {
                    "model": name,
                    "fused": fuse,
                    "ops": len(plan),
                    "verify_seconds": seconds,
                    "errors": len(errors),
                    "warnings": len(warnings),
                }
            )
    if args.timings_out:
        payload = {
            "plans": timings,
            "max_verify_seconds": max(t["verify_seconds"] for t in timings),
        }
        serialized = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(Path(args.timings_out), serialized.encode("utf-8"))
    return 1 if failed else 0


def _cmd_lint(args) -> int:
    root = Path.cwd()
    findings = lint_paths([Path(p) for p in args.paths])
    baseline_path = args.baseline
    if baseline_path is None and Path(_DEFAULT_BASELINE).exists():
        baseline_path = _DEFAULT_BASELINE
    if args.write_baseline:
        target = Path(baseline_path or _DEFAULT_BASELINE)
        save_baseline(target, findings, root)
        print(f"wrote {len(findings)} finding(s) to {target}")
        return 0
    if baseline_path is not None:
        baseline = load_baseline(Path(baseline_path))
        findings = new_findings(findings, baseline, root)
    for finding in findings:
        print(finding)
    if findings:
        print(
            f"\n{len(findings)} new finding(s); fix them or suppress a "
            "justified one with  # repro-check: ignore[RULE]"
        )
        return 1
    print("determinism lint: clean")
    return 0


def _cmd_conform(args) -> int:
    from repro.check.conformance import run_conformance

    if args.ops:
        return _cmd_conform_ops(args)
    names = args.model or ["resnet14_mini"]
    reports = []
    failed = False
    for name in names:
        report = run_conformance(
            name,
            eval_size=args.eval_size,
            faults=args.faults,
            seed=args.seed,
            tolerance=args.tolerance,
            backend=args.backend,
        )
        reports.append(report)
        verdict = "ok" if report.ok else "FAIL"
        failed = failed or not report.ok
        attest = "bit-exact" if report.bit_exact_attested else (
            f"tolerance={report.tolerance}"
        )
        print(
            f"{verdict:4s} {report.model:18s} backend={report.backend} "
            f"faults={report.faults:4d} "
            f"flips={report.outcome_flips}/{report.faults} "
            f"cells={report.prediction_flips} [{attest}] "
            f"precertified={report.precertified} "
            f"survivors={report.survivor_rows}"
        )
        if report.flipped_faults:
            print(f"     flipped fault indices: {list(report.flipped_faults)}")
    if args.out:
        payload = {"reports": [r.to_dict() for r in reports]}
        serialized = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(Path(args.out), serialized.encode("utf-8"))
    return 1 if failed else 0


def _cmd_conform_ops(args) -> int:
    from repro.check.conformance import run_op_conformance

    backends = [args.backend] if args.backend else None
    results = run_op_conformance(backends=backends, seed=args.seed)
    failures = [r for r in results if not r.ok]
    per_backend: dict[str, int] = {}
    for result in results:
        per_backend[result.backend] = per_backend.get(result.backend, 0) + 1
    for name in sorted(per_backend):
        print(f"backend {name}: {per_backend[name]} check(s)")
    for result in failures:
        print(
            f"FAIL {result.backend}/{result.kind} sample={result.sample} "
            f"check={result.check}: {result.detail}"
        )
    if args.out:
        payload = {"checks": [r.to_dict() for r in results]}
        serialized = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(Path(args.out), serialized.encode("utf-8"))
    if failures:
        print(f"\nop conformance: {len(failures)}/{len(results)} failed")
        return 1
    print(f"op conformance: {len(results)} checks passed")
    return 0


def _cmd_protocol(args) -> int:
    from repro.check.protocol import (
        MUTANT_MODELS,
        check_effects,
        check_protocol,
        render_trace,
    )

    failed = False
    findings = check_effects()
    for finding in findings:
        print(finding)
    verdict = "FAIL" if findings else "ok"
    failed = failed or bool(findings)
    print(
        f"{verdict:4s} effect lint: {len(findings)} finding(s) over "
        "repro.dist.queue/lease/rebalance"
    )

    result = check_protocol(
        depth=args.depth, workers=args.workers, crash=args.crash
    )
    verdict = "ok" if result.ok else "FAIL"
    failed = failed or not result.ok
    print(
        f"{verdict:4s} model check: depth={result.depth} "
        f"workers={result.workers} crash={result.crash} "
        f"states={result.states} outcomes={result.outcomes} "
        f"wall={result.wall_seconds:.2f}s"
    )
    for violation in result.violations:
        print(render_trace(violation))

    mutant_rows = []
    if args.mutants:
        for name in sorted(MUTANT_MODELS):
            cls, expected = MUTANT_MODELS[name]
            mutant = check_protocol(
                cls(), depth=args.depth, workers=args.workers, crash=args.crash
            )
            caught = expected in mutant.codes()
            verdict = "ok" if caught else "FAIL"
            failed = failed or not caught
            print(
                f"{verdict:4s} mutant {name}: expected {expected}, "
                f"got {list(mutant.codes())} "
                f"(states={mutant.states}, wall={mutant.wall_seconds:.2f}s)"
            )
            mutant_rows.append(
                {
                    "mutant": name,
                    "expected": expected,
                    "caught": caught,
                    **mutant.to_json(),
                }
            )

    if args.timings_out:
        payload: dict = {
            "effect_findings": len(findings),
            "protocol": result.to_json(),
        }
        if mutant_rows:
            payload["mutants"] = mutant_rows
        serialized = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        atomic_write_bytes(Path(args.timings_out), serialized.encode("utf-8"))
    return 1 if failed else 0


def _cmd_rules(args) -> int:
    print("Plan verifier (repro-check plan):")
    for rule in sorted(PLAN_RULES):
        print(f"  {rule}  {PLAN_RULES[rule]}")
    print("\nDeterminism linter (repro-check lint):")
    for rule in sorted(LINT_RULES):
        print(f"  {rule}  {LINT_RULES[rule]}")
    print("\nQueue-protocol checker (repro-check protocol):")
    for rule in sorted(PROTOCOL_RULES):
        print(f"  {rule}  {PROTOCOL_RULES[rule]}")
    return 0


_COMMANDS = {
    "plan": _cmd_plan,
    "lint": _cmd_lint,
    "conform": _cmd_conform,
    "protocol": _cmd_protocol,
    "rules": _cmd_rules,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
