"""``repro-stats``: summarise one or more telemetry journals.

Reads the JSONL journal written by ``repro-run --trace`` (or any other
instrumented entry point) and reconstructs, per campaign: per-phase span
timings, per-(layer, bit) cell wall times, overall faults/sec and
inferences/sec, per-worker utilisation, and checkpoint/resume behaviour.

Distributed campaigns write one journal per worker (``repro-dist work
--trace``); pass them all and their events are merged by timestamp into
a single timeline before summarising, so shard claims, requeues and the
final merge are accounted across the whole fleet.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path

from repro.telemetry import format_summary, read_journal, summarize_journal


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description=(
            "Summarise a telemetry journal (JSONL) into per-phase timing "
            "tables, throughput and worker utilisation."
        ),
    )
    parser.add_argument(
        "journals",
        type=Path,
        nargs="+",
        metavar="journal",
        help="journal file(s) (.jsonl); several per-worker journals "
        "from one distributed campaign are merged by timestamp",
    )
    parser.add_argument(
        "--run",
        default=None,
        help="only summarise this run id (default: every run in the journal)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest cells to list per campaign (default: 10)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    return parser


def _to_json(summary) -> dict:
    record = dataclasses.asdict(summary)
    record["faults_per_second"] = summary.faults_per_second
    record["inferences_per_second"] = summary.inferences_per_second
    record["resume_hit_rate"] = summary.resume_hit_rate
    return record


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    events = []
    for journal in args.journals:
        if not journal.is_file():
            print(f"repro-stats: error: no journal at {journal}")
            return 1
        events.extend(read_journal(journal))
    if not events:
        names = ", ".join(str(j) for j in args.journals)
        print(f"repro-stats: error: {names} hold(s) no intact events")
        return 1
    if len(args.journals) > 1:
        # Per-worker journals interleave; monotonic t is system-wide on
        # Linux, so a timestamp sort rebuilds the fleet's one timeline.
        events.sort(key=lambda e: e.t)
    summaries = summarize_journal(events)
    if args.run is not None:
        summaries = [s for s in summaries if s.run_id == args.run]
        if not summaries:
            print(f"repro-stats: error: no events for run id {args.run!r}")
            return 1
    if args.json:
        print(json.dumps([_to_json(s) for s in summaries], indent=2, sort_keys=True))
        return 0
    names = ", ".join(str(j) for j in args.journals)
    print(f"{names}: {len(events)} events, {len(summaries)} campaign(s)")
    for summary in summaries:
        print()
        print(format_summary(summary, top_cells=args.top))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
