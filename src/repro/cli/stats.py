"""``repro-stats``: summarise one or more telemetry journals.

Reads the JSONL journal written by ``repro-run --trace`` (or any other
instrumented entry point) and reconstructs, per campaign: per-phase span
timings, per-(layer, bit) cell wall times, overall faults/sec and
inferences/sec, per-worker utilisation, and checkpoint/resume behaviour.

Distributed campaigns write one journal per worker (``repro-dist work
--trace``); pass them all and their events are merged by timestamp into
a single timeline before summarising, so shard claims, requeues and the
final merge are accounted across the whole fleet.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
from pathlib import Path

from repro.telemetry import (
    format_comparisons,
    format_summary,
    predicted_vs_actual,
    read_journal,
    summarize_journal,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-stats",
        description=(
            "Summarise a telemetry journal (JSONL) into per-phase timing "
            "tables, throughput and worker utilisation."
        ),
    )
    parser.add_argument(
        "journals",
        type=Path,
        nargs="+",
        metavar="journal",
        help="journal file(s) (.jsonl); several per-worker journals "
        "from one distributed campaign are merged by timestamp",
    )
    parser.add_argument(
        "--run",
        default=None,
        help="only summarise this run id (default: every run in the journal)",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest cells to list per campaign (default: 10)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of tables",
    )
    return parser


def _to_json(summary) -> dict:
    record = dataclasses.asdict(summary)
    record["faults_per_second"] = summary.faults_per_second
    record["inferences_per_second"] = summary.inferences_per_second
    record["resume_hit_rate"] = summary.resume_hit_rate
    return record


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    keyed = []
    for journal in args.journals:
        if not journal.is_file():
            print(f"repro-stats: error: no journal at {journal}")
            return 1
        for line_no, event in enumerate(read_journal(journal)):
            keyed.append((event, str(journal), line_no))
    if not keyed:
        names = ", ".join(str(j) for j in args.journals)
        print(f"repro-stats: error: {names} hold(s) no intact events")
        return 1
    if len(args.journals) > 1:
        # Per-worker journals interleave; monotonic t is system-wide on
        # Linux, so a timestamp sort rebuilds the fleet's one timeline.
        # Equal timestamps (clock granularity) tie-break on (journal
        # path, line number) so the merged timeline is stable no matter
        # the argument order.
        keyed.sort(key=lambda ke: (ke[0].t, ke[1], ke[2]))
    events = [event for event, _path, _line in keyed]
    summaries = summarize_journal(events)
    if args.run is not None:
        summaries = [s for s in summaries if s.run_id == args.run]
        if not summaries:
            print(f"repro-stats: error: no events for run id {args.run!r}")
            return 1
    comparisons = predicted_vs_actual(summaries)
    if args.json:
        payload = {
            "campaigns": [_to_json(s) for s in summaries],
            "predicted_vs_actual": [c.to_dict() for c in comparisons],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    names = ", ".join(str(j) for j in args.journals)
    print(f"{names}: {len(events)} events, {len(summaries)} campaign(s)")
    for summary in summaries:
        print()
        print(format_summary(summary, top_cells=args.top))
    if comparisons:
        print()
        print(format_comparisons(comparisons))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
