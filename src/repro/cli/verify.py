"""``repro-verify-artifacts``: integrity-check the artifact store.

Walks every ``.npz`` under the artifact directory (weights, exhaustive
tables, anything else), validating the ``MANIFEST.json`` checksum and the
zip structure of each file.  Exits non-zero when any artifact is corrupt,
stale, or missing — CI runs this before the test suite so a damaged
artifact fails loudly instead of cascading into dozens of confusing test
errors (the seed-corruption incident this tool was born from).
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.store import (
    load_manifest,
    salvage_npz,
    save_verified_npz,
    validate_npz,
    verify_artifact,
    write_manifest,
)
from repro.utils import artifacts_dir


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-verify-artifacts",
        description=(
            "Verify every artifact (.npz) against its MANIFEST.json "
            "checksum and zip structure; exit non-zero on any failure."
        ),
    )
    parser.add_argument(
        "--artifacts",
        type=Path,
        default=None,
        help="artifact directory to scan (default: the repo artifact dir)",
    )
    parser.add_argument(
        "--write-manifest",
        action="store_true",
        help="rebuild each directory's MANIFEST.json from the files that "
        "pass structural validation",
    )
    parser.add_argument(
        "--salvage-to",
        type=Path,
        default=None,
        metavar="DIR",
        help="write whatever members survive in each corrupt archive to "
        "DIR/<name>.npz (best-effort recovery, does not affect exit code)",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true", help="only print failures"
    )
    return parser


def _artifact_directories(root: Path) -> list[Path]:
    """Every directory under *root* that holds at least one ``.npz``."""
    directories = {path.parent for path in root.rglob("*.npz")}
    # Directories whose manifests list files that have since vanished
    # must still be checked.
    directories |= {path.parent for path in root.rglob("MANIFEST.json")}
    return sorted(directories)


def _salvage(path: Path, out_dir: Path) -> str:
    recovered = salvage_npz(path)
    if not recovered:
        return "salvage recovered nothing"
    out_path = out_dir / path.name
    save_verified_npz(out_path, recovered, manifest=False)
    return f"salvaged {len(recovered)} member(s) to {out_path}"


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    root = args.artifacts if args.artifacts is not None else artifacts_dir()
    if not root.is_dir():
        print(f"artifact directory {root} does not exist")
        return 1
    if args.salvage_to is not None:
        args.salvage_to.mkdir(parents=True, exist_ok=True)

    failures = 0
    checked = 0
    for directory in _artifact_directories(root):
        entries = load_manifest(directory)
        names = sorted(
            {path.name for path in directory.glob("*.npz")} | set(entries)
        )
        structurally_valid: list[str] = []
        for name in names:
            path = directory / name
            checked += 1
            problem = verify_artifact(path) or validate_npz(path)
            if problem is None:
                structurally_valid.append(name)
                status = "ok" if name in entries else "ok (unlisted)"
                if not args.quiet:
                    print(f"  OK    {path.relative_to(root)}  [{status}]")
                continue
            failures += 1
            print(f"  FAIL  {path.relative_to(root)}: {problem}")
            if args.salvage_to is not None and path.is_file():
                print(f"        {_salvage(path, args.salvage_to)}")
        if args.write_manifest and structurally_valid:
            write_manifest(directory, names=structurally_valid)
            if not args.quiet:
                print(f"  wrote {directory.relative_to(root)}/MANIFEST.json")

    if failures:
        print(f"{failures} of {checked} artifact(s) FAILED verification")
        return 1
    if not args.quiet:
        print(f"all {checked} artifact(s) verified")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
