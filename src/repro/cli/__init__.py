"""Command-line entry points.

- ``repro-plan`` — print campaign plans (sample sizes per subpopulation)
  for a model, reproducing the paper's Table I layout.
- ``repro-run`` — execute a statistical (or exhaustive) campaign on a
  pretrained mini model and print the resulting estimates.
- ``repro-analyze`` — criticality analyses over cached exhaustive results:
  most critical layer/bit, per-bit rates, data-aware p(i) profile.
- ``repro-train`` — train reference models and cache their weights.
- ``repro-verify-artifacts`` — integrity-check every artifact against its
  ``MANIFEST.json`` checksum and zip structure.
"""

__all__ = ["plan", "run", "analyze", "train", "verify"]
