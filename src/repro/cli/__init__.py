"""Command-line entry points.

- ``repro-plan`` — print campaign plans (sample sizes per subpopulation)
  for a model, reproducing the paper's Table I layout.
- ``repro-run`` — execute a statistical (or exhaustive) campaign on a
  pretrained mini model and print the resulting estimates.
- ``repro-analyze`` — criticality analyses over cached exhaustive results:
  most critical layer/bit, per-bit rates, data-aware p(i) profile.
- ``repro-train`` — train reference models and cache their weights.
- ``repro-verify-artifacts`` — integrity-check every artifact against its
  ``MANIFEST.json`` checksum and zip structure.
- ``repro-stats`` — summarise telemetry journals into per-phase timing
  tables, throughput and worker utilisation (several per-worker
  journals from one distributed campaign merge into one timeline).
- ``repro-dist`` — sharded campaigns over a file-backed work queue:
  ``submit`` / ``work`` / ``status`` / ``merge``, drainable by any
  number of workers on any host sharing the queue directory.
- ``repro-check`` — static analysis: verify captured execution plans
  (``plan``) and run the determinism linter (``lint``).

Entry points that do real work (`plan`, `run`, `analyze`, `train`) share
the ``--trace``/``--metrics-out`` telemetry flags via
:func:`add_telemetry_arguments` / :func:`telemetry_from_args`.
"""

from __future__ import annotations

import argparse

from repro.telemetry import Journal, Telemetry

__all__ = [
    "plan",
    "run",
    "analyze",
    "train",
    "verify",
    "stats",
    "dist",
    "check",
    "add_telemetry_arguments",
    "telemetry_from_args",
    "finish_telemetry",
]


def add_telemetry_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the shared ``--trace`` / ``--metrics-out`` options."""
    group = parser.add_argument_group("telemetry")
    group.add_argument(
        "--trace",
        metavar="JOURNAL",
        default=None,
        help="append telemetry events to this JSONL journal "
        "(summarise it with repro-stats)",
    )
    group.add_argument(
        "--metrics-out",
        metavar="JSON",
        default=None,
        help="write the metrics snapshot (counters/gauges/timers) to "
        "this JSON file on exit",
    )


def telemetry_from_args(
    args: argparse.Namespace, *, on_event=None
) -> Telemetry | None:
    """Build the telemetry sink the flags ask for (``None`` when off).

    *on_event* (a ``callable(Event)``) forces an enabled sink even
    without flags — CLIs use it to print live progress from ``progress``
    events instead of the deprecated callback plumbing.
    """
    if args.trace is None and args.metrics_out is None and on_event is None:
        return None
    journal = Journal(args.trace) if args.trace is not None else None
    return Telemetry(journal=journal, on_event=on_event)


def finish_telemetry(
    telemetry: Telemetry | None, args: argparse.Namespace
) -> None:
    """Flush end-of-run telemetry outputs (the metrics snapshot)."""
    if telemetry is None:
        return
    if args.metrics_out is not None:
        telemetry.save_metrics(args.metrics_out)
    if args.trace is not None:
        print(
            f"telemetry: journal at {args.trace} "
            f"(run id {telemetry.run_id}; summarise with "
            f"`repro-stats {args.trace}`)"
        )
