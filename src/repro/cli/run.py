"""``repro-run``: execute an SFI campaign on a pretrained mini model."""

from __future__ import annotations

import argparse
import sys

from repro.cli import (
    add_telemetry_arguments,
    finish_telemetry,
    telemetry_from_args,
)
from repro.faults import InferenceOracle, TableOracle
from repro.models import MODELS
from repro.sfi import (
    CampaignRunner,
    DataAwareSFI,
    DataUnawareSFI,
    LayerWiseSFI,
    NetworkWiseSFI,
    validate_campaign,
)
from repro.sfi.artifacts import load_or_run_exhaustive
from repro.store import CorruptArtifactError
from repro.telemetry import progress_printer

_PLANNERS = {
    "network-wise": NetworkWiseSFI,
    "layer-wise": LayerWiseSFI,
    "data-unaware": DataUnawareSFI,
    "data-aware": DataAwareSFI,
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-run",
        description=(
            "Run a statistical fault-injection campaign on a pretrained "
            "mini model and validate it against exhaustive ground truth."
        ),
    )
    parser.add_argument(
        "--model",
        default="resnet8_mini",
        choices=sorted(name for name in MODELS if name.endswith("_mini")),
        help="pretrained mini model (default: resnet8_mini)",
    )
    parser.add_argument(
        "--method",
        default="data-aware",
        choices=sorted(_PLANNERS),
        help="SFI method (default: data-aware)",
    )
    parser.add_argument("--error-margin", type=float, default=0.01)
    parser.add_argument("--confidence", type=float, default=0.99)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--eval-size", type=int, default=64, help="evaluation set size"
    )
    parser.add_argument(
        "--engine",
        default="plan",
        choices=("plan", "plan_vectorized", "module"),
        help="fault-evaluation engine: 'plan' (op-granular caching, "
        "batched faults; default), 'plan_vectorized' (certified "
        "variant-axis stacking) or 'module' (stage-granular "
        "reference). Unfused outcomes are bit-identical in all three.",
    )
    parser.add_argument(
        "--fuse",
        action="store_true",
        help="plan engine only: enable numeric-changing fusions "
        "(BN-folding into conv, im2col workspace reuse). Changes the "
        "engine fingerprint; results cache separately and never merge "
        "with unfused campaigns.",
    )
    parser.add_argument(
        "--backend",
        default=None,
        help="kernel backend for the plan engine (default: REPRO_BACKEND "
        "or the numpy reference); non-reference backends cache their "
        "numerically distinct outcomes under a separate artifact",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        metavar="K",
        help="plan engine only: same-layer faults evaluated per stacked "
        "tail pass (default: 16)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="really inject each sampled fault instead of replaying the "
        "cached exhaustive outcomes",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for the exhaustive campaign when the cache is "
        "cold, and for the sampled campaign's strata "
        "(default: REPRO_WORKERS or all CPU cores)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the cold-cache exhaustive campaign through repro.dist: "
        "split it into N shards drained by a local worker fleet and "
        "merged deterministically (same table as a serial run)",
    )
    parser.add_argument(
        "--no-resume",
        action="store_true",
        help="do not checkpoint the exhaustive campaign / resume from an "
        "earlier interrupted one",
    )
    add_telemetry_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = telemetry_from_args(
        args, on_event=progress_printer(f"  exhaustive {args.model}")
    )
    try:
        table, space, engine = load_or_run_exhaustive(
            args.model,
            eval_size=args.eval_size,
            engine_kind=args.engine,
            fuse=args.fuse,
            backend=args.backend,
            batch_size=args.batch_size,
            workers=args.workers,
            shards=args.shards,
            resume=not args.no_resume,
            telemetry=telemetry,
        )
    except (CorruptArtifactError, ValueError) as exc:
        print(f"repro-run: error: {exc}", file=sys.stderr)
        return 2
    planner = _PLANNERS[args.method](args.error_margin, args.confidence)
    plan = planner.plan(space)
    oracle = InferenceOracle(engine) if args.live else TableOracle(table, space)
    runner = CampaignRunner(oracle, space, telemetry=telemetry)
    result = runner.run(plan, seed=args.seed, workers=args.workers)
    report = validate_campaign(result, table)
    print(result.summary())
    print(
        f"exhaustive network rate: {table.total_rate() * 100:.3f}% | "
        f"avg layer margin: {report.average_margin * 100:.3f}% | "
        f"layers contained: {report.contained_fraction * 100:.0f}%"
    )
    for row in report.layers:
        est = row.estimate
        margin = f"±{est.margin * 100:.3f}%" if est.margin is not None else "n/a"
        status = "ok" if row.contained else "MISS"
        print(
            f"  layer {row.layer:2d}: exhaustive {row.exhaustive_rate * 100:6.3f}% "
            f"estimate {est.p_hat * 100:6.3f}% {margin} ({est.injections} FIs) "
            f"{status}"
        )
    finish_telemetry(telemetry, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
