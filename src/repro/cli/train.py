"""``repro-train``: train reference models and cache their weights."""

from __future__ import annotations

import argparse

from repro.cli import (
    add_telemetry_arguments,
    finish_telemetry,
    telemetry_from_args,
)
from repro.models import MODELS, pretrained_path
from repro.store import load_manifest
from repro.train import train_reference_model

DEFAULT_MODELS = ("resnet8_mini", "resnet14_mini", "mobilenetv2_mini")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-train",
        description=(
            "Train reference models on SynthCIFAR and store the weights "
            "where create_model(..., pretrained=True) loads them."
        ),
    )
    parser.add_argument(
        "--model",
        choices=sorted(MODELS),
        help="single model to train (default: all mini models)",
    )
    parser.add_argument("--epochs", type=int, help="override the recipe")
    parser.add_argument("--train-size", type=int, help="override the recipe")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--force",
        action="store_true",
        help="retrain even when cached weights exist",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-epoch logging"
    )
    add_telemetry_arguments(parser)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    telemetry = telemetry_from_args(args)
    names = [args.model] if args.model else list(DEFAULT_MODELS)
    for name in names:
        if not args.force and pretrained_path(name).is_file():
            print(f"{name}: cached weights found at {pretrained_path(name)}")
            continue
        print(f"training {name}...")
        _, accuracy = train_reference_model(
            name,
            epochs=args.epochs,
            train_size=args.train_size,
            seed=args.seed,
            log_every=0 if args.quiet else 5,
            telemetry=telemetry,
        )
        print(f"{name}: test accuracy {accuracy:.2%}")
        path = pretrained_path(name)
        entry = load_manifest(path.parent).get(path.name)
        if entry:
            print(f"{name}: recorded sha256={entry['sha256'][:16]}… in MANIFEST.json")
    finish_telemetry(telemetry, args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
