"""Fault models, fault-space enumeration and the weight fault injector.

This package is the reproduction's PyTorchFI equivalent, specialised to the
paper's scenario: permanent stuck-at (and optionally transient bit-flip)
faults in the *static parameters* — the convolution and linear weights — of
a CNN.

Key pieces:

- :class:`FaultModel` / :class:`Fault` — what to inject and where
  (layer, flat weight index, bit position, polarity).
- :func:`enumerate_weight_layers` — the ordered conv+linear weight layers of
  a model, matching the paper's Table I layer indexing.
- :class:`FaultSpace` — the population N of all possible faults and its
  subpopulations at network / layer / (bit, layer) granularity.
- :class:`WeightFaultInjector` — applies and reverts faults in place.
- :class:`InferenceEngine` — prefix-cached fast inference: the golden
  activations of every stage are cached once, and each injected fault only
  recomputes the network from the faulted stage onward.
- :class:`OutcomeTable` — dense per-fault outcome storage so an exhaustive
  campaign is run once and every statistical campaign replays from it.
"""

from repro.faults.activations import (
    TRANSIENT_MODELS,
    ActivationFaultSpace,
    ActivationInferenceEngine,
    ActivationSite,
)
from repro.faults.model import Fault, FaultModel, STUCK_AT_MODELS
from repro.faults.targets import WeightLayer, enumerate_weight_layers
from repro.faults.space import FaultSpace
from repro.faults.injector import WeightFaultInjector
from repro.faults.engine import (
    FaultInjectionEngine,
    FaultOutcome,
    InferenceEngine,
    classify_predictions,
)
from repro.faults.table import OutcomeTable
from repro.faults.oracle import InferenceOracle, Oracle, TableOracle

__all__ = [
    "TRANSIENT_MODELS",
    "ActivationFaultSpace",
    "ActivationInferenceEngine",
    "ActivationSite",
    "Fault",
    "FaultModel",
    "STUCK_AT_MODELS",
    "WeightLayer",
    "enumerate_weight_layers",
    "FaultSpace",
    "WeightFaultInjector",
    "FaultInjectionEngine",
    "FaultOutcome",
    "InferenceEngine",
    "classify_predictions",
    "OutcomeTable",
    "Oracle",
    "InferenceOracle",
    "TableOracle",
]
