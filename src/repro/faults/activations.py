"""Transient activation (neuron) fault injection.

The paper targets the static parameters (weights); tools like PyTorchFI
also inject into *activations* — the feature maps flowing between layers —
to model faults in datapath logic rather than memory.  This module extends
the same statistical machinery to that fault model:

- An :class:`ActivationSite` is one stage-output tensor position (per-image
  flat index); a fault at a site corrupts that position for **every** image
  of the evaluation batch, modelling a faulty compute unit that hits the
  same output location on each inference.
- :class:`ActivationFaultSpace` reuses the weight-space id arithmetic
  (sites play the role of layers), so the network/layer/bit partitioners
  and every planner work unchanged.
- :class:`ActivationInferenceEngine` classifies activation faults with the
  same prefix-cache trick: the golden output of stage *s* is corrupted in
  place of recomputing it, and only stages ``s+1..`` run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.faults.engine import FaultOutcome, classify_predictions
from repro.faults.model import Fault, FaultModel
from repro.faults.space import FaultSpace
from repro.ieee754 import FLOAT32, FloatFormat, apply_stuck_at, flip_bit
from repro.nn import Module

#: Transient bit-flips are the canonical activation fault model.
TRANSIENT_MODELS = (FaultModel.BIT_FLIP,)


@dataclass(frozen=True)
class ActivationSite:
    """One stage-output tensor in the model's forward dataflow.

    Attributes
    ----------
    index:
        Position in the site ordering (plays the role of a layer index in
        :class:`repro.faults.FaultSpace` id arithmetic).
    stage:
        Index of the stage whose *output* this site corrupts.
    shape:
        Per-image activation shape (without the batch dimension).
    """

    index: int
    stage: int
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of per-image activation elements."""
        out = 1
        for dim in self.shape:
            out *= dim
        return out


class ActivationFaultSpace(FaultSpace):
    """Fault population over a model's activation sites.

    Constructed from an :class:`ActivationInferenceEngine`; the ``layers``
    of the base class become activation sites, so every subpopulation
    partitioner and planner built for weight faults applies verbatim.
    """

    def __init__(
        self,
        engine: "ActivationInferenceEngine",
        *,
        fault_models=TRANSIENT_MODELS,
    ) -> None:
        super().__init__(
            engine.sites, fmt=engine.fmt, fault_models=fault_models
        )


class ActivationInferenceEngine:
    """Classifies activation faults over a fixed evaluation batch."""

    def __init__(
        self,
        model: Module,
        images: np.ndarray,
        labels: np.ndarray,
        *,
        fmt: FloatFormat = FLOAT32,
        policy: str = "accuracy_drop",
        threshold: float = 0.0,
        include_logits: bool = False,
    ) -> None:
        if not hasattr(model, "stage_modules"):
            raise TypeError(
                "model must expose stage_modules() for prefix caching"
            )
        if len(images) != len(labels):
            raise ValueError("images and labels must have the same length")
        model.eval()
        self.model = model
        self.images = np.asarray(images, dtype=np.float32)
        self.labels = np.asarray(labels)
        self.fmt = fmt
        self.policy = policy
        self.threshold = threshold
        self.stages: list[Module] = model.stage_modules()
        self._activations = [self.images]
        for stage in self.stages:
            self._activations.append(stage.forward_fast(self._activations[-1]))
        self.golden_predictions = self._activations[-1].argmax(axis=1)
        self.golden_accuracy = float(
            (self.golden_predictions == self.labels).mean()
        )
        last = len(self.stages) - 1 if not include_logits else len(self.stages)
        self.sites: list[ActivationSite] = [
            ActivationSite(
                index=i,
                stage=i,
                shape=tuple(self._activations[i + 1].shape[1:]),
            )
            for i in range(last)
        ]
        self.inference_count = 0

    def site_activation(self, site: ActivationSite) -> np.ndarray:
        """The golden output of *site*'s stage, shape (N, *site.shape)."""
        return self._activations[site.stage + 1]

    def _corrupt(self, fault: Fault) -> np.ndarray | None:
        """Corrupted copy of the faulted stage output (None if masked)."""
        site = self.sites[fault.layer]
        golden = self.site_activation(site)
        flat = golden.reshape(len(golden), -1)
        column = flat[:, fault.index]
        bits = self.fmt.encode(column)
        stuck = fault.model.stuck_value
        if stuck is None:
            corrupted = flip_bit(self.fmt, bits, fault.bit)
        else:
            corrupted = apply_stuck_at(self.fmt, bits, fault.bit, stuck)
        if np.array_equal(corrupted, bits):
            return None
        faulty_column = self.fmt.decode_native(corrupted).astype(np.float32)
        faulty = flat.copy()
        faulty[:, fault.index] = faulty_column
        return faulty.reshape(golden.shape)

    def predictions_with_fault(self, fault: Fault) -> np.ndarray:
        """Top-1 predictions with *fault* injected (runs inference)."""
        site = self.sites[fault.layer]
        corrupted = self._corrupt(fault)
        if corrupted is None:
            return self.golden_predictions
        x = corrupted
        with np.errstate(all="ignore"):
            for stage in self.stages[site.stage + 1 :]:
                x = stage.forward_fast(x)
        self.inference_count += 1
        return x.argmax(axis=1)

    def classify(self, fault: Fault) -> FaultOutcome:
        """Outcome of injecting *fault* into the activation stream."""
        corrupted = self._corrupt(fault)
        if corrupted is None:
            return FaultOutcome.MASKED
        site = self.sites[fault.layer]
        x = corrupted
        with np.errstate(all="ignore"):
            for stage in self.stages[site.stage + 1 :]:
                x = stage.forward_fast(x)
        self.inference_count += 1
        return classify_predictions(
            x.argmax(axis=1),
            self.golden_predictions,
            self.labels,
            policy=self.policy,
            threshold=self.threshold,
        )
