"""Fault models and fault descriptors."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class FaultModel(enum.Enum):
    """Supported weight-corruption models.

    The paper's case study uses the two permanent stuck-at models; the
    transient single bit-flip is provided as an extension (it is the model
    PyTorchFI users most often pair with statistical sampling).
    """

    STUCK_AT_0 = "stuck-at-0"
    STUCK_AT_1 = "stuck-at-1"
    BIT_FLIP = "bit-flip"

    @property
    def stuck_value(self) -> int | None:
        """The forced bit value, or None for a transient flip."""
        if self is FaultModel.STUCK_AT_0:
            return 0
        if self is FaultModel.STUCK_AT_1:
            return 1
        return None


#: The paper's permanent-fault pair, in canonical order (index 0 -> SA0).
STUCK_AT_MODELS = (FaultModel.STUCK_AT_0, FaultModel.STUCK_AT_1)


@dataclass(frozen=True, order=True)
class Fault:
    """A single weight fault.

    Attributes
    ----------
    layer:
        Weight-layer index in the paper's ordering (see
        :func:`repro.faults.enumerate_weight_layers`).
    index:
        Flat index into the layer's weight tensor.
    bit:
        Bit position within the floating-point word (0 = LSB).
    model:
        The corruption model applied to that bit.
    """

    layer: int
    index: int
    bit: int
    model: FaultModel

    def __post_init__(self) -> None:
        if self.layer < 0:
            raise ValueError(f"layer must be >= 0, got {self.layer}")
        if self.index < 0:
            raise ValueError(f"index must be >= 0, got {self.index}")
        if self.bit < 0:
            raise ValueError(f"bit must be >= 0, got {self.bit}")
