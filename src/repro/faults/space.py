"""The fault population and its subpopulations.

A :class:`FaultSpace` enumerates every possible fault for a model under a
fault-model set and a floating-point format.  With the paper's permanent
stuck-at pair on 32-bit weights the population is
``N = total_weights * 32 * 2`` — e.g. 17,174,144 faults for the 268,346
weights the paper reports for ResNet-20.

Faults are totally ordered by ``(layer, bit, weight index, model)``; each
subpopulation (network, one layer, or one (bit, layer) cell) exposes a
dense local id range so samplers can draw ids without materialising fault
objects.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.faults.model import STUCK_AT_MODELS, Fault, FaultModel
from repro.faults.targets import WeightLayer, enumerate_weight_layers
from repro.ieee754 import FLOAT32, FloatFormat
from repro.nn import Module


class FaultSpace:
    """All possible faults for a set of weight layers.

    Parameters
    ----------
    layers:
        Weight layers (from :func:`enumerate_weight_layers`) or a model.
    fmt:
        Floating-point format of the weights (default float32).
    fault_models:
        The corruption models counted in the population; the default is the
        paper's stuck-at-0/stuck-at-1 pair (two faults per weight bit).
    """

    def __init__(
        self,
        layers: Sequence[WeightLayer] | Module,
        *,
        fmt: FloatFormat = FLOAT32,
        fault_models: Sequence[FaultModel] = STUCK_AT_MODELS,
    ) -> None:
        if isinstance(layers, Module):
            layers = enumerate_weight_layers(layers)
        if not layers:
            raise ValueError("fault space needs at least one weight layer")
        if not fault_models:
            raise ValueError("fault space needs at least one fault model")
        self.layers = list(layers)
        self.fmt = fmt
        self.fault_models = tuple(fault_models)

    # -- population sizes --------------------------------------------------

    @property
    def bits(self) -> int:
        """Number of bit positions per weight."""
        return self.fmt.total_bits

    @property
    def models_per_bit(self) -> int:
        """Number of fault models applied to each weight bit."""
        return len(self.fault_models)

    def cell_population(self, layer: int) -> int:
        """Population of one (bit, layer) subpopulation: weights x models."""
        return self.layers[layer].size * self.models_per_bit

    def layer_population(self, layer: int) -> int:
        """Population of one layer: weights x bits x models."""
        return self.cell_population(layer) * self.bits

    @property
    def total_population(self) -> int:
        """The full population N."""
        return sum(self.layer_population(l) for l in range(len(self.layers)))

    # -- id <-> fault mapping ----------------------------------------------
    #
    # Local id layout inside a (layer, bit) cell:  index * M + model_idx.
    # Inside a layer: bit * cell + cell-local id.  Network ids offset by
    # cumulative layer populations.

    def cell_fault(self, layer: int, bit: int, local_id: int) -> Fault:
        """Fault for a local id within the (bit, layer) cell."""
        cell = self.cell_population(layer)
        if not 0 <= local_id < cell:
            raise ValueError(
                f"local_id {local_id} out of range for cell of size {cell}"
            )
        if not 0 <= bit < self.bits:
            raise ValueError(f"bit {bit} out of range (0..{self.bits - 1})")
        index, model_idx = divmod(local_id, self.models_per_bit)
        return Fault(
            layer=layer,
            index=index,
            bit=bit,
            model=self.fault_models[model_idx],
        )

    def layer_fault(self, layer: int, local_id: int) -> Fault:
        """Fault for a local id within a layer."""
        population = self.layer_population(layer)
        if not 0 <= local_id < population:
            raise ValueError(
                f"local_id {local_id} out of range for layer population "
                f"{population}"
            )
        cell = self.cell_population(layer)
        bit, cell_id = divmod(local_id, cell)
        return self.cell_fault(layer, bit, cell_id)

    def network_fault(self, global_id: int) -> Fault:
        """Fault for a global id within the whole population."""
        if global_id < 0:
            raise ValueError(f"global_id must be >= 0, got {global_id}")
        remaining = global_id
        for layer_idx in range(len(self.layers)):
            population = self.layer_population(layer_idx)
            if remaining < population:
                return self.layer_fault(layer_idx, remaining)
            remaining -= population
        raise ValueError(
            f"global_id {global_id} out of range for population "
            f"{self.total_population}"
        )

    def fault_global_id(self, fault: Fault) -> int:
        """Inverse of :meth:`network_fault`."""
        if not 0 <= fault.layer < len(self.layers):
            raise ValueError(f"fault layer {fault.layer} out of range")
        model_idx = self.fault_models.index(fault.model)
        offset = sum(self.layer_population(l) for l in range(fault.layer))
        cell = self.cell_population(fault.layer)
        return (
            offset
            + fault.bit * cell
            + fault.index * self.models_per_bit
            + model_idx
        )

    # -- enumeration -----------------------------------------------------------

    def iter_cell(self, layer: int, bit: int) -> Iterator[Fault]:
        """All faults in one (bit, layer) cell, in local-id order."""
        for local_id in range(self.cell_population(layer)):
            yield self.cell_fault(layer, bit, local_id)

    def iter_layer(self, layer: int) -> Iterator[Fault]:
        """All faults in one layer, in local-id order."""
        for local_id in range(self.layer_population(layer)):
            yield self.layer_fault(layer, local_id)

    def iter_all(self) -> Iterator[Fault]:
        """Every fault in the population, in global-id order."""
        for layer_idx in range(len(self.layers)):
            yield from self.iter_layer(layer_idx)
