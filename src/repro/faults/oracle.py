"""Fault-outcome oracles.

Statistical campaign runners are written against the small :class:`Oracle`
protocol so the same campaign code can either *really inject* each sampled
fault (:class:`InferenceOracle`) or *replay* outcomes recorded by a prior
exhaustive campaign (:class:`TableOracle`) — the latter makes sweeping
method comparisons (ten samples x four methods x two networks) essentially
free once the ground truth exists.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Protocol

from repro.faults.engine import FaultInjectionEngine, FaultOutcome
from repro.faults.model import Fault
from repro.faults.space import FaultSpace
from repro.faults.table import OutcomeTable


class Oracle(Protocol):
    """Anything that can classify a fault."""

    def classify(self, fault: Fault) -> FaultOutcome:
        """Outcome of injecting *fault*."""
        ...

    def classify_many(self, faults: Sequence[Fault]) -> list[FaultOutcome]:
        """Outcomes of a batch of faults, in input order.

        Semantically ``[classify(f) for f in faults]``; batching oracles
        (a plan engine underneath) share tail passes across same-layer
        faults.
        """
        ...


class InferenceOracle:
    """Classify faults by actually injecting and running inference."""

    def __init__(self, engine: FaultInjectionEngine) -> None:
        self.engine = engine

    def classify(self, fault: Fault) -> FaultOutcome:
        return self.engine.classify(fault)

    def classify_many(self, faults: Sequence[Fault]) -> list[FaultOutcome]:
        return self.engine.classify_many(faults)


class TableOracle:
    """Replay outcomes recorded in an :class:`OutcomeTable`."""

    def __init__(self, table: OutcomeTable, space: FaultSpace) -> None:
        if table.num_layers != len(space.layers):
            raise ValueError(
                f"table has {table.num_layers} layers but the fault space "
                f"has {len(space.layers)}"
            )
        self.table = table
        self.space = space
        self._model_index = {
            model: idx for idx, model in enumerate(space.fault_models)
        }

    def classify(self, fault: Fault) -> FaultOutcome:
        try:
            model_index = self._model_index[fault.model]
        except KeyError:
            raise ValueError(
                f"fault model {fault.model} not covered by this table"
            ) from None
        return self.table.outcome(fault, model_index)

    def classify_many(self, faults: Sequence[Fault]) -> list[FaultOutcome]:
        return [self.classify(fault) for fault in faults]
