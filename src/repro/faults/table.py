"""Dense per-fault outcome storage (the exhaustive ground truth).

An :class:`OutcomeTable` holds the outcome of *every* fault in a
:class:`~repro.faults.FaultSpace` as per-layer uint8 arrays of shape
``(weights, bits, models)``.  It is produced once by an exhaustive campaign
(:meth:`OutcomeTable.from_exhaustive`) and then serves two purposes:

- ground truth for validating statistical campaigns (the paper's dark-blue
  exhaustive bars), and
- a replay oracle: a sampled campaign can look up outcomes instead of
  re-running inference, since classification is deterministic for a fixed
  model, eval set and policy.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import warnings
from collections.abc import Callable

import numpy as np

from repro.faults.engine import (
    FaultInjectionEngine,
    FaultOutcome,
    classify_predictions,
)
from repro.faults.model import Fault
from repro.faults.space import FaultSpace
from repro.store import CampaignCheckpoint, load_verified_npz, save_verified_npz
from repro.telemetry import Telemetry, resolve_telemetry


def _classify_cell(
    engine: FaultInjectionEngine, space: FaultSpace, layer_idx: int, bit: int
) -> np.ndarray:
    """Outcomes of every fault in one (layer, bit) cell: ``(weights, models)``.

    Masked faults are detected vectorised (no inference); every other
    fault goes through :meth:`~repro.faults.FaultInjectionEngine.
    predictions_for_faults` in ``engine.batch_size`` chunks — the plan
    engine evaluates each chunk in one stacked tail pass, the module
    engine (batch size one) runs the classic one-inference-per-fault
    loop.  Cells are the campaign's unit of parallelism and
    checkpointing: independent, deterministic, and a few hundred per
    model.
    """
    layer = space.layers[layer_idx]
    fmt = space.fmt
    models = space.fault_models
    size = layer.size
    cell = np.empty((size, len(models)), dtype=np.uint8)
    golden_bits = fmt.encode(layer.flat_weights())
    mask = np.array(1, dtype=fmt.uint_dtype) << np.array(bit, dtype=fmt.uint_dtype)
    bit_is_one = (golden_bits & mask) != 0
    batch = max(1, int(getattr(engine, "batch_size", 1)))
    # Duck-typed engines (test doubles, adapters) may only implement the
    # single-fault entry point.
    batch_predictions = getattr(engine, "predictions_for_faults", None)
    for model_idx, fault_model in enumerate(models):
        stuck = fault_model.stuck_value
        if stuck == 0:
            masked = ~bit_is_one
        elif stuck == 1:
            masked = bit_is_one
        else:
            masked = np.zeros(size, dtype=bool)
        cell[masked, model_idx] = FaultOutcome.MASKED
        live = np.flatnonzero(~masked)
        for start in range(0, len(live), batch):
            chunk = live[start : start + batch]
            faults = [
                Fault(layer=layer_idx, index=int(i), bit=bit, model=fault_model)
                for i in chunk
            ]
            if batch_predictions is not None:
                rows = batch_predictions(faults)
            else:
                rows = [engine.predictions_with_fault(f) for f in faults]
            for index, predictions in zip(chunk, rows):
                cell[index, model_idx] = classify_predictions(
                    predictions,
                    engine.golden_predictions,
                    engine.labels,
                    policy=engine.policy,
                    threshold=engine.threshold,
                )
    return cell


def cell_key(layer_idx: int, bit: int) -> str:
    """Stable name of one (layer, bit) cell (checkpoint and shard keys)."""
    return f"L{layer_idx:03d}_B{bit:02d}"


def campaign_config(engine: FaultInjectionEngine, space: FaultSpace) -> dict:
    """Identity of an exhaustive campaign.

    Includes the engine fingerprint (weights, eval images, policy, engine
    kind, fusions) so a checkpoint taken against different weights (e.g.
    after retraining) or different numerics (a fused plan engine) is
    never resumed — and, via :mod:`repro.dist`, so shards computed under
    a mismatching configuration are never merged.  The engine kind and
    fusion list are carried explicitly too, for human-readable refusal
    messages and ``repro-stats`` display.

    A non-reference kernel backend changes the campaign's numerics, so
    its attestation (name, version, per-op tolerance/invariance claims)
    joins the config.  The reference backend contributes nothing — the
    config hash of every existing campaign artifact is unchanged.
    """
    config = {
        "fmt": space.fmt.name,
        "fault_models": [m.value for m in space.fault_models],
        "policy": engine.policy,
        "threshold": engine.threshold,
        "eval_images": int(len(engine.images)),
        "layer_sizes": [layer.size for layer in space.layers],
        "engine": getattr(engine, "kind", "module"),
        "fusions": list(getattr(engine, "fusions", ())),
        "golden_sha256": engine.fingerprint(),
    }
    backend = getattr(engine, "backend", None)
    if backend is not None and not backend.is_reference:
        config["backend"] = backend.attestation()
    return config


# Fork-inherited state for pool workers: (engine, space, telemetry).  The
# golden weights and eval set are shared copy-on-write with the parent;
# workers only mutate their private injector scratch space.  The telemetry
# journal is append-only and fork-safe, so workers write cell events and
# heartbeats to the same file as the parent.
_POOL_STATE: tuple[FaultInjectionEngine, FaultSpace, Telemetry] | None = None

# Per-process tally of cells classified, reported in worker heartbeats.
_WORKER_CELLS = 0


def timed_classify_cell(
    engine: FaultInjectionEngine,
    space: FaultSpace,
    layer_idx: int,
    bit: int,
    telemetry: Telemetry,
) -> tuple[np.ndarray, float, int]:
    """One cell plus its wall time and inference count.

    Emits ``cell_start``/``cell_done`` journal events when telemetry is
    enabled; runs the untouched classification loop when it is not.
    """
    if not telemetry.enabled:
        start = time.monotonic()
        before = engine.inference_count
        cell = _classify_cell(engine, space, layer_idx, bit)
        return cell, time.monotonic() - start, engine.inference_count - before
    telemetry.emit("cell_start", layer=layer_idx, bit=bit)
    start = time.monotonic()
    before = engine.inference_count
    tail_before = getattr(engine, "tail_passes", 0)
    exec_before = getattr(engine, "ops_executed", 0)
    cached_before = getattr(engine, "ops_cached", 0)
    cell = _classify_cell(engine, space, layer_idx, bit)
    seconds = time.monotonic() - start
    inferences = engine.inference_count - before
    extras = {}
    if hasattr(engine, "tail_passes"):  # plan engine: op-cache accounting
        extras = {
            "tail_passes": engine.tail_passes - tail_before,
            "ops_executed": engine.ops_executed - exec_before,
            "ops_cached": engine.ops_cached - cached_before,
        }
    telemetry.emit(
        "cell_done",
        layer=layer_idx,
        bit=bit,
        seconds=seconds,
        faults=int(cell.size),
        inferences=inferences,
        **extras,
    )
    return cell, seconds, inferences


def _pool_classify(
    args: tuple[int, int]
) -> tuple[int, int, np.ndarray, float, int]:
    global _WORKER_CELLS
    layer_idx, bit = args
    assert _POOL_STATE is not None, "worker used outside a campaign pool"
    engine, space, telemetry = _POOL_STATE
    cell, seconds, inferences = timed_classify_cell(
        engine, space, layer_idx, bit, telemetry
    )
    _WORKER_CELLS += 1
    if telemetry.enabled:
        telemetry.emit("worker_heartbeat", cells_done=_WORKER_CELLS)
    return layer_idx, bit, cell, seconds, inferences


def resolve_workers(workers: int | None = None) -> int:
    """Normalise a worker-count request to an achievable pool size.

    ``None`` (the caller expressed no preference) resolves to the
    ``REPRO_WORKERS`` environment variable when set — the operator's
    fleet-wide override — and otherwise to the CPU count.  The result is
    always clamped to at least one worker.  An explicit *workers*
    argument wins over the environment.
    """
    if workers is None:
        env = os.environ.get("REPRO_WORKERS")
        if env is not None and env.strip():
            try:
                workers = int(env)
            except ValueError:
                raise ValueError(
                    f"REPRO_WORKERS must be an integer, got {env!r}"
                ) from None
        else:
            workers = os.cpu_count() or 1
    return max(1, int(workers))


class OutcomeTable:
    """Per-fault outcomes for a whole fault space."""

    def __init__(
        self,
        outcomes: list[np.ndarray],
        *,
        metadata: dict | None = None,
    ) -> None:
        for arr in outcomes:
            if arr.ndim != 3:
                raise ValueError(
                    "each layer's outcomes must be (weights, bits, models), "
                    f"got shape {arr.shape}"
                )
        self.outcomes = [np.asarray(a, dtype=np.uint8) for a in outcomes]
        self.metadata = dict(metadata or {})

    # -- construction -----------------------------------------------------

    @classmethod
    def from_exhaustive(
        cls,
        engine: FaultInjectionEngine,
        space: FaultSpace,
        *,
        workers: int | None = 1,
        checkpoint: str | os.PathLike | None = None,
        telemetry: Telemetry | None = None,
        progress: Callable[[int, int], None] | None = None,
        progress_every: int = 20_000,
    ) -> "OutcomeTable":
        """Classify every fault in *space* using *engine*.

        The campaign runs one (layer, bit) cell at a time (see
        :func:`_classify_cell`); cells are independent, so with
        ``workers > 1`` they fan out over a fork-based process pool whose
        children share the golden weights and eval set copy-on-write.
        With *checkpoint* set, every finished cell is persisted atomically
        to that directory and a killed campaign resumes from its last
        persisted cell — outcomes are deterministic, so the resumed table
        is bit-identical to an uninterrupted run.

        *telemetry* records the campaign: ``campaign_start``/``_end``,
        per-cell ``cell_start``/``cell_done`` (wall time, inference
        count — emitted by the worker that ran the cell), checkpoint
        writes and resume hits, worker heartbeats, and ``progress``
        events roughly every *progress_every* faults.  The default
        :class:`~repro.telemetry.NullTelemetry` adds no measurable cost.

        .. deprecated::
            *progress* — pass *telemetry* and read its ``progress``
            events instead; the callback is kept as a shim and still
            fires with ``(done, total)`` at the same cadence.
        """
        if progress is not None:
            warnings.warn(
                "from_exhaustive(progress=...) is deprecated; pass "
                "telemetry=Telemetry(...) and read its progress events",
                DeprecationWarning,
                stacklevel=2,
            )
        tele = resolve_telemetry(telemetry)
        start = time.time()
        total = space.total_population
        bits = space.bits
        n_models = len(space.fault_models)
        workers = resolve_workers(workers)
        cells_total = len(space.layers) * bits

        store = None
        if checkpoint is not None:
            store = CampaignCheckpoint(
                checkpoint,
                config=campaign_config(engine, space),
                telemetry=tele,
            )

        cells: dict[tuple[int, int], np.ndarray] = {}
        pending: list[tuple[int, int]] = []
        done = 0
        reported = 0
        for layer_idx in range(len(space.layers)):
            for bit in range(bits):
                saved = (
                    store.load(cell_key(layer_idx, bit))
                    if store is not None
                    else None
                )
                expected = (space.layers[layer_idx].size, n_models)
                if saved is not None and saved.shape == expected:
                    cells[(layer_idx, bit)] = saved
                    done += saved.size
                else:
                    pending.append((layer_idx, bit))

        resumed_cells = len(cells)
        if tele.enabled:
            tele.emit(
                "campaign_start",
                kind="exhaustive",
                total=total,
                cells_total=cells_total,
                workers=workers,
                fmt=space.fmt.name,
                eval_images=int(len(engine.images)),
                policy=engine.policy,
                engine=getattr(engine, "kind", "module"),
                batch_size=int(getattr(engine, "batch_size", 1)),
                checkpointed=store is not None,
            )
            if resumed_cells:
                tele.emit(
                    "checkpoint_resume",
                    cells_resumed=resumed_cells,
                    cells_total=cells_total,
                    faults_resumed=done,
                )
            tele.counter("campaign.cells_resumed").add(resumed_cells)
            tele.gauge("campaign.workers").set(workers)

        def finish(
            layer_idx: int,
            bit: int,
            cell: np.ndarray,
            seconds: float,
            inferences: int,
        ) -> None:
            nonlocal done, reported
            cells[(layer_idx, bit)] = cell
            if store is not None:
                store.store(cell_key(layer_idx, bit), cell)
            done += cell.size
            if tele.enabled:
                tele.timer("campaign.cell_seconds").observe(seconds)
                tele.counter("campaign.cells_computed").add(1)
                tele.counter("campaign.faults_classified").add(int(cell.size))
                tele.counter("campaign.inferences").add(inferences)
            if done - reported >= progress_every or done == total:
                if tele.enabled:
                    tele.emit("progress", done=done, total=total)
                if progress:
                    progress(done, total)
                reported = done

        if workers > 1 and len(pending) > 1:
            global _POOL_STATE
            _POOL_STATE = (engine, space, tele)
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # platform without fork: run serially
                _POOL_STATE = None
            else:
                try:
                    with ctx.Pool(processes=workers) as pool:
                        for result in pool.imap_unordered(
                            _pool_classify, pending, chunksize=1
                        ):
                            finish(*result)
                finally:
                    _POOL_STATE = None
                pending = []
        for layer_idx, bit in pending:
            cell, seconds, inferences = timed_classify_cell(
                engine, space, layer_idx, bit, tele
            )
            finish(layer_idx, bit, cell, seconds, inferences)

        outcomes: list[np.ndarray] = []
        for layer_idx, layer in enumerate(space.layers):
            table = np.empty((layer.size, bits, n_models), dtype=np.uint8)
            for bit in range(bits):
                table[:, bit, :] = cells[(layer_idx, bit)]
            outcomes.append(table)
        masked = sum(
            int((arr == FaultOutcome.MASKED).sum()) for arr in outcomes
        )
        metadata = {
            "fmt": space.fmt.name,
            "fault_models": [m.value for m in space.fault_models],
            "policy": engine.policy,
            "threshold": engine.threshold,
            "eval_images": int(len(engine.images)),
            "golden_accuracy": engine.golden_accuracy,
            # Inferences the campaign requires (deterministic: population
            # minus masked), independent of how many were served from a
            # checkpoint or by pool workers in this particular run.
            "inference_count": total - masked,
            "elapsed_seconds": time.time() - start,
        }
        if tele.enabled:
            tele.emit(
                "campaign_end",
                elapsed_seconds=metadata["elapsed_seconds"],
                faults=total,
                masked=masked,
                cells_resumed=resumed_cells,
                cells_computed=cells_total - resumed_cells,
            )
            tele.gauge("campaign.elapsed_seconds").set(
                metadata["elapsed_seconds"]
            )
        return cls(outcomes, metadata=metadata)

    # -- lookup ---------------------------------------------------------------

    def outcome(self, fault: Fault, model_index: int) -> FaultOutcome:
        """Outcome of one fault; *model_index* positions it in the table."""
        return FaultOutcome(
            int(self.outcomes[fault.layer][fault.index, fault.bit, model_index])
        )

    # -- aggregation -------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.outcomes)

    @property
    def bits(self) -> int:
        return self.outcomes[0].shape[1]

    def cell_counts(self, layer: int, bit: int) -> tuple[int, int]:
        """(criticals, population) of one (bit, layer) cell."""
        cell = self.outcomes[layer][:, bit, :]
        return int((cell == FaultOutcome.CRITICAL).sum()), int(cell.size)

    def layer_counts(self, layer: int) -> tuple[int, int]:
        """(criticals, population) of one layer."""
        arr = self.outcomes[layer]
        return int((arr == FaultOutcome.CRITICAL).sum()), int(arr.size)

    def total_counts(self) -> tuple[int, int]:
        """(criticals, population) over the whole network."""
        criticals = sum(self.layer_counts(l)[0] for l in range(self.num_layers))
        population = sum(self.layer_counts(l)[1] for l in range(self.num_layers))
        return criticals, population

    def cell_rate(self, layer: int, bit: int) -> float:
        """Exhaustive critical rate of one (bit, layer) cell."""
        criticals, population = self.cell_counts(layer, bit)
        return criticals / population if population else 0.0

    def layer_rate(self, layer: int) -> float:
        """Exhaustive critical rate of one layer."""
        criticals, population = self.layer_counts(layer)
        return criticals / population if population else 0.0

    def total_rate(self) -> float:
        """Exhaustive critical rate of the whole network."""
        criticals, population = self.total_counts()
        return criticals / population if population else 0.0

    def masked_fraction(self) -> float:
        """Fraction of the population masked by the data."""
        masked = sum(
            int((arr == FaultOutcome.MASKED).sum()) for arr in self.outcomes
        )
        _, population = self.total_counts()
        return masked / population if population else 0.0

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Write the table (and metadata) to *path* (.npz).

        Goes through the verified store: the archive is written atomically
        and recorded in its directory's ``MANIFEST.json``.
        """
        arrays = {f"layer{i}": arr for i, arr in enumerate(self.outcomes)}
        arrays["metadata"] = np.frombuffer(
            json.dumps(self.metadata, sort_keys=True).encode("utf-8"),
            dtype=np.uint8,
        )
        save_verified_npz(path, arrays)

    @classmethod
    def load(
        cls, path: str | os.PathLike, *, regenerate: str | None = None
    ) -> "OutcomeTable":
        """Load a table written by :meth:`save`.

        Integrity (manifest checksum + zip structure) is validated first;
        corruption raises :class:`~repro.store.CorruptArtifactError`
        naming *path* and the *regenerate* command.
        """
        archive = load_verified_npz(path, regenerate=regenerate)
        metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
        layer_names = sorted(
            (name for name in archive if name.startswith("layer")),
            key=lambda name: int(name[5:]),
        )
        outcomes = [archive[name] for name in layer_names]
        return cls(outcomes, metadata=metadata)
