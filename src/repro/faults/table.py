"""Dense per-fault outcome storage (the exhaustive ground truth).

An :class:`OutcomeTable` holds the outcome of *every* fault in a
:class:`~repro.faults.FaultSpace` as per-layer uint8 arrays of shape
``(weights, bits, models)``.  It is produced once by an exhaustive campaign
(:meth:`OutcomeTable.from_exhaustive`) and then serves two purposes:

- ground truth for validating statistical campaigns (the paper's dark-blue
  exhaustive bars), and
- a replay oracle: a sampled campaign can look up outcomes instead of
  re-running inference, since classification is deterministic for a fixed
  model, eval set and policy.
"""

from __future__ import annotations

import json
import os
import time
from collections.abc import Callable

import numpy as np

from repro.faults.engine import FaultOutcome, InferenceEngine
from repro.faults.model import Fault
from repro.faults.space import FaultSpace


class OutcomeTable:
    """Per-fault outcomes for a whole fault space."""

    def __init__(
        self,
        outcomes: list[np.ndarray],
        *,
        metadata: dict | None = None,
    ) -> None:
        for arr in outcomes:
            if arr.ndim != 3:
                raise ValueError(
                    "each layer's outcomes must be (weights, bits, models), "
                    f"got shape {arr.shape}"
                )
        self.outcomes = [np.asarray(a, dtype=np.uint8) for a in outcomes]
        self.metadata = dict(metadata or {})

    # -- construction -----------------------------------------------------

    @classmethod
    def from_exhaustive(
        cls,
        engine: InferenceEngine,
        space: FaultSpace,
        *,
        progress: Callable[[int, int], None] | None = None,
        progress_every: int = 20_000,
    ) -> "OutcomeTable":
        """Classify every fault in *space* using *engine*.

        Masked faults are detected vectorised (no inference); everything
        else runs one prefix-cached inference.  *progress* is called with
        ``(done, total)`` every *progress_every* faults.
        """
        fmt = space.fmt
        total = space.total_population
        done = 0
        start = time.time()
        outcomes: list[np.ndarray] = []
        for layer_idx, layer in enumerate(space.layers):
            size = layer.size
            bits = space.bits
            models = space.fault_models
            table = np.empty((size, bits, len(models)), dtype=np.uint8)
            golden_bits = fmt.encode(layer.flat_weights())
            for bit in range(bits):
                mask = np.array(1, dtype=fmt.uint_dtype) << np.array(
                    bit, dtype=fmt.uint_dtype
                )
                bit_is_one = (golden_bits & mask) != 0
                for model_idx, fault_model in enumerate(models):
                    stuck = fault_model.stuck_value
                    if stuck == 0:
                        masked = ~bit_is_one
                    elif stuck == 1:
                        masked = bit_is_one
                    else:
                        masked = np.zeros(size, dtype=bool)
                    for index in range(size):
                        if masked[index]:
                            table[index, bit, model_idx] = FaultOutcome.MASKED
                        else:
                            fault = Fault(
                                layer=layer_idx,
                                index=index,
                                bit=bit,
                                model=fault_model,
                            )
                            predictions = engine.predictions_with_fault(fault)
                            from repro.faults.engine import classify_predictions

                            table[index, bit, model_idx] = classify_predictions(
                                predictions,
                                engine.golden_predictions,
                                engine.labels,
                                policy=engine.policy,
                                threshold=engine.threshold,
                            )
                        done += 1
                        if progress and done % progress_every == 0:
                            progress(done, total)
            outcomes.append(table)
        metadata = {
            "fmt": fmt.name,
            "fault_models": [m.value for m in space.fault_models],
            "policy": engine.policy,
            "threshold": engine.threshold,
            "eval_images": int(len(engine.images)),
            "golden_accuracy": engine.golden_accuracy,
            "inference_count": engine.inference_count,
            "elapsed_seconds": time.time() - start,
        }
        return cls(outcomes, metadata=metadata)

    # -- lookup ---------------------------------------------------------------

    def outcome(self, fault: Fault, model_index: int) -> FaultOutcome:
        """Outcome of one fault; *model_index* positions it in the table."""
        return FaultOutcome(
            int(self.outcomes[fault.layer][fault.index, fault.bit, model_index])
        )

    # -- aggregation -------------------------------------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.outcomes)

    @property
    def bits(self) -> int:
        return self.outcomes[0].shape[1]

    def cell_counts(self, layer: int, bit: int) -> tuple[int, int]:
        """(criticals, population) of one (bit, layer) cell."""
        cell = self.outcomes[layer][:, bit, :]
        return int((cell == FaultOutcome.CRITICAL).sum()), int(cell.size)

    def layer_counts(self, layer: int) -> tuple[int, int]:
        """(criticals, population) of one layer."""
        arr = self.outcomes[layer]
        return int((arr == FaultOutcome.CRITICAL).sum()), int(arr.size)

    def total_counts(self) -> tuple[int, int]:
        """(criticals, population) over the whole network."""
        criticals = sum(self.layer_counts(l)[0] for l in range(self.num_layers))
        population = sum(self.layer_counts(l)[1] for l in range(self.num_layers))
        return criticals, population

    def cell_rate(self, layer: int, bit: int) -> float:
        """Exhaustive critical rate of one (bit, layer) cell."""
        criticals, population = self.cell_counts(layer, bit)
        return criticals / population if population else 0.0

    def layer_rate(self, layer: int) -> float:
        """Exhaustive critical rate of one layer."""
        criticals, population = self.layer_counts(layer)
        return criticals / population if population else 0.0

    def total_rate(self) -> float:
        """Exhaustive critical rate of the whole network."""
        criticals, population = self.total_counts()
        return criticals / population if population else 0.0

    def masked_fraction(self) -> float:
        """Fraction of the population masked by the data."""
        masked = sum(
            int((arr == FaultOutcome.MASKED).sum()) for arr in self.outcomes
        )
        _, population = self.total_counts()
        return masked / population if population else 0.0

    # -- persistence --------------------------------------------------------------

    def save(self, path: str | os.PathLike) -> None:
        """Write the table (and metadata) to *path* (.npz)."""
        directory = os.path.dirname(os.fspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        arrays = {f"layer{i}": arr for i, arr in enumerate(self.outcomes)}
        arrays["metadata"] = np.frombuffer(
            json.dumps(self.metadata).encode("utf-8"), dtype=np.uint8
        )
        np.savez_compressed(path, **arrays)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "OutcomeTable":
        """Load a table written by :meth:`save`."""
        with np.load(path) as archive:
            metadata = json.loads(bytes(archive["metadata"]).decode("utf-8"))
            layer_names = sorted(
                (name for name in archive.files if name.startswith("layer")),
                key=lambda name: int(name[5:]),
            )
            outcomes = [archive[name] for name in layer_names]
        return cls(outcomes, metadata=metadata)
