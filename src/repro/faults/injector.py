"""In-place weight fault injection with guaranteed restoration."""

from __future__ import annotations

import contextlib
from collections.abc import Iterator, Sequence

import numpy as np

from repro.faults.model import Fault
from repro.faults.targets import WeightLayer, enumerate_weight_layers
from repro.ieee754 import FLOAT32, FloatFormat, apply_stuck_at, flip_bit
from repro.nn import Module


class WeightFaultInjector:
    """Applies :class:`Fault` descriptors to a model's weights.

    The injector owns the mapping from fault layer indices to weight
    tensors and performs the IEEE-754 corruption.  Faults are applied in
    place (so cached inference engines observe them) and restored exactly.
    """

    def __init__(
        self,
        layers: Sequence[WeightLayer] | Module,
        *,
        fmt: FloatFormat = FLOAT32,
    ) -> None:
        if isinstance(layers, Module):
            layers = enumerate_weight_layers(layers)
        self.layers = list(layers)
        self.fmt = fmt
        self._flat = [layer.flat_weights() for layer in self.layers]

    def _check(self, fault: Fault) -> np.ndarray:
        if not 0 <= fault.layer < len(self.layers):
            raise ValueError(
                f"fault layer {fault.layer} out of range "
                f"(0..{len(self.layers) - 1})"
            )
        flat = self._flat[fault.layer]
        if not 0 <= fault.index < flat.size:
            raise ValueError(
                f"fault index {fault.index} out of range for layer "
                f"{fault.layer} of size {flat.size}"
            )
        if not 0 <= fault.bit < self.fmt.total_bits:
            raise ValueError(
                f"fault bit {fault.bit} out of range for {self.fmt.name}"
            )
        return flat

    def faulty_value(self, fault: Fault) -> tuple[float, float]:
        """Return ``(golden, faulty)`` scalar values for *fault*.

        Does not modify the model.  ``golden == faulty`` means the fault is
        masked by the data (e.g. stuck-at-0 on a bit already 0).
        """
        flat = self._check(fault)
        golden = float(flat[fault.index])
        bits = self.fmt.encode(np.asarray([golden]))
        stuck = fault.model.stuck_value
        if stuck is None:
            corrupted = flip_bit(self.fmt, bits, fault.bit)
        else:
            corrupted = apply_stuck_at(self.fmt, bits, fault.bit, stuck)
        faulty = float(self.fmt.decode_native(corrupted)[0])
        return golden, faulty

    def is_masked(self, fault: Fault) -> bool:
        """Whether the fault leaves the stored weight bit-identical."""
        flat = self._check(fault)
        golden = flat[fault.index]
        golden_bits = self.fmt.encode(np.asarray([golden]))
        stuck = fault.model.stuck_value
        if stuck is None:
            return False  # a flip always changes the word
        corrupted = apply_stuck_at(self.fmt, golden_bits, fault.bit, stuck)
        return bool(corrupted[0] == golden_bits[0])

    @contextlib.contextmanager
    def inject(self, fault: Fault) -> Iterator[float]:
        """Context manager: corrupt the weight, yield the faulty value,
        restore the golden value on exit (even on exceptions)."""
        flat = self._check(fault)
        golden_raw = flat[fault.index].copy()
        _, faulty = self.faulty_value(fault)
        flat[fault.index] = faulty
        try:
            yield faulty
        finally:
            flat[fault.index] = golden_raw
